//! Integration: schema discovery and schema evolution against generated
//! directories — the §6.2 lifecycle (observe → prescribe → evolve).

use bschema_core::consistency::ConsistencyChecker;
use bschema_core::discover::{suggest_schema, DiscoveryOptions};
use bschema_core::evolution::{evolve, Evolution};
use bschema_core::legality::LegalityChecker;
use bschema_core::managed::ManagedDirectory;
use bschema_workload::{OrgGenerator, OrgParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Discovery soundness across random org shapes: the mined schema is
    /// consistent and accepts the instance it was mined from.
    #[test]
    fn discovery_is_sound_on_random_orgs(seed in 0u64..2000, size in 30usize..200) {
        let org = OrgGenerator::new(OrgParams { seed, target_entries: size, ..OrgParams::default() })
            .generate();
        for options in [
            DiscoveryOptions::default(),
            DiscoveryOptions { forbidden: true, ..Default::default() },
        ] {
            let suggested = suggest_schema(&org.dir, &options);
            prop_assert!(
                ConsistencyChecker::new(&suggested).check().is_consistent(),
                "mined schema must be consistent (a witness exists: the source)"
            );
            let report = LegalityChecker::new(&suggested).check(&org.dir);
            prop_assert!(report.is_legal(), "seed {}: {}", seed, report);
        }
    }

    /// Relaxing evolution chains never invalidate a legal instance.
    #[test]
    fn relaxing_chains_preserve_legality(seed in 0u64..2000, steps in 1usize..6) {
        let org = OrgGenerator::new(OrgParams { seed, target_entries: 60, ..OrgParams::default() })
            .generate();
        let mut schema = bschema_core::paper::white_pages_schema();
        prop_assume!(LegalityChecker::new(&schema).check(&org.dir).is_legal());
        for i in 0..steps {
            let step = match i % 3 {
                0 => Evolution::AllowAttribute {
                    class: "person".into(),
                    attribute: format!("custom{i}"),
                },
                1 => Evolution::AddAuxiliaryClass { name: format!("aux{i}") },
                _ => Evolution::AddCoreClass {
                    name: format!("core{i}"),
                    parent: "person".into(),
                },
            };
            schema = evolve(&schema, &step, &org.dir)
                .unwrap_or_else(|e| panic!("relaxing step refused: {e}"));
            prop_assert!(
                LegalityChecker::new(&schema).check(&org.dir).is_legal(),
                "relaxing step {} broke legality", step
            );
        }
    }
}

/// Observe → prescribe → operate: a discovered schema drives a managed
/// directory that keeps accepting conforming growth.
#[test]
fn discovered_schema_manages_future_growth() {
    let org = OrgGenerator::new(OrgParams { seed: 7, target_entries: 120, ..OrgParams::default() })
        .generate();
    // Without forbidden mining the suggestion generalises better.
    let suggested = suggest_schema(&org.dir, &DiscoveryOptions::default());
    let mut managed = ManagedDirectory::with_instance(suggested, org.dir.clone())
        .expect("mined schema accepts its source");

    // Conforming growth: a researcher in an existing unit, matching the
    // generator's own shape (uid+name, person chain).
    let unit = org.units[0];
    managed
        .insert_under(
            unit,
            bschema_directory::Entry::builder()
                .classes(["researcher", "person", "top"])
                .attr("uid", "fresh1")
                .attr("name", "fresh one")
                .build(),
        )
        .expect("conforming entries are accepted");
    assert!(managed.is_legal());

    // A person with a child stays forbidden — the generator's data never
    // exhibits person-with-children, so discovery mined the prohibition.
    let person = org.persons[0];
    let err = managed.insert_under(
        person,
        bschema_directory::Entry::builder()
            .classes(["orgunit", "orggroup", "top"])
            .attr("ou", "under-person")
            .build(),
    );
    assert!(err.is_err(), "deviant structure must be rejected");
}
