//! Integration: schema discovery and schema evolution against generated
//! directories — the §6.2 lifecycle (observe → prescribe → evolve).

use bschema_core::consistency::ConsistencyChecker;
use bschema_core::discover::{suggest_schema, DiscoveryOptions};
use bschema_core::evolution::plan::parse_proposal;
use bschema_core::evolution::{evolve, Evolution};
use bschema_core::legality::LegalityChecker;
use bschema_core::managed::ManagedDirectory;
use bschema_workload::{OrgGenerator, OrgParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Discovery soundness across random org shapes: the mined schema is
    /// consistent and accepts the instance it was mined from.
    #[test]
    fn discovery_is_sound_on_random_orgs(seed in 0u64..2000, size in 30usize..200) {
        let org = OrgGenerator::new(OrgParams { seed, target_entries: size, ..OrgParams::default() })
            .generate();
        for options in [
            DiscoveryOptions::default(),
            DiscoveryOptions { forbidden: true, ..Default::default() },
        ] {
            let suggested = suggest_schema(&org.dir, &options);
            prop_assert!(
                ConsistencyChecker::new(&suggested).check().is_consistent(),
                "mined schema must be consistent (a witness exists: the source)"
            );
            let report = LegalityChecker::new(&suggested).check(&org.dir);
            prop_assert!(report.is_legal(), "seed {}: {}", seed, report);
        }
    }

    /// Relaxing evolution chains never invalidate a legal instance.
    #[test]
    fn relaxing_chains_preserve_legality(seed in 0u64..2000, steps in 1usize..6) {
        let org = OrgGenerator::new(OrgParams { seed, target_entries: 60, ..OrgParams::default() })
            .generate();
        let mut schema = bschema_core::paper::white_pages_schema();
        prop_assume!(LegalityChecker::new(&schema).check(&org.dir).is_legal());
        for i in 0..steps {
            let step = match i % 3 {
                0 => Evolution::AllowAttribute {
                    class: "person".into(),
                    attribute: format!("custom{i}"),
                },
                1 => Evolution::AddAuxiliaryClass { name: format!("aux{i}") },
                _ => Evolution::AddCoreClass {
                    name: format!("core{i}"),
                    parent: "person".into(),
                },
            };
            schema = evolve(&schema, &step, &org.dir)
                .unwrap_or_else(|e| panic!("relaxing step refused: {e}"));
            prop_assert!(
                LegalityChecker::new(&schema).check(&org.dir).is_legal(),
                "relaxing step {} broke legality", step
            );
        }
    }
}

/// Observe → prescribe → operate: a discovered schema drives a managed
/// directory that keeps accepting conforming growth.
#[test]
fn discovered_schema_manages_future_growth() {
    let org = OrgGenerator::new(OrgParams { seed: 7, target_entries: 120, ..OrgParams::default() })
        .generate();
    // Without forbidden mining the suggestion generalises better.
    let suggested = suggest_schema(&org.dir, &DiscoveryOptions::default());
    let mut managed = ManagedDirectory::with_instance(suggested, org.dir.clone())
        .expect("mined schema accepts its source");

    // Conforming growth: a researcher in an existing unit, matching the
    // generator's own shape (uid+name, person chain).
    let unit = org.units[0];
    managed
        .insert_under(
            unit,
            bschema_directory::Entry::builder()
                .classes(["researcher", "person", "top"])
                .attr("uid", "fresh1")
                .attr("name", "fresh one")
                .build(),
        )
        .expect("conforming entries are accepted");
    assert!(managed.is_legal());

    // A person with a child stays forbidden — the generator's data never
    // exhibits person-with-children, so discovery mined the prohibition.
    let person = org.persons[0];
    let err = managed.insert_under(
        person,
        bschema_directory::Entry::builder()
            .classes(["orgunit", "orggroup", "top"])
            .attr("ou", "under-person")
            .build(),
    );
    assert!(err.is_err(), "deviant structure must be rejected");
}

/// A restricting tighten the instance cannot meet is refused, and the
/// recheck report names the offending entries by DN — the payload an
/// operator sees from `SCHEMA CHECK` / `SCHEMA COMMIT`.
#[test]
fn rejected_tighten_names_offending_entries() {
    let org = OrgGenerator::new(OrgParams { seed: 11, target_entries: 80, ..OrgParams::default() })
        .generate();
    let schema = bschema_core::paper::white_pages_schema();
    assert!(LegalityChecker::new(&schema).check(&org.dir).is_legal());

    // `title` is allowed but the generator never sets it, so requiring
    // it violates on every person.
    let plan = parse_proposal(&schema, "require-attr person title").expect("valid proposal");
    assert!(!plan.is_relaxing_only(), "require-attr tightens the bounds");
    let report = plan.recheck(&org.dir);
    assert!(!report.is_legal(), "no generated person carries a title");

    let mut named = 0usize;
    for violation in report.violations() {
        let Some(id) = violation.entry() else { continue };
        let dn = org.dir.dn(id).expect("the report names live entries");
        let entry = org.dir.entry(id).expect("the report names live entries");
        assert!(entry.has_class("person"), "only persons can violate, got dn {dn}");
        assert!(!entry.has_attribute("title"));
        named += 1;
    }
    assert!(named > 0, "a rejected tighten must name its offenders");
}

/// The operator loop for an unsatisfiable tighten: widen first (allow
/// the attribute — relaxing, instant), migrate the data, and only then
/// tighten. Each stage rechecks exactly as the live cutover would.
#[test]
fn widen_then_migrate_then_tighten() {
    let org = OrgGenerator::new(OrgParams { seed: 3, target_entries: 60, ..OrgParams::default() })
        .generate();
    let schema = bschema_core::paper::white_pages_schema();
    let mut dir = org.dir.clone();

    // Tightening straight to `require-attr person mail` is refused at
    // recheck time: no entry carries the attribute yet.
    let direct = parse_proposal(&schema, "require-attr person mail").expect("tighten parses");
    assert!(
        !direct.recheck(&dir).is_legal(),
        "no person has mail yet — the direct tighten must be refused"
    );

    // Widen: allow the attribute. Relaxing — no recheck needed, and the
    // old instance stays legal under the widened schema.
    let widen = parse_proposal(&schema, "allow-attr person mail").expect("widen parses");
    assert!(widen.is_relaxing_only(), "allow-attr is relaxing (Definition 2.7)");
    let widened = widen.target.clone();
    assert!(LegalityChecker::new(&widened).check(&dir).is_legal());

    // Migrate: backfill the attribute on every person.
    let persons: Vec<_> =
        dir.iter().filter(|(_, e)| e.has_class("person")).map(|(id, _)| id).collect();
    for id in persons {
        let uid = dir.entry(id).unwrap().first_value("uid").unwrap_or("someone").to_owned();
        dir.entry_mut(id).unwrap().add_value("mail", format!("{uid}@example.org"));
    }
    dir.prepare();

    // Tighten: the same step now parses and its targeted recheck passes.
    let tighten = parse_proposal(&widened, "require-attr person mail").expect("tighten parses");
    assert!(!tighten.is_relaxing_only());
    let report = tighten.recheck(&dir);
    assert!(report.is_legal(), "after migration the tighten must pass: {report}");
    assert!(LegalityChecker::new(&tighten.target).check(&dir).is_legal());
}

/// On an empty directory every restricting step is trivially safe: the
/// recheck has nothing to violate, so any consistent tighten commits.
#[test]
fn restricting_evolution_on_an_empty_directory_is_trivially_safe() {
    let mut empty = bschema_directory::DirectoryInstance::white_pages();
    empty.prepare();
    let schema = bschema_core::paper::white_pages_schema();

    let step = Evolution::RequireAttribute { class: "person".into(), attribute: "title".into() };
    let evolved = evolve(&schema, &step, &empty).expect("no entries, nothing to violate");
    assert!(ConsistencyChecker::new(&evolved).check().is_consistent());

    // The plan engine agrees: stage the same step as a proposal and the
    // recheck comes back clean.
    let plan = parse_proposal(&schema, "require-attr person title").expect("valid proposal");
    assert!(plan.recheck(&empty).is_legal());
}
