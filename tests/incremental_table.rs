//! Figure 5 / Theorem 4.2 property test: after any single-subtree update to
//! a legal instance, the incremental Δ-check's verdict equals a full
//! from-scratch legality check of the updated instance.

use bschema_core::legality::{LegalityChecker, LegalityOptions, Violation};
use bschema_core::paper::white_pages_schema_builder;
use bschema_core::schema::{DirectorySchema, ForbidKind, RelKind};
use bschema_core::updates::{apply_and_check_with, IncrementalChecker, Transaction};
use bschema_directory::{DirectoryInstance, Entry, EntryId};
use proptest::prelude::*;

/// The white-pages schema extended with a required-child and a
/// forbidden-descendant row so all six Figure 5 relationship forms are live.
fn full_schema() -> DirectorySchema {
    white_pages_schema_builder()
        .require_rel("orgUnit", RelKind::Child, "person")
        .and_then(|b| b.forbid_rel("organization", ForbidKind::Descendant, "organization"))
        .map(|b| b.build())
        .unwrap()
}

/// A small *legal* base instance: org → unit → persons, several units.
fn base_instance(
    units: usize,
    persons_per_unit: usize,
) -> (DirectoryInstance, Vec<EntryId>, Vec<EntryId>) {
    let mut dir = DirectoryInstance::white_pages();
    let org = dir.add_root_entry(
        Entry::builder().classes(["organization", "orgGroup", "top"]).attr("o", "x").build(),
    );
    let mut unit_ids = Vec::new();
    let mut person_ids = Vec::new();
    let mut n = 0;
    for u in 0..units {
        let unit = dir
            .add_child_entry(
                org,
                Entry::builder()
                    .classes(["orgUnit", "orgGroup", "top"])
                    .attr("ou", format!("u{u}"))
                    .build(),
            )
            .unwrap();
        unit_ids.push(unit);
        for _ in 0..persons_per_unit {
            n += 1;
            let p = dir
                .add_child_entry(
                    unit,
                    Entry::builder()
                        .classes(["researcher", "person", "top"])
                        .attr("uid", format!("p{n}"))
                        .attr("name", format!("p{n}"))
                        .build(),
                )
                .unwrap();
            person_ids.push(p);
        }
    }
    dir.prepare();
    (dir, unit_ids, person_ids)
}

/// Entry templates an insertion subtree can be built from — a mix of legal
/// and violating shapes.
fn entry_template(kind: u8, n: usize) -> Entry {
    match kind % 5 {
        0 => Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", format!("new{n}"))
            .attr("name", format!("new{n}"))
            .build(),
        1 => Entry::builder()
            .classes(["orgUnit", "orgGroup", "top"])
            .attr("ou", format!("new{n}"))
            .build(),
        // Missing required name → content violation.
        2 => Entry::builder().classes(["person", "top"]).attr("uid", format!("new{n}")).build(),
        // A second organization → organization ↛de organization risk.
        3 => Entry::builder()
            .classes(["organization", "orgGroup", "top"])
            .attr("o", format!("new{n}"))
            .build(),
        _ => Entry::builder()
            .classes(["staffMember", "person", "top"])
            .attr("uid", format!("new{n}"))
            .attr("name", format!("new{n}"))
            .build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random subtree insertions — legal or not — judged identically by the
    /// Δ-checker and the full checker.
    #[test]
    fn insertion_delta_check_matches_full_check(
        units in 1usize..4,
        persons in 1usize..3,
        anchor in any::<prop::sample::Index>(),
        shape in proptest::collection::vec((any::<u8>(), any::<Option<u8>>()), 1..6),
    ) {
        let schema = full_schema();
        let (mut dir, unit_ids, person_ids) = base_instance(units, persons);
        prop_assume!(LegalityChecker::new(&schema).check(&dir).is_legal());

        // Anchor the subtree at a random existing entry (unit or person —
        // person anchors produce person ↛ch top violations).
        let all: Vec<EntryId> = unit_ids.iter().chain(&person_ids).copied().collect();
        let parent = all[anchor.index(all.len())];

        // Build the subtree: node 0 under `parent`, others under a random
        // earlier subtree node.
        let mut created: Vec<EntryId> = Vec::new();
        for (i, (kind, attach)) in shape.iter().enumerate() {
            let entry = entry_template(*kind, i);
            let under = match attach {
                Some(k) if !created.is_empty() => created[*k as usize % created.len()],
                _ => parent,
            };
            // To keep it one subtree, the first node always goes under
            // `parent`; later "None" attaches also go under node 0.
            let under = if created.is_empty() { parent } else if under == parent { created[0] } else { under };
            created.push(dir.add_child_entry(under, entry).unwrap());
        }
        dir.prepare();

        let delta_root = created[0];
        let incremental = IncrementalChecker::new(&schema).check_insertion(&dir, delta_root);
        let full = LegalityChecker::new(&schema).check(&dir);
        prop_assert_eq!(
            incremental.is_legal(),
            full.is_legal(),
            "Δ-insert verdict diverged.\nincremental: {}\nfull: {}",
            incremental,
            full
        );
    }

    /// Random subtree deletions judged identically.
    #[test]
    fn deletion_delta_check_matches_full_check(
        units in 1usize..4,
        persons in 1usize..4,
        victim in any::<prop::sample::Index>(),
    ) {
        let schema = full_schema();
        let (mut dir, unit_ids, person_ids) = base_instance(units, persons);
        prop_assume!(LegalityChecker::new(&schema).check(&dir).is_legal());

        // Delete either a person or a whole unit subtree.
        let all: Vec<EntryId> = unit_ids.iter().chain(&person_ids).copied().collect();
        let target = all[victim.index(all.len())];
        let removed: Vec<Entry> = dir
            .remove_subtree(target)
            .unwrap()
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        dir.prepare();

        let incremental = IncrementalChecker::new(&schema).check_deletion(&dir, &removed);
        let full = LegalityChecker::new(&schema).check(&dir);
        prop_assert_eq!(
            incremental.is_legal(),
            full.is_legal(),
            "Δ-delete verdict diverged.\nincremental: {}\nfull: {}",
            incremental,
            full
        );
    }
}

/// Applies `tx` with the batched checker under both engines, asserting the
/// two reports are identical and the verdict matches a full recheck of the
/// final instance. Returns (final instance, batched report).
fn apply_batched_both_engines(
    schema: &DirectorySchema,
    base: &DirectoryInstance,
    tx: &Transaction,
) -> (DirectoryInstance, bschema_core::legality::LegalityReport) {
    let mut d_seq = base.clone();
    let mut d_par = base.clone();
    let a_seq = apply_and_check_with(schema, &mut d_seq, tx, LegalityOptions::sequential())
        .expect("valid transaction");
    let a_par = apply_and_check_with(schema, &mut d_par, tx, LegalityOptions::parallel(0))
        .expect("valid transaction");
    assert_eq!(
        a_seq.report, a_par.report,
        "sequential and parallel batched engines must produce identical reports"
    );
    assert_eq!(a_seq.inserted_roots, a_par.inserted_roots);
    let full = LegalityChecker::new(schema).check(&d_seq);
    assert_eq!(
        a_seq.report.is_legal(),
        full.is_legal(),
        "batched Δ verdict diverged from full recheck.\nbatched: {}\nfull: {}",
        a_seq.report,
        full
    );
    (d_seq, a_seq.report)
}

/// Figure 5, insertion column, row by row: one batched multi-subtree
/// transaction per structural-relationship form, each violating exactly
/// that row alongside an independent *legal* subtree (so the batch mixes
/// verdicts). The batched Δ-check must flag the row and agree with a full
/// recheck.
#[test]
fn figure5_insertion_rows_batched_match_full_recheck() {
    let schema = full_schema();
    let (dir, unit_ids, person_ids) = base_instance(3, 2);
    assert!(LegalityChecker::new(&schema).check(&dir).is_legal());

    let legal_person = |n: usize| entry_template(0, n);
    let unit = |n: usize| entry_template(1, n);

    // Required child (orgUnit →ch person): a new unit whose only person is
    // a grandchild — →de satisfied, →ch violated.
    let mut tx = Transaction::new();
    let outer = tx.insert_under(unit_ids[0], unit(0));
    let inner = tx.insert_under_new(outer, unit(1));
    tx.insert_under_new(inner, legal_person(2));
    tx.insert_under(unit_ids[1], legal_person(3)); // independent legal subtree
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    assert!(
        report.violations().iter().any(|v| matches!(
            v,
            Violation::RequiredRelViolation { kind: RelKind::Child, source, .. } if source == "orgUnit"
        )),
        "orgUnit →ch person row not flagged: {report}"
    );

    // Required descendant (orgGroup →de person): a new unit with no person
    // at all (also breaks →ch; the →de row must be among the findings).
    let mut tx = Transaction::new();
    tx.insert_under(unit_ids[0], unit(0));
    tx.insert_under(unit_ids[2], legal_person(1));
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    assert!(
        report.violations().iter().any(|v| matches!(
            v,
            Violation::RequiredRelViolation { kind: RelKind::Descendant, .. }
        )),
        "orgGroup →de person row not flagged: {report}"
    );

    // Required parent + ancestor (orgUnit →pa orgGroup, orgUnit →an
    // organization): a unit inserted as a forest root has neither.
    let mut tx = Transaction::new();
    let root_unit = tx.insert_root(unit(0));
    tx.insert_under_new(root_unit, legal_person(1));
    tx.insert_under(unit_ids[0], legal_person(2));
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    for kind in [RelKind::Parent, RelKind::Ancestor] {
        assert!(
            report.violations().iter().any(|v| matches!(
                v,
                Violation::RequiredRelViolation { kind: k, source, .. } if *k == kind && source == "orgUnit"
            )),
            "orgUnit {kind:?} row not flagged: {report}"
        );
    }

    // Forbidden child (person ↛ch top): any entry under a person.
    let mut tx = Transaction::new();
    tx.insert_under(person_ids[0], legal_person(0));
    tx.insert_under(unit_ids[0], legal_person(1));
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    assert!(
        report.violations().iter().any(|v| matches!(
            v,
            Violation::ForbiddenRelViolation { kind: ForbidKind::Child, upper, .. } if upper == "person"
        )),
        "person ↛ch top row not flagged: {report}"
    );

    // Forbidden descendant (organization ↛de organization): a second
    // organization nested below the first — not a direct child, so only
    // the descendant row fires.
    let mut tx = Transaction::new();
    let nested_org = tx.insert_under(
        unit_ids[0],
        Entry::builder().classes(["organization", "orgGroup", "top"]).attr("o", "nested").build(),
    );
    tx.insert_under_new(nested_org, legal_person(1));
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    assert!(
        report.violations().iter().any(|v| matches!(
            v,
            Violation::ForbiddenRelViolation { kind: ForbidKind::Descendant, upper, lower, .. }
                if upper == "organization" && lower == "organization"
        )),
        "organization ↛de organization row not flagged: {report}"
    );

    // A batch of only-legal subtrees under distinct units stays legal.
    let mut tx = Transaction::new();
    for (i, &u) in unit_ids.iter().enumerate() {
        let nu = tx.insert_under(u, unit(10 + i));
        tx.insert_under_new(nu, legal_person(20 + i));
    }
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    assert!(report.is_legal(), "all-legal batch must pass: {report}");
}

/// Figure 5, deletion column, row by row, batched: the "no" rows (required
/// child/descendant) and the count-based `◇c` row are re-checked after a
/// multi-root deletion and must match a full recheck.
#[test]
fn figure5_deletion_rows_batched_match_full_recheck() {
    let schema = full_schema();

    // Deleting one person from each of two units (each keeping a sibling
    // person) stays legal.
    let (dir, _, person_ids) = base_instance(2, 2);
    let mut tx = Transaction::new();
    tx.delete(person_ids[0]); // unit 0 keeps person_ids[1]
    tx.delete(person_ids[2]); // unit 1 keeps person_ids[3]
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    assert!(report.is_legal(), "sibling-preserving deletions are legal: {report}");

    // Deleting *both* persons of one unit breaks →ch and →de for it.
    let mut tx = Transaction::new();
    tx.delete(person_ids[0]);
    tx.delete(person_ids[1]);
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    for kind in [RelKind::Child, RelKind::Descendant] {
        assert!(
            report.violations().iter().any(|v| matches!(
                v,
                Violation::RequiredRelViolation { kind: k, .. } if *k == kind
            )),
            "required {kind:?} deletion row not flagged: {report}"
        );
    }

    // Deleting every person breaks ◇person via the count-based test.
    let mut tx = Transaction::new();
    for &p in &person_ids {
        tx.delete(p);
    }
    let (_, report) = apply_batched_both_engines(&schema, &dir, &tx);
    assert!(
        report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::MissingRequiredClass { class } if class == "person")),
        "◇person deletion row not flagged: {report}"
    );

    // Mixed batch: an insertion repairing one unit while another unit's
    // persons are deleted — verdicts must still track the full recheck.
    let (dir2, _, persons2) = base_instance(2, 1);
    let mut tx = Transaction::new();
    tx.delete(persons2[0]); // unit 0 loses its only person...
    let (_, report) = apply_batched_both_engines(&schema, &dir2, &tx);
    assert!(!report.is_legal());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random batched multi-subtree transactions: under both engines the
    /// batched Δ-check report is identical and its verdict equals a full
    /// recheck of the final instance.
    #[test]
    fn batched_transactions_match_full_recheck(
        units in 2usize..5,
        persons in 1usize..3,
        subtrees in proptest::collection::vec(
            (any::<prop::sample::Index>(), proptest::collection::vec(any::<u8>(), 1..4)),
            1..4
        ),
        deletions in proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
    ) {
        let schema = full_schema();
        let (dir, unit_ids, person_ids) = base_instance(units, persons);
        prop_assume!(LegalityChecker::new(&schema).check(&dir).is_legal());

        // Multi-subtree insertion: each subtree is a chain of template
        // entries anchored at a random unit or person.
        let all: Vec<EntryId> = unit_ids.iter().chain(&person_ids).copied().collect();
        let mut tx = Transaction::new();
        let mut n = 0;
        for (anchor, kinds) in &subtrees {
            let parent = all[anchor.index(all.len())];
            let mut prev = None;
            for kind in kinds {
                n += 1;
                let entry = entry_template(*kind, n);
                prev = Some(match prev {
                    None => tx.insert_under(parent, entry),
                    Some(op) => tx.insert_under_new(op, entry),
                });
            }
        }
        // Random leaf-person deletions (skipping insertion anchors, which
        // normalisation rejects as insert-under-deleted).
        let mut doomed: Vec<EntryId> = Vec::new();
        for victim in &deletions {
            let p = person_ids[victim.index(person_ids.len())];
            if !doomed.contains(&p) {
                doomed.push(p);
            }
        }
        for &p in &doomed {
            tx.delete(p);
        }

        let mut d_seq = dir.clone();
        let mut d_par = dir.clone();
        let seq = apply_and_check_with(&schema, &mut d_seq, &tx, LegalityOptions::sequential());
        let par = apply_and_check_with(&schema, &mut d_par, &tx, LegalityOptions::parallel(0));
        // Anchoring an insertion under a deleted person is a TxError for
        // both engines equally; discard those draws.
        prop_assume!(seq.is_ok());
        let (seq, par) = (seq.unwrap(), par.expect("engines must agree on validity"));

        prop_assert_eq!(&seq.report, &par.report, "engine reports diverged");
        prop_assert_eq!(&seq.inserted_roots, &par.inserted_roots);
        let full = LegalityChecker::new(&schema).check(&d_seq);
        prop_assert_eq!(
            seq.report.is_legal(),
            full.is_legal(),
            "batched Δ verdict diverged from full recheck.\nbatched: {}\nfull: {}",
            seq.report,
            full
        );
    }
}

/// The Figure 5 deletion column: every row marked "nothing to check" truly
/// cannot be violated by deletion — exhaustively over small instances.
#[test]
fn deletion_safe_rows_never_break() {
    let schema = full_schema();
    let checker = LegalityChecker::new(&schema);
    let (dir, unit_ids, person_ids) = base_instance(2, 2);
    assert!(checker.check(&dir).is_legal());

    for &target in unit_ids.iter().chain(&person_ids) {
        let mut copy = dir.clone();
        copy.remove_subtree(target).unwrap();
        copy.prepare();
        let report = checker.check(&copy);
        for v in report.violations() {
            use bschema_core::legality::Violation;
            match v {
                // Only the Figure 5 "no" rows and ◇c may appear.
                Violation::RequiredRelViolation { kind, .. } => {
                    assert!(
                        matches!(kind, RelKind::Child | RelKind::Descendant),
                        "deletion violated a Figure 5 'safe' row: {v}"
                    );
                }
                Violation::MissingRequiredClass { .. } => {}
                other => panic!("deletion produced unexpected violation kind: {other}"),
            }
        }
    }
}
