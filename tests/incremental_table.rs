//! Figure 5 / Theorem 4.2 property test: after any single-subtree update to
//! a legal instance, the incremental Δ-check's verdict equals a full
//! from-scratch legality check of the updated instance.

use bschema_core::legality::LegalityChecker;
use bschema_core::paper::white_pages_schema_builder;
use bschema_core::schema::{DirectorySchema, ForbidKind, RelKind};
use bschema_core::updates::IncrementalChecker;
use bschema_directory::{DirectoryInstance, Entry, EntryId};
use proptest::prelude::*;

/// The white-pages schema extended with a required-child and a
/// forbidden-descendant row so all six Figure 5 relationship forms are live.
fn full_schema() -> DirectorySchema {
    white_pages_schema_builder()
        .require_rel("orgUnit", RelKind::Child, "person")
        .and_then(|b| b.forbid_rel("organization", ForbidKind::Descendant, "organization"))
        .map(|b| b.build())
        .unwrap()
}

/// A small *legal* base instance: org → unit → persons, several units.
fn base_instance(units: usize, persons_per_unit: usize) -> (DirectoryInstance, Vec<EntryId>, Vec<EntryId>) {
    let mut dir = DirectoryInstance::white_pages();
    let org = dir.add_root_entry(
        Entry::builder().classes(["organization", "orgGroup", "top"]).attr("o", "x").build(),
    );
    let mut unit_ids = Vec::new();
    let mut person_ids = Vec::new();
    let mut n = 0;
    for u in 0..units {
        let unit = dir
            .add_child_entry(
                org,
                Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", format!("u{u}")).build(),
            )
            .unwrap();
        unit_ids.push(unit);
        for _ in 0..persons_per_unit {
            n += 1;
            let p = dir
                .add_child_entry(
                    unit,
                    Entry::builder()
                        .classes(["researcher", "person", "top"])
                        .attr("uid", format!("p{n}"))
                        .attr("name", format!("p{n}"))
                        .build(),
                )
                .unwrap();
            person_ids.push(p);
        }
    }
    dir.prepare();
    (dir, unit_ids, person_ids)
}

/// Entry templates an insertion subtree can be built from — a mix of legal
/// and violating shapes.
fn entry_template(kind: u8, n: usize) -> Entry {
    match kind % 5 {
        0 => Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", format!("new{n}"))
            .attr("name", format!("new{n}"))
            .build(),
        1 => Entry::builder()
            .classes(["orgUnit", "orgGroup", "top"])
            .attr("ou", format!("new{n}"))
            .build(),
        // Missing required name → content violation.
        2 => Entry::builder()
            .classes(["person", "top"])
            .attr("uid", format!("new{n}"))
            .build(),
        // A second organization → organization ↛de organization risk.
        3 => Entry::builder()
            .classes(["organization", "orgGroup", "top"])
            .attr("o", format!("new{n}"))
            .build(),
        _ => Entry::builder()
            .classes(["staffMember", "person", "top"])
            .attr("uid", format!("new{n}"))
            .attr("name", format!("new{n}"))
            .build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random subtree insertions — legal or not — judged identically by the
    /// Δ-checker and the full checker.
    #[test]
    fn insertion_delta_check_matches_full_check(
        units in 1usize..4,
        persons in 1usize..3,
        anchor in any::<prop::sample::Index>(),
        shape in proptest::collection::vec((any::<u8>(), any::<Option<u8>>()), 1..6),
    ) {
        let schema = full_schema();
        let (mut dir, unit_ids, person_ids) = base_instance(units, persons);
        prop_assume!(LegalityChecker::new(&schema).check(&dir).is_legal());

        // Anchor the subtree at a random existing entry (unit or person —
        // person anchors produce person ↛ch top violations).
        let all: Vec<EntryId> = unit_ids.iter().chain(&person_ids).copied().collect();
        let parent = all[anchor.index(all.len())];

        // Build the subtree: node 0 under `parent`, others under a random
        // earlier subtree node.
        let mut created: Vec<EntryId> = Vec::new();
        for (i, (kind, attach)) in shape.iter().enumerate() {
            let entry = entry_template(*kind, i);
            let under = match attach {
                Some(k) if !created.is_empty() => created[*k as usize % created.len()],
                _ => parent,
            };
            // To keep it one subtree, the first node always goes under
            // `parent`; later "None" attaches also go under node 0.
            let under = if created.is_empty() { parent } else if under == parent { created[0] } else { under };
            created.push(dir.add_child_entry(under, entry).unwrap());
        }
        dir.prepare();

        let delta_root = created[0];
        let incremental = IncrementalChecker::new(&schema).check_insertion(&dir, delta_root);
        let full = LegalityChecker::new(&schema).check(&dir);
        prop_assert_eq!(
            incremental.is_legal(),
            full.is_legal(),
            "Δ-insert verdict diverged.\nincremental: {}\nfull: {}",
            incremental,
            full
        );
    }

    /// Random subtree deletions judged identically.
    #[test]
    fn deletion_delta_check_matches_full_check(
        units in 1usize..4,
        persons in 1usize..4,
        victim in any::<prop::sample::Index>(),
    ) {
        let schema = full_schema();
        let (mut dir, unit_ids, person_ids) = base_instance(units, persons);
        prop_assume!(LegalityChecker::new(&schema).check(&dir).is_legal());

        // Delete either a person or a whole unit subtree.
        let all: Vec<EntryId> = unit_ids.iter().chain(&person_ids).copied().collect();
        let target = all[victim.index(all.len())];
        let removed: Vec<Entry> = dir
            .remove_subtree(target)
            .unwrap()
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        dir.prepare();

        let incremental = IncrementalChecker::new(&schema).check_deletion(&dir, &removed);
        let full = LegalityChecker::new(&schema).check(&dir);
        prop_assert_eq!(
            incremental.is_legal(),
            full.is_legal(),
            "Δ-delete verdict diverged.\nincremental: {}\nfull: {}",
            incremental,
            full
        );
    }
}

/// The Figure 5 deletion column: every row marked "nothing to check" truly
/// cannot be violated by deletion — exhaustively over small instances.
#[test]
fn deletion_safe_rows_never_break() {
    let schema = full_schema();
    let checker = LegalityChecker::new(&schema);
    let (dir, unit_ids, person_ids) = base_instance(2, 2);
    assert!(checker.check(&dir).is_legal());

    for &target in unit_ids.iter().chain(&person_ids) {
        let mut copy = dir.clone();
        copy.remove_subtree(target).unwrap();
        copy.prepare();
        let report = checker.check(&copy);
        for v in report.violations() {
            use bschema_core::legality::Violation;
            match v {
                // Only the Figure 5 "no" rows and ◇c may appear.
                Violation::RequiredRelViolation { kind, .. } => {
                    assert!(
                        matches!(kind, RelKind::Child | RelKind::Descendant),
                        "deletion violated a Figure 5 'safe' row: {v}"
                    );
                }
                Violation::MissingRequiredClass { .. } => {}
                other => panic!("deletion produced unexpected violation kind: {other}"),
            }
        }
    }
}
