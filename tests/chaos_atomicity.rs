//! Chaos differential suite (the robustness capstone): every probe site
//! that fires during a scripted `ManagedDirectory` workload gets exactly
//! one injected panic, and every run must uphold the Theorem 4.1
//! atomicity contract — a failed or panicked transaction leaves the
//! instance byte-identical to its pre-transaction snapshot with
//! `is_legal()` intact, and write-ahead journal recovery reproduces
//! exactly the committed prefix.
//!
//! Seed control: set `CHAOS_SEED=<u64>` to run the campaign under a
//! different seed (CI runs a fixed matrix plus one fresh logged seed).

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};

use bschema_core::consistency::ConsistencyChecker;
use bschema_core::legality::LegalityOptions;
use bschema_core::managed::{ManagedDirectory, ManagedError};
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::updates::Transaction;
use bschema_directory::Entry;
use bschema_faults::FaultPlan;
use bschema_obs::{Probe, SpanId, NO_SPAN};
use bschema_workload::chaos::{run_chaos, run_once, scripted_workload, ChaosConfig};

fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(v) => v.parse().unwrap_or_else(|_| panic!("CHAOS_SEED must be a u64, got {v:?}")),
        Err(_) => 0xC4A05,
    }
}

/// The full sequential campaign: one fail-nth run per injectable event.
/// Every fault either aborts a transaction (verified atomic by the
/// driver) or is absorbed; injection count proves full event coverage.
#[test]
fn chaos_campaign_sequential_covers_every_event() {
    let cfg = ChaosConfig { seed: chaos_seed(), ..ChaosConfig::default() };
    let report = run_chaos(&cfg);
    eprintln!("chaos(seed={:#x}, sequential): {report:?}", cfg.seed);

    // fail_nth(n) leaves events 0..n untouched, so event n always fires:
    // exactly one injection per run.
    assert_eq!(report.injected, report.events, "every event index must inject exactly once");
    assert!(report.aborted_txs > 0, "some faults must abort transactions");
    assert!(report.survived > 0, "post-verdict probe faults must be absorbed");
    assert_eq!(report.crash_cuts, cfg.crash_cuts);

    // The campaign must reach every layer named by the instrumentation:
    // the managed transaction boundary, the Figure 4/5 checkers, and the
    // Δ-query evaluator.
    for site in [
        "span:managed.apply",
        "managed.tx_applied",
        "managed.tx_rolled_back",
        "legality.entries_content_checked",
        "query.evaluated",
    ] {
        assert!(report.sites.contains_key(site), "census must include {site}: {:?}", report.sites);
    }
}

/// The same campaign under the parallel legality engine: worker-thread
/// faults are additionally exercised (and absorbed by sequential retry).
#[test]
fn chaos_campaign_parallel_engine() {
    let cfg = ChaosConfig {
        seed: chaos_seed() ^ 0xA11E1,
        org_size: 40,
        rounds: 5,
        options: LegalityOptions::parallel(3),
        crash_cuts: 8,
    };
    let report = run_chaos(&cfg);
    eprintln!("chaos(seed={:#x}, parallel): {report:?}", cfg.seed);
    assert!(report.injected > 0, "parallel campaign must inject faults");
    assert!(
        report.sites.contains_key("parallel.chunks"),
        "parallel engine must reach worker-chunk sites: {:?}",
        report.sites
    );
}

/// A fault pinned inside a parallel worker chunk is absorbed: the chunk
/// is retried sequentially and the transaction still commits.
#[test]
fn worker_fault_degrades_to_sequential_retry() {
    bschema_faults::silence_injected_panics();
    let cfg = ChaosConfig {
        seed: chaos_seed(),
        org_size: 40,
        rounds: 4,
        options: LegalityOptions::parallel(3),
        ..ChaosConfig::default()
    };
    let w = scripted_workload(&cfg);
    let plan = Arc::new(FaultPlan::fail_at_site("parallel.chunks", 0));
    let stats = run_once(&w, cfg.options, &plan);
    assert_eq!(plan.injected(), 1, "the worker-chunk fault must fire");
    assert_eq!(stats.panicked, 0, "a worker fault must be absorbed, not abort the transaction");
    assert!(stats.applied > 0);
}

/// Fault-injection sweep over the ◇∅ consistency engine: every injected
/// panic is contained by `catch_unwind` at the call site and the
/// fault-free verdict is unchanged (the engine holds no shared state to
/// poison).
#[test]
fn consistency_engine_faults_are_contained() {
    bschema_faults::silence_injected_panics();
    let schema = white_pages_schema();
    let observer = FaultPlan::observer();
    let baseline = ConsistencyChecker::new(&schema).with_probe(&observer).check().is_consistent();
    assert!(baseline, "the paper schema is consistent");
    let events = observer.events();
    assert!(events > 0, "consistency check must hit probe sites");
    assert!(
        observer.sites().keys().any(|s| s.starts_with("consistency.")),
        "census must include consistency sites: {:?}",
        observer.sites()
    );

    for event in 0..events {
        let plan = FaultPlan::fail_nth(event);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ConsistencyChecker::new(&schema).with_probe(&plan).check().is_consistent()
        }));
        match outcome {
            Ok(verdict) => assert!(verdict, "event {event}: fault changed the verdict"),
            Err(payload) => {
                assert!(
                    bschema_faults::is_injected_panic(&*payload),
                    "event {event}: unexpected panic kind"
                );
            }
        }
    }
}

/// Probe that records the order of every instrumentation call.
#[derive(Debug, Default)]
struct OrderProbe {
    calls: Mutex<Vec<String>>,
}

impl OrderProbe {
    fn push(&self, call: String) {
        self.calls.lock().expect("order probe lock").push(call);
    }

    fn calls(&self) -> Vec<String> {
        self.calls.lock().expect("order probe lock").clone()
    }
}

impl Probe for OrderProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, key: &str, by: u64) {
        self.push(format!("add:{key}={by}"));
    }

    fn add_labeled(&self, key: &str, label: &str, _by: u64) {
        self.push(format!("label:{key}.{label}"));
    }

    fn observe(&self, key: &str, value: u64) {
        self.push(format!("observe:{key}={value}"));
    }

    fn span_start(&self, _parent: SpanId, name: &'static str, _ord: u64) -> SpanId {
        self.push(format!("span_start:{name}"));
        NO_SPAN
    }

    fn span_end(&self, _span: SpanId) {
        self.push("span_end".to_owned());
    }
}

fn violating_tx(suciu: bschema_directory::EntryId) -> Transaction {
    let mut tx = Transaction::new();
    // An orgUnit under a person violates the Figure 2/3 schema.
    tx.insert_under(
        suciu,
        Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "oops").build(),
    );
    tx
}

/// Satellite: the rollback reason is recorded through the probe before
/// the `managed.apply` span closes — diagnostics narrate the rollback as
/// it happens, not after the fact.
#[test]
fn rollback_reason_is_recorded_before_span_close() {
    let schema = white_pages_schema();
    let (dir, ids) = white_pages_instance();
    let probe = Arc::new(OrderProbe::default());
    let mut managed = ManagedDirectory::with_instance(schema, dir)
        .expect("paper instance is legal")
        .with_probe(probe.clone());

    let err = managed.apply(&violating_tx(ids.suciu)).unwrap_err();
    assert!(matches!(err, ManagedError::RolledBack(_)), "expected rollback, got {err}");

    let calls = probe.calls();
    let rolled_back = calls
        .iter()
        .position(|c| c == "add:managed.tx_rolled_back=1")
        .unwrap_or_else(|| panic!("rollback counter missing from {calls:?}"));
    let last_span_end = calls
        .iter()
        .rposition(|c| c == "span_end")
        .unwrap_or_else(|| panic!("managed.apply span never closed in {calls:?}"));
    assert!(
        rolled_back < last_span_end,
        "rollback must be recorded before the apply span closes: {calls:?}"
    );
    assert!(
        calls.iter().any(|c| c.starts_with("label:managed.rollback_violation.")),
        "rollback reason labels missing from {calls:?}"
    );
}

/// Satellite: a fault injected *at the rollback-recording site itself*
/// still cannot skip the snapshot restore — recording happens before the
/// restore, and the restore is unconditional.
#[test]
fn rollback_is_restored_even_when_recording_panics() {
    bschema_faults::silence_injected_panics();
    let schema = white_pages_schema();
    let (dir, ids) = white_pages_instance();
    let plan = Arc::new(FaultPlan::fail_at_site("managed.tx_rolled_back", 0));
    let mut managed = ManagedDirectory::with_instance(schema, dir)
        .expect("paper instance is legal")
        .with_probe(plan.clone());
    let before = managed.instance().canonical_bytes();

    let err = managed.apply(&violating_tx(ids.suciu)).unwrap_err();
    assert_eq!(plan.injected(), 1, "the rollback-site fault must fire");
    assert!(
        matches!(&err, ManagedError::Panicked { reason } if reason.contains(bschema_faults::INJECTED_FAULT_MARKER)),
        "expected injected panic, got {err}"
    );
    assert_eq!(
        managed.instance().canonical_bytes(),
        before,
        "snapshot restore must survive a fault in the rollback recording"
    );
    assert!(managed.is_legal());
}
