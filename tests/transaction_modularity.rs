//! Theorem 4.1 property test: a transaction's final-instance legality
//! equals the conjunction of per-subtree incremental verdicts along the
//! normalised insert-then-delete order — independent of the original
//! operation interleaving.

use bschema_core::legality::LegalityChecker;
use bschema_core::paper::white_pages_schema;
use bschema_core::updates::{apply_and_check, Transaction};
use bschema_directory::{DirectoryInstance, Entry, EntryId};
use proptest::prelude::*;

fn base() -> (DirectoryInstance, Vec<EntryId>, Vec<EntryId>) {
    let mut dir = DirectoryInstance::white_pages();
    let org = dir.add_root_entry(
        Entry::builder().classes(["organization", "orgGroup", "top"]).attr("o", "x").build(),
    );
    let mut units = Vec::new();
    let mut persons = Vec::new();
    for u in 0..3 {
        let unit = dir
            .add_child_entry(
                org,
                Entry::builder()
                    .classes(["orgUnit", "orgGroup", "top"])
                    .attr("ou", format!("u{u}"))
                    .build(),
            )
            .unwrap();
        units.push(unit);
        for p in 0..2 {
            persons.push(
                dir.add_child_entry(
                    unit,
                    Entry::builder()
                        .classes(["researcher", "person", "top"])
                        .attr("uid", format!("p{u}-{p}"))
                        .attr("name", format!("p{u}-{p}"))
                        .build(),
                )
                .unwrap(),
            );
        }
    }
    dir.prepare();
    (dir, units, persons)
}

/// One randomized op: insert a person under a unit, insert a unit+person
/// subtree, or delete a person.
#[derive(Debug, Clone)]
enum OpChoice {
    InsertPerson(usize),
    InsertUnitSubtree(usize),
    DeletePerson(usize),
}

fn op_strategy() -> impl Strategy<Value = OpChoice> {
    prop_oneof![
        (0usize..3).prop_map(OpChoice::InsertPerson),
        (0usize..3).prop_map(OpChoice::InsertUnitSubtree),
        (0usize..6).prop_map(OpChoice::DeletePerson),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_conjunction_equals_final_full_check(
        ops in proptest::collection::vec(op_strategy(), 1..6)
    ) {
        let schema = white_pages_schema();
        let (dir, units, persons) = base();
        prop_assume!(LegalityChecker::new(&schema).check(&dir).is_legal());

        // Build the interleaved transaction.
        let mut tx = Transaction::new();
        let mut deleted: Vec<EntryId> = Vec::new();
        let mut counter = 0usize;
        for op in &ops {
            counter += 1;
            match op {
                OpChoice::InsertPerson(u) => {
                    tx.insert_under(
                        units[*u],
                        Entry::builder()
                            .classes(["researcher", "person", "top"])
                            .attr("uid", format!("n{counter}"))
                            .attr("name", format!("n{counter}"))
                            .build(),
                    );
                }
                OpChoice::InsertUnitSubtree(u) => {
                    let unit_op = tx.insert_under(
                        units[*u],
                        Entry::builder()
                            .classes(["orgUnit", "orgGroup", "top"])
                            .attr("ou", format!("n{counter}"))
                            .build(),
                    );
                    tx.insert_under_new(
                        unit_op,
                        Entry::builder()
                            .classes(["person", "top"])
                            .attr("uid", format!("n{counter}b"))
                            .attr("name", format!("n{counter}b"))
                            .build(),
                    );
                }
                OpChoice::DeletePerson(p) => {
                    let victim = persons[*p];
                    if !deleted.contains(&victim) {
                        tx.delete(victim);
                        deleted.push(victim);
                    }
                }
            }
        }

        // Path A: normalised application with per-subtree incremental
        // checks (Theorem 4.1 + Figure 5).
        let mut dir_a = dir.clone();
        let applied = apply_and_check(&schema, &mut dir_a, &tx).expect("tx is structurally valid");

        // Path B: apply the same normalised form without checks, then one
        // full from-scratch legality check.
        let mut dir_b = dir.clone();
        let normalized = tx.normalize(&dir_b).expect("valid");
        for subtree in &normalized.insertions {
            subtree.apply(&mut dir_b).expect("normalised insertion applies");
        }
        for &root in &normalized.deletion_roots {
            dir_b.remove_subtree(root).expect("validated");
        }
        dir_b.prepare();
        let full = LegalityChecker::new(&schema).check(&dir_b);

        // Theorem 4.1: final legal ⇔ all intermediate checks clean.
        prop_assert_eq!(
            applied.report.is_legal(),
            full.is_legal(),
            "modularity broken.\nincremental: {}\nfull: {}",
            applied.report,
            full
        );

        // Both paths agree on the final content, too.
        prop_assert_eq!(dir_a.len(), dir_b.len());
    }
}

/// The §4.1 motivating scenario verbatim: checking after every single op
/// would flag a spurious violation, subtree granularity does not.
#[test]
fn op_granularity_is_not_robust_but_subtree_granularity_is() {
    let schema = white_pages_schema();
    let (mut dir, units, _) = base();
    let checker = LegalityChecker::new(&schema);

    // Apply just the orgUnit insertion: instance becomes (temporarily)
    // illegal — orgGroup ⇒⇒ person has no person under the new unit yet.
    let unit = dir
        .add_child_entry(
            units[0],
            Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "fresh").build(),
        )
        .unwrap();
    dir.prepare();
    assert!(!checker.check(&dir).is_legal(), "mid-transaction state is illegal");

    // Complete the subtree: legality restored.
    dir.add_child_entry(
        unit,
        Entry::builder().classes(["person", "top"]).attr("uid", "k").attr("name", "k").build(),
    )
    .unwrap();
    dir.prepare();
    assert!(checker.check(&dir).is_legal(), "completed subtree is legal");
}
