//! Figure 4 property test: for every structure-schema element form, the
//! generated hierarchical selection query is empty **iff** the instance
//! directly satisfies the element — on arbitrary random instances.

use bschema_core::legality::translate;
use bschema_core::schema::{DirectorySchema, ForbidKind, RelKind};
use bschema_directory::{DirectoryInstance, Entry, EntryId};
use bschema_query::{evaluate, EvalContext};
use proptest::prelude::*;

const CLASSES: [&str; 3] = ["alpha", "beta", "gamma"];

fn schema() -> DirectorySchema {
    let mut b = DirectorySchema::builder();
    for c in CLASSES {
        b = b.core_class(c, "top").expect("fresh class");
    }
    b.build()
}

/// Random forest over the three classes (plus top).
fn instance_strategy() -> impl Strategy<Value = DirectoryInstance> {
    let node = (any::<Option<u8>>(), 0u8..8);
    proptest::collection::vec(node, 1..30).prop_map(|recipe| {
        let mut dir = DirectoryInstance::default();
        let mut ids: Vec<EntryId> = Vec::new();
        for (parent_choice, class_bits) in recipe {
            let mut builder = Entry::builder().class("top");
            for (i, c) in CLASSES.iter().enumerate() {
                if class_bits & (1 << i) != 0 {
                    builder = builder.class(*c);
                }
            }
            let id = match parent_choice {
                Some(k) if !ids.is_empty() => dir
                    .add_child_entry(ids[k as usize % ids.len()], builder.build())
                    .expect("live parent"),
                _ => dir.add_root_entry(builder.build()),
            };
            ids.push(id);
        }
        dir.prepare();
        dir
    })
}

/// Direct (definitional) satisfaction of a required element, Definition 2.6.
fn directly_satisfies_required(
    dir: &DirectoryInstance,
    source: &str,
    kind: RelKind,
    target: &str,
) -> bool {
    let forest = dir.forest();
    dir.iter().all(|(id, e)| {
        if !e.has_class(source) {
            return true;
        }
        let has = |other: EntryId| dir.entry(other).is_some_and(|x| x.has_class(target));
        match kind {
            RelKind::Child => forest.children(id).any(has),
            RelKind::Parent => forest.parent(id).is_some_and(has),
            RelKind::Descendant => forest.descendants(id).any(has),
            RelKind::Ancestor => forest.ancestors(id).any(has),
        }
    })
}

/// Direct satisfaction of a forbidden element.
fn directly_satisfies_forbidden(
    dir: &DirectoryInstance,
    upper: &str,
    kind: ForbidKind,
    lower: &str,
) -> bool {
    let forest = dir.forest();
    dir.iter().all(|(id, e)| {
        if !e.has_class(upper) {
            return true;
        }
        let has = |other: EntryId| dir.entry(other).is_some_and(|x| x.has_class(lower));
        match kind {
            ForbidKind::Child => !forest.children(id).any(has),
            ForbidKind::Descendant => !forest.descendants(id).any(has),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn required_rows_of_figure4(dir in instance_strategy(), si in 0usize..3, ti in 0usize..3) {
        let schema = schema();
        let source = schema.classes().resolve(CLASSES[si]).unwrap();
        let target = schema.classes().resolve(CLASSES[ti]).unwrap();
        let ctx = EvalContext::new(&dir);
        for kind in RelKind::ALL {
            let rel = bschema_core::schema::RequiredRel { source, kind, target };
            let query = translate::required_rel_query(&schema, &rel);
            let query_empty = evaluate(&ctx, &query).is_empty();
            let direct = directly_satisfies_required(&dir, CLASSES[si], kind, CLASSES[ti]);
            prop_assert_eq!(
                query_empty, direct,
                "Figure 4 equivalence failed for kind {:?}: query {}", kind, query
            );
        }
    }

    #[test]
    fn forbidden_rows_of_figure4(dir in instance_strategy(), ui in 0usize..3, li in 0usize..3) {
        let schema = schema();
        let upper = schema.classes().resolve(CLASSES[ui]).unwrap();
        let lower = schema.classes().resolve(CLASSES[li]).unwrap();
        let ctx = EvalContext::new(&dir);
        for kind in ForbidKind::ALL {
            let rel = bschema_core::schema::ForbiddenRel { upper, kind, lower };
            let query = translate::forbidden_rel_query(&schema, &rel);
            let query_empty = evaluate(&ctx, &query).is_empty();
            let direct = directly_satisfies_forbidden(&dir, CLASSES[ui], kind, CLASSES[li]);
            prop_assert_eq!(
                query_empty, direct,
                "Figure 4 equivalence failed for kind {:?}: query {}", kind, query
            );
        }
    }

    #[test]
    fn required_class_row_of_figure4(dir in instance_strategy(), ci in 0usize..3) {
        let schema = schema();
        let class = schema.classes().resolve(CLASSES[ci]).unwrap();
        let ctx = EvalContext::new(&dir);
        let query = translate::required_class_query(&schema, class);
        let query_nonempty = !evaluate(&ctx, &query).is_empty();
        let direct = dir.iter().any(|(_, e)| e.has_class(CLASSES[ci]));
        prop_assert_eq!(query_nonempty, direct);
    }

    #[test]
    fn query_witnesses_are_exactly_the_violators(dir in instance_strategy()) {
        // The required-descendant query's result is precisely the set of
        // source entries with no qualifying descendant.
        let schema = schema();
        let source = schema.classes().resolve("alpha").unwrap();
        let target = schema.classes().resolve("beta").unwrap();
        let rel = bschema_core::schema::RequiredRel {
            source,
            kind: RelKind::Descendant,
            target,
        };
        let query = translate::required_rel_query(&schema, &rel);
        let witnesses = evaluate(&EvalContext::new(&dir), &query);
        let forest = dir.forest();
        let expected: Vec<EntryId> = dir
            .iter()
            .filter(|(id, e)| {
                e.has_class("alpha")
                    && !forest
                        .descendants(*id)
                        .any(|d| dir.entry(d).is_some_and(|x| x.has_class("beta")))
            })
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(witnesses, expected);
    }
}
