//! Loopback integration suite for `bschema-server`: the schema-on-the-wire
//! guarantees, exercised over real TCP connections.
//!
//! The invariants under test are the server's whole reason to exist:
//!
//! 1. **Every committed transaction leaves a legal instance** (§3 checked
//!    via the §4 incremental engine inside the guarded path).
//! 2. **Every rejected transaction leaves the instance byte-identical**
//!    (`DirectoryInstance::canonical_bytes`) and reports a stable,
//!    machine-readable code.
//! 3. **Concurrent clients never observe a torn instance** — searches run
//!    on immutable snapshots, so a reader sees the old or the new legal
//!    directory, never a half-applied transaction. This holds even when a
//!    fault plan panics a worker mid-request.
//! 4. **Sharding is invisible to correctness** — on a `--shards N`
//!    backend, racing single-shard and cross-shard transactions commit
//!    or roll back atomically across every shard they touch, and the
//!    fan-out merge a reader sees is always §3-legal.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bschema_core::legality::LegalityChecker;
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::sharded::shard_of_root_rdn;
use bschema_core::ManagedDirectory;
use bschema_directory::{ldif, Rdn};
use bschema_faults::{silence_injected_panics, site_from_seed, FaultPlan};
use bschema_obs::json::Value;
use bschema_obs::SloPolicy;
use bschema_server::{
    Client, DirectoryService, Monitor, MonitorConfig, Server, ServerConfig, ServiceLimits,
};
use bschema_workload::multi_org_base;

fn white_pages_service() -> DirectoryService {
    let (dir, _) = white_pages_instance();
    let managed =
        ManagedDirectory::with_instance(white_pages_schema(), dir).expect("figure 1 is legal");
    DirectoryService::new(managed)
}

fn spawn_white_pages(threads: usize) -> bschema_server::ServerHandle {
    let config = ServerConfig { threads, ..ServerConfig::default() };
    Server::spawn(Arc::new(white_pages_service()), config).expect("bind loopback")
}

/// A legal person insertion under `ou=databases,ou=attLabs,o=att`.
fn person_ldif(uid: &str) -> String {
    format!(
        "dn: uid={uid},ou=databases,ou=attLabs,o=att\n\
         objectClass: person\nobjectClass: top\nuid: {uid}\nname: {uid} tester\n"
    )
}

/// An insertion that violates the structure schema: a person may not have
/// children (`forbid_rel(person, Child, top)`).
fn illegal_ldif() -> &'static str {
    "dn: uid=intruder,uid=suciu,ou=databases,ou=attLabs,o=att\n\
     objectClass: person\nobjectClass: top\nuid: intruder\nname: intruder\n"
}

/// Dumps the whole directory over the wire and checks §3 legality
/// client-side — the server's word is not taken for it.
fn assert_wire_instance_legal(addr: std::net::SocketAddr) -> usize {
    let mut client = Client::connect(addr).expect("connect for legality dump");
    let text = client.search(None, "sub", "(objectClass=top)", None).expect("dump search");
    let mut dir = ldif::load(&text).expect("server emitted loadable LDIF");
    dir.prepare();
    let schema = white_pages_schema();
    let report = LegalityChecker::new(&schema).check(&dir);
    assert!(report.is_legal(), "wire-visible instance is illegal:\n{report}");
    dir.len()
}

/// The headline test: ≥8 concurrent clients mixing searches with
/// transactions that race pairwise for the same RDN. Exactly one of each
/// racing pair may commit; the loser must see a structured `invalid-tx`
/// rejection; illegal insertions must see `rolled-back`; and the final
/// instance must be legal with exactly the winners present.
#[test]
fn concurrent_clients_mix_searches_and_conflicting_transactions() {
    let handle = spawn_white_pages(4);
    let addr = handle.addr();
    let initial_len = handle.service().len();

    let mut threads = Vec::new();

    // 4 searcher clients: alternate subtree and one-level searches and
    // require every result to be parseable, legal LDIF.
    for s in 0..4 {
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("searcher connects");
            for i in 0..25 {
                let (scope, base, filter) = if (s + i) % 2 == 0 {
                    ("sub", None, "(objectClass=person)")
                } else {
                    ("one", Some("ou=attLabs,o=att"), "(objectClass=top)")
                };
                let text = client.search(base, scope, filter, None).expect("search succeeds");
                let dir = ldif::load(&text).expect("search results are loadable LDIF");
                assert!(dir.len() >= 2, "scope {scope} returned only {} entries", dir.len());
            }
            client.unbind().expect("clean unbind");
        }));
    }

    // 8 writer clients in 4 racing pairs: both members of pair `p` insert
    // `uid=conc<p>` under the same parent. The apply-time duplicate-RDN
    // check makes the race outcome exact: one commit, one `invalid-tx`.
    // Each writer also fires one illegal insertion, which must always be
    // `rolled-back`.
    let mut writer_handles = Vec::new();
    for w in 0..8 {
        writer_handles.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let won = match client.apply_ldif(&person_ldif(&format!("conc{}", w / 2))) {
                Ok(receipt) => {
                    assert_eq!(receipt.ops, 1);
                    true
                }
                Err(e) => {
                    assert_eq!(
                        e.server_code(),
                        Some("invalid-tx"),
                        "RDN-race loser got unexpected rejection: {e}"
                    );
                    false
                }
            };
            let err = client.apply_ldif(illegal_ldif()).expect_err("illegal tx must be refused");
            assert_eq!(err.server_code(), Some("rolled-back"), "{err}");
            // The session survives its rejections.
            assert!(client.ping().expect("ping after rejection") >= initial_len);
            client.unbind().expect("clean unbind");
            won
        }));
    }

    let mut wins = [0usize; 4];
    for (w, t) in writer_handles.into_iter().enumerate() {
        if t.join().expect("writer thread") {
            wins[w / 2] += 1;
        }
    }
    for t in threads {
        t.join().expect("searcher thread");
    }
    assert_eq!(wins, [1, 1, 1, 1], "each RDN race must have exactly one winner");

    let final_len = assert_wire_instance_legal(addr);
    assert_eq!(final_len, initial_len + 4, "winners and only winners are present");
    let mut client = Client::connect(addr).expect("final check client");
    for p in 0..4 {
        let text =
            client.search(None, "sub", &format!("(uid=conc{p})"), None).expect("winner lookup");
        assert_eq!(
            ldif::load(&text).expect("loadable").len(),
            1,
            "uid=conc{p} must exist exactly once"
        );
    }
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Invariant 2, measured at the byte level: every rejection code leaves
/// `canonical_bytes` untouched.
#[test]
fn rejected_transactions_leave_the_instance_byte_identical() {
    let handle = spawn_white_pages(2);
    let addr = handle.addr();
    let before = handle.service().snapshot().canonical_bytes();

    let mut client = Client::connect(addr).expect("connect");
    let cases: &[(&str, &str)] = &[
        (illegal_ldif(), "rolled-back"),
        ("dn: uid=ghost,o=att\nchangetype: delete\n", "invalid-tx"),
        ("dn: uid=orphan,ou=nowhere,o=att\nobjectClass: person\n", "invalid-tx"),
        ("this is not ldif at all\n", "bad-ldif"),
    ];
    for (ldif_body, want_code) in cases {
        let err = client.apply_ldif(ldif_body).expect_err("must be refused");
        assert_eq!(err.server_code(), Some(*want_code), "{err}");
        assert_eq!(
            handle.service().snapshot().canonical_bytes(),
            before,
            "rejection {want_code} disturbed the instance"
        );
    }
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Wire limits hold on the server socket: an oversized `TXN` payload is
/// answered `ERR limit` and the connection is cut, while a fresh,
/// well-behaved client is unaffected.
#[test]
fn oversized_frames_are_refused_at_the_wire() {
    let service = white_pages_service().with_limits(ServiceLimits {
        wire: bschema_server::WireLimits { max_payload_len: 256, ..Default::default() },
        ..Default::default()
    });
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..Default::default() })
            .expect("bind");
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    let huge = person_ldif(&"x".repeat(600));
    let err = client.apply_ldif(&huge).expect_err("oversized payload refused");
    assert_eq!(err.server_code(), Some("limit"), "{err}");

    let mut fresh = Client::connect(addr).expect("fresh client");
    assert_eq!(fresh.ping().expect("server still serves"), 6);
    fresh.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Backpressure edge: with one worker and a depth-1 queue, holding the
/// worker with an open session makes further connections bounce with a
/// structured `busy` — the server refuses loudly instead of buffering
/// without bound.
#[test]
fn overloaded_server_answers_busy() {
    let config = ServerConfig { threads: 1, queue_depth: 1, ..ServerConfig::default() };
    let handle = Server::spawn(Arc::new(white_pages_service()), config).expect("bind");
    let addr = handle.addr();

    // Occupy the only worker, then park one connection in the queue.
    let mut holder = Client::connect(addr).expect("holder connects");
    holder.ping().expect("holder owns the worker");
    let _queued = Client::connect(addr).expect("queued connection");

    let mut saw_busy = false;
    for _ in 0..20 {
        thread::sleep(Duration::from_millis(25));
        let Ok(mut probe_client) = Client::connect(addr) else { continue };
        match probe_client.ping() {
            Err(ref e) if e.server_code() == Some("busy") => {
                saw_busy = true;
                break;
            }
            // The acceptor may not have processed earlier sockets yet, or
            // the refused connection died before the reply: retry.
            _ => continue,
        }
    }
    assert!(saw_busy, "full queue never produced ERR busy");

    holder.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Runs a fixed client workload against `addr`, tolerating per-request
/// failures (a chaos run may panic any single request), and returns the
/// uids whose insertion the server *positively confirmed* committed.
fn tolerant_workload(addr: std::net::SocketAddr, tag: &str) -> Vec<String> {
    let mut committed = Vec::new();
    for step in 0..6 {
        let Ok(mut client) = Client::connect(addr) else { continue };
        let _ = client.ping();
        let _ = client.search(None, "sub", "(objectClass=person)", None);
        let uid = format!("{tag}{step}");
        if client.apply_ldif(&person_ldif(&uid)).is_ok() {
            committed.push(uid);
        }
        let _ = client.apply_ldif(illegal_ldif());
        let _ = client.search(Some("ou=attLabs,o=att"), "one", "(objectClass=top)", Some(10));
    }
    committed
}

/// Chaos: enumerate the `server.*` probe sites with an observer plan,
/// then — per seed — panic a worker at one seed-chosen site while a
/// concurrent reader hammers searches. Whatever the fault hits, readers
/// must only ever see loadable, *legal* instances (old or new, never
/// torn), every positively-confirmed commit must survive, and the final
/// instance must be legal.
#[test]
fn injected_worker_panics_never_tear_the_instance() {
    silence_injected_panics();

    // Census pass: which server-path sites does this workload visit?
    let census_plan = Arc::new(FaultPlan::observer());
    let service = white_pages_service().with_probe(census_plan.clone());
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 3, ..Default::default() })
            .expect("bind census server");
    tolerant_workload(handle.addr(), "census");
    handle.shutdown();
    handle.wait();
    let census = census_plan.sites();
    assert!(
        census.keys().any(|site| site.starts_with("server.")),
        "census found no server-path sites: {census:?}"
    );

    let mut fired = 0u64;
    for seed in 0..6u64 {
        let (site, occurrence) =
            site_from_seed(&census, "server.", seed).expect("census has server sites");
        let plan = Arc::new(FaultPlan::fail_at_site(&site, occurrence));
        let service = white_pages_service().with_probe(plan.clone());
        let handle =
            Server::spawn(Arc::new(service), ServerConfig { threads: 3, ..Default::default() })
                .expect("bind chaos server");
        let addr = handle.addr();

        // Concurrent reader: every search that succeeds must return a
        // loadable, legal instance — the torn-state detector.
        let stop = Arc::new(AtomicBool::new(false));
        let reader_stop = stop.clone();
        let reader = thread::spawn(move || {
            let schema = white_pages_schema();
            let checker = LegalityChecker::new(&schema);
            while !reader_stop.load(Ordering::SeqCst) {
                let Ok(mut client) = Client::connect(addr) else { continue };
                if let Ok(text) = client.search(None, "sub", "(objectClass=top)", None) {
                    let mut dir = ldif::load(&text).expect("reader got unloadable LDIF");
                    dir.prepare();
                    let report = checker.check(&dir);
                    assert!(report.is_legal(), "reader saw an illegal instance:\n{report}");
                }
                thread::sleep(Duration::from_millis(5));
            }
        });

        let committed = tolerant_workload(addr, &format!("chaos{seed}x"));
        stop.store(true, Ordering::SeqCst);
        reader.join().expect("reader saw only legal instances");

        // Consistency after the storm: the service's own instance is
        // legal and every confirmed commit is present.
        let snapshot = handle.service().snapshot();
        let schema = white_pages_schema();
        let report = LegalityChecker::new(&schema).check(&snapshot);
        assert!(
            report.is_legal(),
            "seed {seed} fault at {site}:{occurrence} left an illegal instance:\n{report}"
        );
        for uid in &committed {
            assert!(
                snapshot.iter().any(|(_, e)| e.first_value("uid") == Some(uid)),
                "seed {seed} fault at {site}:{occurrence}: confirmed commit uid={uid} vanished"
            );
        }
        assert!(plan.injected() <= 1, "a plan injects at most one fault");
        fired += plan.injected();
        handle.shutdown();
        handle.wait();
    }
    assert!(fired >= 1, "no seed ever reached its injection point");
}

/// Crash-recovery over the wire: commits journaled by one server
/// generation are replayed into the next; rejected transactions are not.
#[test]
fn journal_restart_recovers_wire_commits() {
    let path = std::env::temp_dir()
        .join(format!("bschema-server-loopback-{}-journal.ldif", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (service, replayed) =
        white_pages_service().with_journal(&path).expect("attach fresh journal");
    assert_eq!(replayed, 0);
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..Default::default() })
            .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.apply_ldif(&person_ldif("jrn1")).expect("first commit");
    client.apply_ldif(&person_ldif("jrn2")).expect("second commit");
    let err = client.apply_ldif(illegal_ldif()).expect_err("refused");
    assert_eq!(err.server_code(), Some("rolled-back"));
    let len_before = client.ping().expect("size");
    client.shutdown_server().expect("shutdown");
    handle.wait();

    // Next generation: a fresh figure-1 instance plus the journal.
    let (service, replayed) = white_pages_service().with_journal(&path).expect("reattach journal");
    assert_eq!(replayed, 2, "exactly the committed transactions replay");
    assert_eq!(service.len(), len_before);
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..Default::default() })
            .expect("bind recovered");
    let final_len = assert_wire_instance_legal(handle.addr());
    assert_eq!(final_len, len_before);
    let mut client = Client::connect(handle.addr()).expect("connect recovered");
    for uid in ["jrn1", "jrn2"] {
        let text = client.search(None, "sub", &format!("(uid={uid})"), None).expect("lookup");
        assert_eq!(ldif::load(&text).expect("loadable").len(), 1, "uid={uid} recovered");
    }
    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_file(&path);
}

/// Number of generated organizations in the sharded loopback base.
const SHARDED_ORGS: usize = 4;

/// A legal person insertion directly under a generated org root.
fn org_person_ldif(uid: &str, org: &str) -> String {
    format!(
        "dn: uid={uid},o={org}\n\
         objectClass: person\nobjectClass: top\nuid: {uid}\nname: {uid} tester\n"
    )
}

/// Invariant 4: 8 clients race single-shard and cross-shard transactions
/// against a 4-shard backend while a live reader dumps the fan-out merge
/// and checks §3 legality client-side. Then two deterministic same-RDN
/// races: on a single shard (one winner, losers `invalid-tx`) and across
/// shards (the loser's *other-shard* half must leave no residue — the
/// 2-phase rollback observed over the wire).
#[test]
fn sharded_server_survives_racing_single_and_cross_shard_writers() {
    const SHARDS: usize = 4;
    let base = multi_org_base(SHARDED_ORGS, 12, 0xC0FFEE);
    let service = DirectoryService::new_sharded(white_pages_schema(), base, SHARDS)
        .expect("multi-org base is legal");
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 4, ..ServerConfig::default() })
            .expect("bind sharded loopback");
    let addr = handle.addr();
    assert_eq!(handle.service().shards(), SHARDS);
    let initial_len = handle.service().len();

    // Two org roots guaranteed to live on distinct shards, so the
    // cross-shard bodies below really take the 2-phase path.
    let shard_of = |name: &str| shard_of_root_rdn(&Rdn::single("o", name), SHARDS);
    let org_a = "org0".to_string();
    let org_b = (1..SHARDED_ORGS)
        .map(|i| format!("org{i}"))
        .find(|n| shard_of(n) != shard_of(&org_a))
        .expect("four fixed org names cannot all hash to one of four shards here");

    // Live reader: every dump that succeeds during the race is the
    // fan-out merge of the per-shard snapshots — it must be loadable
    // and legal at every instant, or a cross-shard commit was torn.
    let stop = Arc::new(AtomicBool::new(false));
    let reader_stop = stop.clone();
    let reader = thread::spawn(move || {
        let schema = white_pages_schema();
        let checker = LegalityChecker::new(&schema);
        let mut dumps = 0usize;
        while !reader_stop.load(Ordering::SeqCst) {
            let Ok(mut client) = Client::connect(addr) else { continue };
            if let Ok(text) = client.search(None, "sub", "(objectClass=top)", None) {
                let mut dir = ldif::load(&text).expect("reader got unloadable LDIF");
                dir.prepare();
                let report = checker.check(&dir);
                assert!(report.is_legal(), "reader saw an illegal merged instance:\n{report}");
                dumps += 1;
            }
            thread::sleep(Duration::from_millis(2));
        }
        dumps
    });

    // 8 writers: evens insert single-org persons (single-shard route),
    // odds insert pairs spanning both orgs (cross-shard 2-phase). Each
    // also fires one nameless cross-shard body that must be rolled back
    // on every shard it touched.
    let mut writers = Vec::new();
    for w in 0..8usize {
        let (org_a, org_b) = (org_a.clone(), org_b.clone());
        writers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut inserted = 0usize;
            for i in 0..6 {
                if w % 2 == 0 {
                    let org = if i % 2 == 0 { &org_a } else { &org_b };
                    let receipt = client
                        .apply_ldif(&org_person_ldif(&format!("w{w}s{i}"), org))
                        .expect("single-shard insert commits");
                    assert_eq!(receipt.ops, 1);
                    assert_eq!(receipt.shards, 1, "single-subtree tx crossed shards");
                    inserted += 1;
                } else {
                    let body = format!(
                        "{}\n{}",
                        org_person_ldif(&format!("w{w}x{i}a"), &org_a),
                        org_person_ldif(&format!("w{w}x{i}b"), &org_b),
                    );
                    let receipt = client.apply_ldif(&body).expect("cross-shard insert commits");
                    assert_eq!(receipt.ops, 2);
                    assert_eq!(receipt.shards, 2, "pair must span exactly two shards");
                    inserted += 2;
                }
            }
            // A nameless person is content-illegal: the cross-shard body
            // must report `rolled-back` and add nothing anywhere.
            let bad = format!(
                "dn: uid=bad{w},o={org_a}\n\
                 objectClass: person\nobjectClass: top\nuid: bad{w}\n\n{}",
                org_person_ldif(&format!("bad{w}b"), &org_b)
            );
            let err = client.apply_ldif(&bad).expect_err("illegal cross-shard tx refused");
            assert_eq!(err.server_code(), Some("rolled-back"), "{err}");
            client.unbind().expect("clean unbind");
            inserted
        }));
    }
    let mut expected_new = 0usize;
    for t in writers {
        expected_new += t.join().expect("writer thread");
    }

    // Same-RDN race on one shard: all four clients insert `uid=race` at
    // the same DN. Exactly one commits; losers see `invalid-tx`.
    let mut racers = Vec::new();
    for _ in 0..4 {
        let org_a = org_a.clone();
        racers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("racer connects");
            match client.apply_ldif(&org_person_ldif("race", &org_a)) {
                Ok(receipt) => {
                    assert_eq!(receipt.shards, 1);
                    true
                }
                Err(e) => {
                    assert_eq!(e.server_code(), Some("invalid-tx"), "{e}");
                    false
                }
            }
        }));
    }
    let single_winners =
        racers.into_iter().map(|t| t.join().expect("racer")).filter(|&w| w).count();
    assert_eq!(single_winners, 1, "single-shard RDN race must have exactly one winner");
    expected_new += 1;

    // Same-RDN race across shards: each client pairs the *conflicting*
    // `uid=xrace` on org_a's shard with a *unique* person on org_b's
    // shard. Exactly one pair commits; every loser's org_b half must
    // have been rolled back on the non-conflicting shard too.
    let mut racers = Vec::new();
    for w in 0..4usize {
        let (org_a, org_b) = (org_a.clone(), org_b.clone());
        racers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("cross racer connects");
            let body = format!(
                "{}\n{}",
                org_person_ldif("xrace", &org_a),
                org_person_ldif(&format!("xr{w}"), &org_b),
            );
            match client.apply_ldif(&body) {
                Ok(receipt) => {
                    assert_eq!(receipt.shards, 2);
                    Some(w)
                }
                Err(e) => {
                    assert_eq!(e.server_code(), Some("invalid-tx"), "{e}");
                    None
                }
            }
        }));
    }
    let cross_winners: Vec<usize> =
        racers.into_iter().filter_map(|t| t.join().expect("cross racer")).collect();
    assert_eq!(cross_winners.len(), 1, "cross-shard RDN race must have exactly one winner");
    expected_new += 2;

    stop.store(true, Ordering::SeqCst);
    let dumps = reader.join().expect("reader saw only legal merges");
    assert!(dumps > 0, "the live reader never completed a dump");

    // Final state over the wire: legal, exactly the winners present.
    let final_len = assert_wire_instance_legal(addr);
    assert_eq!(final_len, initial_len + expected_new, "exactly the committed entries persist");
    let mut client = Client::connect(addr).expect("final check client");
    let count = |client: &mut Client, filter: &str| {
        let text = client.search(None, "sub", filter, None).expect("final lookup");
        ldif::load(&text).expect("loadable").len()
    };
    assert_eq!(count(&mut client, "(uid=race)"), 1, "uid=race must exist exactly once");
    assert_eq!(count(&mut client, "(uid=xrace)"), 1, "uid=xrace must exist exactly once");
    for w in 0..4usize {
        let present = count(&mut client, &format!("(uid=xr{w})"));
        let want = usize::from(cross_winners.contains(&w));
        assert_eq!(
            present, want,
            "cross-race half uid=xr{w}: loser halves must be rolled back off org_b's shard"
        );
    }
    assert_eq!(count(&mut client, "(uid=bad0)"), 0, "rolled-back tx left residue");
    // Base-scoped search routes to org_b's shard alone and still sees
    // every committed entry under that root.
    let scoped = client
        .search(Some(&format!("o={org_b}")), "sub", "(objectClass=person)", None)
        .expect("base-scoped search");
    assert!(
        ldif::load(&scoped).expect("loadable").len() >= 6,
        "base-scoped search missed committed entries under o={org_b}"
    );
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

// ---------------------------------------------------------------------------
// The health plane: HEALTH shape, WATCH streaming, SLO burn alerting.
// ---------------------------------------------------------------------------

/// The pinned per-shard signal set — dashboards and the CI lint key on
/// these names, so a rename here is an API break.
const SHARD_SIGNALS: [&str; 6] =
    ["entries", "journal_records", "journal_bytes", "snapshot_age_s", "prepares", "commits"];

/// Attaches a monitor (the `serve --monitor-interval/--slo/--audit`
/// wiring, minus the CLI).
fn monitored(
    service: DirectoryService,
    interval_ms: u64,
    slo: Option<&str>,
    audit: Option<std::path::PathBuf>,
) -> DirectoryService {
    service.with_monitor(Arc::new(Monitor::new(MonitorConfig {
        interval: Duration::from_millis(interval_ms),
        slo: slo.map(|s| SloPolicy::parse(s).expect("test SLO spec parses")),
        audit_path: audit,
        ..MonitorConfig::default()
    })))
}

fn signal_names(container: &Value) -> Vec<String> {
    container
        .get("signals")
        .and_then(Value::items)
        .unwrap_or(&[])
        .iter()
        .map(|s| s.get("name").and_then(Value::as_str).unwrap_or("?").to_owned())
        .collect()
}

/// The HEALTH surface is pinned: same sections and signal names at one
/// shard (no SLO differences aside) and at four, with the sharded-only
/// extras (◇c ledger, 2PC rollback gauge) appearing exactly when the
/// backend is sharded.
#[test]
fn health_shape_is_pinned_at_one_and_four_shards() {
    // --- 1 shard, with an SLO so the slo section and slo_burn signal exist.
    let service = monitored(white_pages_service(), 20, Some("p99=500ms,err=50%"), None);
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..ServerConfig::default() })
            .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");
    let json = client.health_json().expect("HEALTH answers");
    let v = Value::parse(&json).expect("HEALTH is valid JSON");
    assert_eq!(v.get("shards_total").and_then(Value::as_u64), Some(1), "{json}");
    assert!(
        matches!(v.get("verdict").and_then(Value::as_str), Some("ok" | "warn" | "crit")),
        "{json}"
    );
    for key in ["ticks", "window", "fitness"] {
        assert!(v.get(key).is_some(), "missing section {key}: {json}");
    }
    assert_eq!(v.path("slo.policy.p99_us").and_then(Value::as_u64), Some(500_000), "{json}");
    assert_eq!(v.get("ledger"), Some(&Value::Null), "single backend has no ◇c ledger: {json}");
    assert_eq!(v.path("fitness.legal_rate").and_then(Value::as_f64), Some(1.0), "{json}");
    let global = signal_names(&v);
    for name in ["request_p99_us", "err_rate", "queue_depth_max", "rollback_rate", "slo_burn"] {
        assert!(global.iter().any(|g| g == name), "missing global signal {name}: {global:?}");
    }
    assert!(!global.iter().any(|g| g == "ledger_min"), "ledger_min on a single backend");
    let shards = v.get("shards").and_then(Value::items).expect("shards array");
    assert_eq!(shards.len(), 1, "{json}");
    assert_eq!(signal_names(&shards[0]), SHARD_SIGNALS, "{json}");
    client.shutdown_server().expect("shutdown");
    handle.wait();

    // --- 4 shards, no SLO: per-shard shape ×4 plus the ledger extras.
    // The monitor samples the request recorder, so wire one in as the
    // `serve` builder chain does.
    let base = multi_org_base(4, 20, 0xA11CE);
    let recorder = Arc::new(bschema_obs::Recorder::new());
    let service = DirectoryService::new_sharded(white_pages_schema(), base, 4)
        .expect("multi-org base is legal")
        .with_probe(recorder.clone())
        .with_recorder(recorder);
    let service = monitored(service, 20, None, None);
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..ServerConfig::default() })
            .expect("bind sharded");
    let mut client = Client::connect(handle.addr()).expect("connect");
    // One committed write so fitness/journal signals have something
    // real — then wait for the commit to enter the tick window (fitness
    // is computed over sampled ticks, not live counters).
    client.apply_ldif(&org_person_ldif("healthprobe", "org0")).expect("probe insert commits");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let (json, v) = loop {
        let json = client.health_json().expect("HEALTH answers");
        let v = Value::parse(&json).expect("HEALTH is valid JSON");
        if v.path("fitness.committed").and_then(Value::as_u64) == Some(1) {
            break (json, v);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tick window never sampled the commit: {json}"
        );
        thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(v.get("shards_total").and_then(Value::as_u64), Some(4), "{json}");
    assert_eq!(v.get("slo"), Some(&Value::Null), "no SLO configured: {json}");
    assert!(
        v.path("ledger.min").and_then(Value::as_u64).expect("sharded ◇c ledger present") >= 1,
        "{json}"
    );
    let global = signal_names(&v);
    assert!(global.iter().any(|g| g == "ledger_min"), "{global:?}");
    assert!(!global.iter().any(|g| g == "slo_burn"), "slo_burn without an SLO: {global:?}");
    let shards = v.get("shards").and_then(Value::items).expect("shards array");
    assert_eq!(shards.len(), 4, "{json}");
    for shard in shards {
        assert_eq!(signal_names(shard), SHARD_SIGNALS, "{json}");
    }
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// WATCH streams monitor ticks as they are published: at least three,
/// strictly ordered, each a valid JSON frame carrying the burn rate and
/// the windowed delta, with a clean `watch-end` close.
#[test]
fn watch_streams_at_least_three_ordered_ticks() {
    let recorder = Arc::new(bschema_obs::Recorder::new());
    let service = white_pages_service().with_probe(recorder.clone()).with_recorder(recorder);
    let service = monitored(service, 15, Some("p99=500ms"), None);
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..ServerConfig::default() })
            .expect("bind");
    let addr = handle.addr();

    // Background traffic so the frames have deltas to carry.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic_stop = stop.clone();
    let traffic = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("traffic connects");
        while !traffic_stop.load(Ordering::SeqCst) {
            client.ping().expect("ping");
            thread::sleep(Duration::from_millis(2));
        }
        client.unbind().expect("unbind");
    });

    let client = Client::connect(addr).expect("watcher connects");
    let mut seqs = Vec::new();
    let streamed = client
        .watch(3, |seq, json| {
            let v = Value::parse(json).expect("tick frame is valid JSON");
            assert!(v.get("burn").and_then(Value::as_f64).is_some(), "{json}");
            assert!(v.path("delta.counters").is_some(), "{json}");
            seqs.push(seq);
            true
        })
        .expect("watch stream completes");
    assert_eq!(streamed, 3);
    assert_eq!(seqs.len(), 3);
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "ticks out of order: {seqs:?}");

    stop.store(true, Ordering::SeqCst);
    traffic.join().expect("traffic thread");
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// The burn alert is edge-triggered: a fault-injected run — every
/// transaction violates the error budget — raises exactly one alert
/// however many ticks burn, and the alert lands in all three sinks
/// (metrics counter, flight recorder via TRACE, audit trail).
#[test]
fn slo_burn_alert_fires_exactly_once_per_excursion() {
    let audit =
        std::env::temp_dir().join(format!("bschema-audit-{}-{}.log", std::process::id(), line!()));
    let _ = std::fs::remove_file(&audit);
    let recorder = Arc::new(bschema_obs::Recorder::new());
    let flight = Arc::new(bschema_obs::FlightRecorder::new(16));
    let service = white_pages_service()
        .with_probe(recorder.clone())
        .with_recorder(recorder.clone())
        .with_flight_recorder(flight.clone());
    // A 1% error budget: the all-rejections workload below burns it
    // instantly, and keeps burning for every subsequent tick.
    let service = monitored(service, 10, Some("err=1%"), Some(audit.clone()));
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..ServerConfig::default() })
            .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    for _ in 0..5 {
        let err = client.apply_ldif(illegal_ldif()).expect_err("illegal tx refused");
        assert_eq!(err.server_code(), Some("rolled-back"), "{err}");
    }
    // Sit through several burning ticks; the latch must hold the edge.
    let watcher = Client::connect(handle.addr()).expect("watcher connects");
    let ticks = watcher.watch(4, |_, _| true).expect("watch during burn");
    assert_eq!(ticks, 4);

    let json = client.health_json().expect("HEALTH answers");
    let v = Value::parse(&json).expect("valid JSON");
    assert_eq!(v.path("slo.burning").map(|b| b == &Value::Bool(true)), Some(true), "{json}");
    assert_eq!(v.path("slo.alerts").and_then(Value::as_u64), Some(1), "alert re-fired: {json}");

    let metrics = recorder.metrics();
    assert_eq!(metrics.counter("server.slo_burn_alert"), 1, "counter edge re-fired");
    let alert = flight
        .recent()
        .into_iter()
        .find(|r| r.verb == "ALERT")
        .expect("alert flight-recorded for TRACE");
    assert_eq!(alert.status, "slo-burn");
    assert_eq!(alert.root.shape(), "monitor.slo_burn");

    let trail = std::fs::read_to_string(&audit).expect("audit trail written");
    let fired: Vec<&str> = trail.lines().filter(|l| l.contains(" slo-burn ")).collect();
    assert_eq!(fired.len(), 1, "audit trail:\n{trail}");
    assert!(fired[0].starts_with("AUDIT "), "{trail}");
    let detail = fired[0].splitn(4, ' ').nth(3).expect("detail json");
    assert!(bschema_obs::json::is_valid(detail), "{detail}");

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_file(&audit);
}
