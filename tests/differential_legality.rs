//! Differential test oracle for the parallel legality engine (PR 1).
//!
//! Three independent checkers must agree on every randomized input:
//!
//! * the **sequential** Theorem 3.1 checker (query reduction),
//! * the **parallel** engine ([`LegalityOptions::parallel`]) at several
//!   thread counts — required to be *byte-identical* to the sequential
//!   report (same violations, same order), and
//! * the **naive** traversal baseline (`legality/naive.rs`) — required to
//!   agree up to ordering ([`LegalityReport::normalized`]).
//!
//! Inputs come from the `bschema-workload` generators with fixed RNG
//! seeds, so every case is reproducible: organisation-shaped directories
//! (legal and with injected violations), randomly generated schemas
//! (checked both against their consistency witnesses and against
//! mismatched org directories), and random update transactions whose
//! batched Δ-checks are compared across engines and against full
//! rechecks. Together the suite runs well over 256 cases.

use bschema_core::consistency::build_witness;
use bschema_core::legality::{LegalityChecker, LegalityOptions};
use bschema_core::paper::white_pages_schema;
use bschema_core::schema::DirectorySchema;
use bschema_core::updates::{apply_and_check, apply_and_check_with, Transaction};
use bschema_directory::DirectoryInstance;
use bschema_workload::{
    OrgGenerator, OrgParams, SchemaGenerator, SchemaParams, TxGenerator, TxParams,
};

/// Thread counts exercised for the parallel engine: all cores, a couple,
/// an odd count larger than most inputs' chunk counts.
const THREAD_COUNTS: [usize; 3] = [0, 2, 5];

/// Asserts all three checkers produce the same report for (schema, dir) —
/// with and without an instrumentation probe attached. Returns the agreed
/// verdict.
fn engines_agree(schema: &DirectorySchema, dir: &DirectoryInstance, label: &str) -> bool {
    let sequential = LegalityChecker::new(schema).check(dir);
    // Attaching a recording probe must not perturb the report: the
    // instrumented sequential and parallel runs are byte-identical to the
    // uninstrumented sequential baseline.
    let recorder = bschema_obs::Recorder::new();
    let probed = LegalityChecker::new(schema).with_probe(&recorder).check(dir);
    assert_eq!(
        sequential, probed,
        "{label}: instrumented sequential report differs from no-op-probe report"
    );
    let probed_parallel = LegalityChecker::new(schema)
        .with_options(LegalityOptions::parallel(2))
        .with_probe(&recorder)
        .check(dir);
    assert_eq!(
        sequential, probed_parallel,
        "{label}: instrumented parallel report differs from no-op-probe report"
    );
    for threads in THREAD_COUNTS {
        let parallel = LegalityChecker::new(schema)
            .with_options(LegalityOptions::parallel(threads))
            .check(dir);
        assert_eq!(
            sequential, parallel,
            "{label}: parallel (threads={threads}) report differs from sequential.\n\
             sequential: {sequential}\nparallel: {parallel}"
        );
    }
    let naive = LegalityChecker::new(schema).check_naive(dir).normalized();
    let normalized = sequential.clone().normalized();
    assert_eq!(
        normalized, naive,
        "{label}: naive baseline disagrees.\nfast: {normalized}\nnaive: {naive}"
    );
    sequential.is_legal()
}

/// 168 cases: org directories across sizes, seeds, and injected-violation
/// counts. Covers the legal fast path and mixed content + structure
/// violation reports.
#[test]
fn org_directories_all_engines_agree() {
    let schema = white_pages_schema();
    let mut legal_cases = 0;
    let mut illegal_cases = 0;
    for case in 0..168u64 {
        let size = 40 + (case as usize % 7) * 60;
        let violations = match case % 4 {
            0 => 0,
            1 => 1,
            2 => 4,
            _ => 9,
        };
        let params = OrgParams {
            target_entries: size,
            violations,
            seed: 1000 + case,
            ..OrgParams::default()
        };
        let org = OrgGenerator::new(params).generate();
        let legal = engines_agree(&schema, &org.dir, &format!("org case {case}"));
        if legal {
            legal_cases += 1;
        } else {
            illegal_cases += 1;
        }
        // Injected violations must actually be detected (oracle sanity:
        // agreeing on "everything is legal" would be vacuous).
        if violations > 0 {
            assert!(!legal, "case {case}: {violations} injected violations went undetected");
        }
    }
    assert!(legal_cases >= 40, "suite must exercise the legal path (got {legal_cases})");
    assert!(illegal_cases >= 40, "suite must exercise violation reporting (got {illegal_cases})");
}

/// 60 cases: randomly generated schemas checked against their own
/// consistency witnesses (legal) and against a mismatched org directory
/// (dense unknown-class / structure violations).
#[test]
fn generated_schemas_all_engines_agree() {
    let org =
        OrgGenerator::new(OrgParams { target_entries: 120, seed: 77, ..OrgParams::default() })
            .generate();
    let mut cases = 0;
    for seed in 0..30u64 {
        let mut generator = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
        let schema = if seed % 2 == 0 { generator.consistent() } else { generator.unconstrained() };

        // Against the schema's own witness, when one exists.
        if let Ok(witness) = build_witness(&schema) {
            engines_agree(&schema, &witness, &format!("schema {seed} vs witness"));
            cases += 1;
        }

        // Against the (mismatched) org directory: every entry violates the
        // generated content schema somehow; all engines must report the
        // same flood of violations.
        engines_agree(&schema, &org.dir, &format!("schema {seed} vs org"));
        cases += 1;
    }
    assert!(cases >= 45, "expected ≥45 generated-schema cases, ran {cases}");
}

/// Builds one transaction inserting `k` independent orgUnit subtrees under
/// distinct existing units — the multi-subtree shape the batched Δ-check
/// fans out over.
fn multi_subtree_insertion(
    gen: &mut TxGenerator,
    org: &bschema_workload::org::GeneratedOrg,
    k: usize,
) -> Transaction {
    let mut tx = Transaction::new();
    for _ in 0..k {
        // Merge each generated single-subtree tx into ours by replaying its
        // ops with shifted op indices. (TxGenerator only produces
        // insert_under + insert_under_new chains.)
        let single = gen.legal_insertion(org);
        merge_insertion(&mut tx, &single);
    }
    tx
}

/// Replays the insertion ops of `src` into `dst` (op indices shift).
fn merge_insertion(dst: &mut Transaction, src: &Transaction) {
    use bschema_core::updates::{NodeRef, TxOp};
    let offset = dst.len();
    for op in src.ops() {
        match op {
            TxOp::Insert { parent: Some(NodeRef::Existing(id)), rdn, entry } => {
                match rdn {
                    Some(r) => dst.insert_under_named(*id, r.clone(), entry.clone()),
                    None => dst.insert_under(*id, entry.clone()),
                };
            }
            TxOp::Insert { parent: Some(NodeRef::New(op_idx)), rdn, entry } => {
                match rdn {
                    Some(r) => {
                        dst.insert_under_new_named(op_idx + offset, r.clone(), entry.clone())
                    }
                    None => dst.insert_under_new(op_idx + offset, entry.clone()),
                };
            }
            TxOp::Insert { parent: None, rdn, entry } => {
                match rdn {
                    Some(r) => dst.insert_root_named(r.clone(), entry.clone()),
                    None => dst.insert_root(entry.clone()),
                };
            }
            TxOp::Delete { target } => dst.delete(*target),
        }
    }
}

/// 64 cases: random transactions (single- and multi-subtree insertions,
/// deletions, violating insertions) applied with the sequential per-step
/// checker, the batched sequential checker, and the batched parallel
/// checker. The two batched engines must produce identical reports, all
/// verdicts must agree with a full recheck of the resulting instance, and
/// legal workloads must keep the running directory legal.
#[test]
fn transactions_all_engines_agree() {
    let schema = white_pages_schema();
    let full = LegalityChecker::new(&schema);
    let mut org =
        OrgGenerator::new(OrgParams { target_entries: 260, seed: 5, ..OrgParams::default() })
            .generate();
    let mut gen = TxGenerator::new(TxParams { seed: 31, ..TxParams::default() });

    let mut cases = 0;
    for round in 0..64u32 {
        let (tx, violating) = match round % 4 {
            0 => (gen.legal_insertion(&org), false),
            1 => (multi_subtree_insertion(&mut gen, &org, 2 + (round as usize % 3)), false),
            2 => match gen.legal_deletion(&org, &org.dir) {
                Some(tx) => (tx, false),
                None => continue,
            },
            _ => match gen.violating_insertion(&org, &org.dir) {
                Some(tx) => (tx, true),
                None => continue,
            },
        };

        // Apply to three clones, one per engine.
        let mut d_seq_steps = org.dir.clone();
        let mut d_seq_batch = org.dir.clone();
        let mut d_par_batch = org.dir.clone();
        let a_steps = apply_and_check(&schema, &mut d_seq_steps, &tx).expect("valid tx");
        let a_seq =
            apply_and_check_with(&schema, &mut d_seq_batch, &tx, LegalityOptions::sequential())
                .expect("valid tx");
        let a_par =
            apply_and_check_with(&schema, &mut d_par_batch, &tx, LegalityOptions::parallel(0))
                .expect("valid tx");

        // The batched engines are deterministic twins.
        assert_eq!(a_seq.report, a_par.report, "round {round}: batched reports diverged");
        assert_eq!(a_seq.inserted_roots, a_par.inserted_roots, "round {round}");
        assert_eq!(a_seq.removed.len(), a_par.removed.len(), "round {round}");
        assert_eq!(a_steps.inserted_roots, a_seq.inserted_roots, "round {round}");

        // Every engine's verdict equals a from-scratch recheck.
        let ground_truth = full.check(&d_seq_batch).is_legal();
        assert_eq!(a_seq.report.is_legal(), ground_truth, "round {round}: batched verdict");
        assert_eq!(
            a_steps.report.is_legal(),
            ground_truth,
            "round {round}: per-step verdict (single-root txs match the final instance)"
        );
        assert_eq!(violating, !ground_truth, "round {round}: generator contract");

        // All three clones hold the same final instance.
        assert_eq!(d_seq_steps.len(), d_par_batch.len(), "round {round}");
        engines_agree(&schema, &d_par_batch, &format!("tx round {round} post-state"));

        // Keep the running directory legal by committing only legal txs.
        if !violating {
            org.dir = d_seq_batch;
        }
        cases += 1;
    }
    assert!(cases >= 56, "expected ≥56 transaction cases, ran {cases}");
}
