//! End-to-end request-telemetry suite: wire-propagated trace context,
//! the flight recorder, span-tree determinism across worker counts, and
//! `STATS` delta scrapes.
//!
//! The headline invariant: one `TXN` yields **one** connected span tree
//! — from `server.request` through queue wait, parse, journal write,
//! and the legality engine's per-Figure-5 Δ-queries — attributed to the
//! trace id the *client* stamped on the frame, and the tree's shape is
//! identical whether the server runs 1 worker or 8.

use std::sync::Arc;

use bschema_core::legality::LegalityOptions;
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::ManagedDirectory;
use bschema_obs::{json, FlightRecorder, Recorder};
use bschema_server::{Client, DirectoryService, Server, ServerConfig, ServiceLimits, WireLimits};

/// The complete span tree of a committed single-insertion `TXN` on a
/// sequential-engine server, as pinned below. Engine roots open at
/// `NO_SPAN` and are re-parented under `server.request`, so the managed
/// guard (`managed.apply`) and the incremental check land as siblings of
/// the `service.*` stages, in recording order.
const TXN_SHAPE: &str = "server.request(server.queue_wait,service.parse_ldif,service.tx_build,\
                         service.journal_begin,managed.apply,incremental.check_insertions(\
                         content_delta(chunk),keys,structure_delta(chunk(require_descendant,\
                         require_parent,require_ancestor,require_parent,forbid_child,\
                         forbid_child))),service.journal_commit,service.publish)";

/// A traced white-pages service: sequential legality engine (so chunk
/// spans cannot depend on the host's core count), one shared recorder
/// for metrics, one flight recorder for span trees.
fn traced_service() -> (Arc<DirectoryService>, Arc<FlightRecorder>, Arc<Recorder>) {
    let (dir, _) = white_pages_instance();
    let managed = ManagedDirectory::with_instance(white_pages_schema(), dir)
        .expect("figure 1 is legal")
        .with_options(LegalityOptions::sequential());
    let recorder = Arc::new(Recorder::new());
    let flight = Arc::new(FlightRecorder::new(8));
    let service = DirectoryService::new(managed)
        .with_probe(recorder.clone())
        .with_recorder(recorder.clone())
        .with_flight_recorder(flight.clone());
    (Arc::new(service), flight, recorder)
}

fn person_ldif(uid: &str) -> String {
    format!(
        "dn: uid={uid},ou=databases,ou=attLabs,o=att\n\
         objectClass: person\nobjectClass: top\nuid: {uid}\nname: {uid} tester\n"
    )
}

/// A person under a person violates `forbid person child top`.
fn illegal_ldif() -> &'static str {
    "dn: uid=intruder,uid=suciu,ou=databases,ou=attLabs,o=att\n\
     objectClass: person\nobjectClass: top\nuid: intruder\nname: intruder\n"
}

#[test]
fn one_txn_yields_one_span_tree_under_the_client_trace_id() {
    let (service, flight, _recorder) = traced_service();
    let handle =
        Server::spawn(service, ServerConfig { threads: 2, ..Default::default() }).expect("bind");

    let mut client = Client::connect(handle.addr()).expect("connect").with_trace_label("loop");
    assert_eq!(client.next_trace_id().as_deref(), Some("loop-0"));
    client.apply_ldif(&person_ldif("tele1")).expect("commit");

    // The id the client derived from its connection sequence — never a
    // clock — crossed the wire and is what the server reports back.
    let text = client.trace_json().expect("TRACE verb");
    assert!(json::is_valid(&text), "{text}");
    assert!(text.contains("\"trace_id\":\"loop-0\""), "{text}");
    assert!(text.contains("\"verb\":\"TXN\""), "{text}");

    // Exactly one TXN record, carrying the full deterministic tree.
    let records = flight.recent();
    let txns: Vec<_> = records.iter().filter(|r| r.verb == "TXN").collect();
    assert_eq!(txns.len(), 1, "one TXN, one record");
    let txn = txns[0];
    assert_eq!(txn.trace_id, "loop-0");
    assert_eq!(txn.status, "ok");
    assert_eq!(txn.root.shape(), TXN_SHAPE);
    assert!(txn.root.dur_us.is_some(), "root span closed");

    client.shutdown_server().expect("shutdown");
    handle.wait();
}

#[test]
fn span_tree_shape_is_identical_at_1_and_8_workers() {
    let mut shapes = Vec::new();
    for threads in [1usize, 8] {
        let (service, flight, _recorder) = traced_service();
        let handle =
            Server::spawn(service, ServerConfig { threads, ..Default::default() }).expect("bind");
        let mut client = Client::connect(handle.addr()).expect("connect").with_trace_label("w");
        client.apply_ldif(&person_ldif("workers")).expect("commit");
        client.shutdown_server().expect("shutdown");
        handle.wait();
        let records = flight.recent();
        let txn = records.iter().find(|r| r.verb == "TXN").expect("TXN record");
        assert_eq!(txn.trace_id, "w-0");
        shapes.push(txn.root.shape());
    }
    assert_eq!(shapes[0], shapes[1], "span tree depends on worker count");
    assert_eq!(shapes[0], TXN_SHAPE);
}

#[test]
fn rejections_land_in_the_flight_recorder_with_their_code() {
    // (a) A frame the codec refuses — payload beyond the wire limit —
    // never becomes a request, but still leaves a terminated span with
    // the rejection code attached.
    let (dir, _) = white_pages_instance();
    let managed = ManagedDirectory::with_instance(white_pages_schema(), dir)
        .expect("figure 1 is legal")
        .with_options(LegalityOptions::sequential());
    let recorder = Arc::new(Recorder::new());
    let flight = Arc::new(FlightRecorder::new(8));
    let service = DirectoryService::new(managed)
        .with_limits(ServiceLimits {
            wire: WireLimits { max_payload_len: 256, ..Default::default() },
            ..Default::default()
        })
        .with_probe(recorder.clone())
        .with_recorder(recorder.clone())
        .with_flight_recorder(flight.clone());
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..Default::default() })
            .expect("bind");

    let mut client = Client::connect(handle.addr()).expect("connect").with_trace_label("big");
    let err = client.apply_ldif(&person_ldif(&"x".repeat(600))).expect_err("refused");
    assert_eq!(err.server_code(), Some("limit"), "{err}");
    let limited = flight
        .recent()
        .into_iter()
        .find(|r| r.status == "limit")
        .expect("wire-limit violation flight-recorded");
    // The oversized frame's tokens were discarded with it, so the
    // record is unstamped and verb-less — but the span terminated.
    assert_eq!(limited.verb, "-");
    assert_eq!(limited.trace_id, "unstamped");
    assert_eq!(limited.root.shape(), "server.request");
    assert!(limited.root.dur_us.is_some(), "rejected span still closed");

    // (b) A parsed-but-rolled-back TXN keeps its stamp and its full
    // tree, with the stable code as its status and a latency sample in
    // the per-rejection-code series.
    let mut client = Client::connect(handle.addr()).expect("connect").with_trace_label("bad");
    let err = client.apply_ldif(illegal_ldif()).expect_err("illegal tx refused");
    assert_eq!(err.server_code(), Some("rolled-back"), "{err}");
    let rolled = flight
        .recent()
        .into_iter()
        .find(|r| r.status == "rolled-back")
        .expect("rollback flight-recorded");
    assert_eq!(rolled.trace_id, "bad-0");
    assert_eq!(rolled.verb, "TXN");
    let shape = rolled.root.shape();
    assert!(shape.starts_with("server.request("), "{shape}");
    assert!(shape.contains("managed.apply"), "{shape}");
    assert!(!shape.contains("service.publish"), "rolled back yet published: {shape}");
    let rejected = recorder
        .metrics()
        .histogram("server.rejected_us.rolled-back")
        .expect("rejection-code latency series");
    assert_eq!(rejected.count(), 1);

    client.shutdown_server().expect("shutdown");
    handle.wait();
}

#[test]
fn stats_scrapes_return_only_deltas() {
    let (service, _flight, _recorder) = traced_service();
    let handle =
        Server::spawn(service, ServerConfig { threads: 2, ..Default::default() }).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.apply_ldif(&person_ldif("stats1")).expect("commit");

    let first = client.stats_json().expect("first scrape");
    assert!(json::is_valid(&first), "{first}");
    assert!(first.contains("\"server.tx_committed\":1"), "{first}");
    assert!(first.contains("server.request_us.TXN"), "per-verb latency series: {first}");

    // The only traffic between the scrapes is the first scrape itself:
    // its own request latency is the delta, the TXN must not repeat.
    let second = client.stats_json().expect("second scrape");
    assert!(json::is_valid(&second), "{second}");
    assert!(!second.contains("server.tx_committed"), "counter delta repeated: {second}");
    assert!(second.contains("server.request_us.STATS"), "{second}");

    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Hostile `tc=` tokens arriving over the wire — overlong bodies,
/// non-numeric span ids — are never adopted as trace context and never
/// poison the session: the request is answered, the connection stays
/// usable, and the flight recorder holds no attacker-controlled ids.
#[test]
fn hostile_trace_tokens_never_poison_the_session() {
    use std::io::{BufRead, BufReader, Write};

    let (service, flight, _recorder) = traced_service();
    let handle =
        Server::spawn(service, ServerConfig { threads: 2, ..Default::default() }).expect("bind");

    let mut sock = std::net::TcpStream::connect(handle.addr()).expect("connect raw");
    let mut reader = BufReader::new(sock.try_clone().expect("clone socket"));
    let mut answer = |req: &str| -> String {
        sock.write_all(req.as_bytes()).expect("write frame");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        line
    };

    // A 300-char token body: past the parser cap, so it stays a plain
    // (unknown) argument — the verb refuses it, the session survives.
    let long = format!("PING tc={}.7\n", "z".repeat(300));
    let reply = answer(&long);
    assert!(reply.starts_with("OK") || reply.starts_with("ERR usage"), "{reply}");
    // A non-numeric span id is equally inert.
    let reply = answer("PING tc=evil.99999999999999999999999\n");
    assert!(reply.starts_with("OK") || reply.starts_with("ERR usage"), "{reply}");
    // The same socket still serves a well-stamped request.
    let reply = answer("PING tc=good.0\n");
    assert!(reply.starts_with("OK"), "session poisoned: {reply}");

    let ids: Vec<String> = flight.recent().into_iter().map(|r| r.trace_id).collect();
    assert!(ids.iter().any(|id| id == "good"), "{ids:?}");
    assert!(
        ids.iter().all(|id| !id.contains("zzz") && !id.contains("evil")),
        "hostile token adopted as trace id: {ids:?}"
    );

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown_server().expect("shutdown");
    handle.wait();
}
