//! The sharded≡unsharded differential oracle.
//!
//! Replays one generated multi-organization LDIF workload (legal and
//! illegal, single- and cross-subtree transactions) through the
//! unsharded [`ManagedDirectory`] and through [`ShardedDirectory`] at
//! 1, 2, 4, and 8 shards, asserting:
//!
//! * the per-transaction verdict (commit, or the exact rejection code)
//!   is identical on every engine, and
//! * the final instances are byte-identical under the canonical merge
//!   ([`bschema_core::sharded::canonical_merge`]), which rebuilds any
//!   partition — including the 1-part "partition" of the unsharded
//!   engine — into the same canonical entry order.
//!
//! A seed override (`CHAOS_SEED`) lets CI run fresh workloads nightly
//! while the default stays reproducible.

use bschema_core::managed::ManagedDirectory;
use bschema_core::paper::white_pages_schema;
use bschema_core::sharded::{canonical_merge, partition, ShardedDirectory};
use bschema_core::updates::transaction_from_ldif;
use bschema_directory::ldif::parse_ldif;
use bschema_workload::{GeneratedTx, LdifWorkload, LdifWorkloadParams};

/// Workload seed: `CHAOS_SEED` env override for CI freshness, fixed
/// default for reproducibility.
fn seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(v) => v.parse().expect("CHAOS_SEED must be a u64"),
        Err(_) => 0xD1FF,
    }
}

fn workload() -> (bschema_directory::DirectoryInstance, Vec<GeneratedTx>) {
    LdifWorkload::generate(LdifWorkloadParams {
        orgs: 6,
        entries_per_org: 60,
        transactions: 220,
        seed: seed(),
    })
}

/// Replays `txs` through an unsharded managed directory; returns the
/// verdict per transaction ("committed" or the rejection code) and the
/// canonical bytes of the final state.
fn replay_unsharded(
    base: &bschema_directory::DirectoryInstance,
    txs: &[GeneratedTx],
) -> (Vec<&'static str>, Vec<u8>) {
    let mut managed = ManagedDirectory::with_instance(white_pages_schema(), base.clone())
        .expect("generated base is legal");
    let mut verdicts = Vec::with_capacity(txs.len());
    for tx in txs {
        let records = parse_ldif(&tx.ldif).expect("generated ldif parses");
        let verdict = match transaction_from_ldif(managed.instance(), records) {
            Err(_) => "invalid-tx",
            Ok(tx) => match managed.apply(&tx) {
                Ok(()) => "committed",
                Err(e) => e.code(),
            },
        };
        verdicts.push(verdict);
    }
    let merged = canonical_merge(partition(managed.instance(), 1).expect("partition").iter())
        .expect("merge");
    (verdicts, merged.canonical_bytes())
}

/// Replays `txs` through a sharded directory; returns per-transaction
/// verdicts and the canonical merge of the final shards.
fn replay_sharded(
    base: &bschema_directory::DirectoryInstance,
    txs: &[GeneratedTx],
    shards: usize,
) -> (Vec<&'static str>, Vec<u8>, usize) {
    let sharded = ShardedDirectory::with_instance(white_pages_schema(), base.clone(), shards)
        .expect("generated base is legal");
    let mut verdicts = Vec::with_capacity(txs.len());
    let mut cross_shard_commits = 0usize;
    for tx in txs {
        let records = parse_ldif(&tx.ldif).expect("generated ldif parses");
        let verdict = match sharded.apply_ldif(records) {
            Ok(outcome) => {
                if outcome.shards.len() > 1 {
                    cross_shard_commits += 1;
                }
                "committed"
            }
            Err(e) => e.code(),
        };
        verdicts.push(verdict);
    }
    let merged = sharded.merged_instance().expect("merge");
    (verdicts, merged.canonical_bytes(), cross_shard_commits)
}

#[test]
fn sharded_matches_unsharded_at_every_shard_count() {
    let (base, txs) = workload();
    assert!(txs.len() >= 200, "oracle needs ≥200 transactions, got {}", txs.len());
    let committed_multi = txs.iter().filter(|t| t.multi_subtree && t.expect_commit).count();
    let rejected = txs.iter().filter(|t| !t.expect_commit).count();
    assert!(committed_multi >= 10, "workload has too few cross-subtree commits");
    assert!(rejected >= 20, "workload has too few rejections");

    let (expected_verdicts, expected_bytes) = replay_unsharded(&base, &txs);
    // Sanity: the generator's intent matches the reference engine.
    for (tx, verdict) in txs.iter().zip(&expected_verdicts) {
        assert_eq!(
            tx.expect_commit,
            *verdict == "committed",
            "generator intent diverges from engine on {} (verdict {verdict}):\n{}",
            tx.kind,
            tx.ldif
        );
    }

    for shards in [1usize, 2, 4, 8] {
        let (verdicts, bytes, cross_commits) = replay_sharded(&base, &txs, shards);
        for (i, (expected, got)) in expected_verdicts.iter().zip(&verdicts).enumerate() {
            assert_eq!(
                expected, got,
                "verdict diverges at {shards} shards on tx {i} ({}):\n{}",
                txs[i].kind, txs[i].ldif
            );
        }
        assert_eq!(bytes, expected_bytes, "final state diverges from unsharded at {shards} shards");
        if shards > 1 {
            assert!(
                cross_commits > 0,
                "no committed transaction spanned several shards at {shards} shards"
            );
        }
    }
}

#[test]
fn differential_states_agree_between_shard_counts_mid_stream() {
    // Byte-identity must hold at every prefix, not just the end: replay
    // the first half on 2 and 8 shards and compare the merges.
    let (base, txs) = workload();
    let half = &txs[..txs.len() / 2];
    let (_, bytes2, _) = replay_sharded(&base, half, 2);
    let (_, bytes8, _) = replay_sharded(&base, half, 8);
    assert_eq!(bytes2, bytes8, "2-shard and 8-shard states diverge mid-stream");
}
