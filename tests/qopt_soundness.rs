//! Soundness of schema-aware query optimization: on instances legal w.r.t.
//! the schema, the optimized query returns exactly the same entries — over
//! random legal directories and random queries.

use bschema_core::paper::white_pages_schema;
use bschema_core::qopt::SchemaAwareOptimizer;
use bschema_query::{evaluate, EvalContext, Query};
use bschema_workload::{OrgGenerator, OrgParams};
use proptest::prelude::*;

const CLASSES: [&str; 8] =
    ["top", "orgGroup", "organization", "orgUnit", "person", "staffMember", "researcher", "online"];

fn query_strategy() -> impl Strategy<Value = Query> {
    let leaf = proptest::sample::select(&CLASSES[..]).prop_map(Query::object_class);
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(a, b)| {
            prop_oneof![
                Just(a.clone().with_child(b.clone())),
                Just(a.clone().with_parent(b.clone())),
                Just(a.clone().with_descendant(b.clone())),
                Just(a.clone().with_ancestor(b.clone())),
                Just(a.clone().minus(b.clone())),
                Just(a.clone().union(b.clone())),
                Just(a.intersect(b)),
            ]
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn optimized_queries_agree_on_legal_instances(
        seed in 0u64..32,
        query in query_strategy(),
    ) {
        let schema = white_pages_schema();
        let optimizer = SchemaAwareOptimizer::new(&schema);
        let org = OrgGenerator::new(OrgParams { seed, target_entries: 120, ..OrgParams::default() })
            .generate();
        let ctx = EvalContext::new(&org.dir);
        let optimized = optimizer.optimize(query.clone());
        prop_assert_eq!(
            evaluate(&ctx, &query),
            evaluate(&ctx, &optimized),
            "schema-aware rewrite changed semantics on a legal instance:\n  original:  {}\n  optimized: {}",
            query,
            optimized
        );
        prop_assert!(optimized.size() <= query.size());
    }
}

/// The rewrites genuinely fire: across the random query space a
/// non-trivial fraction shrinks.
#[test]
fn rewrites_reduce_query_size_in_aggregate() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let schema = white_pages_schema();
    let optimizer = SchemaAwareOptimizer::new(&schema);
    let mut runner = TestRunner::deterministic();
    let strategy = query_strategy();
    let mut shrunk = 0;
    let total = 300;
    for _ in 0..total {
        let q = strategy.new_tree(&mut runner).unwrap().current();
        if optimizer.optimize(q.clone()).size() < q.size() {
            shrunk += 1;
        }
    }
    assert!(
        shrunk >= total / 10,
        "expected ≥10% of random queries to shrink, got {shrunk}/{total}"
    );
}
