//! Live schema-evolution plane, exercised over real TCP sessions: the
//! `SCHEMA` verb family (PROPOSE / CHECK / STATUS / COMMIT / ABORT)
//! driving incremental cutovers while TXN traffic flows.
//!
//! The invariants under test:
//!
//! 1. **Rolling tighten** — a restricting proposal commits against a
//!    4-shard backend under concurrent writers, and no legal write is
//!    ever rejected because a cutover was in flight.
//! 2. **Refused tighten** — a proposal the instance violates is refused
//!    with the stable `schema-violates` code and an EXPLAIN-style
//!    report naming the offending entries; the old epoch stays live.
//! 3. **Widen-then-migrate** — the operator loop for an unsatisfiable
//!    tighten: relax (instant, Definition 2.7), migrate the data over
//!    the wire, then tighten.
//! 4. **Torn cutover** — a panic injected at the `schema.cutover` site
//!    (between the journalled schema record and the engine swap) leaves
//!    the old epoch live, the proposal staged, and a retry succeeds;
//!    crash recovery discards the uncommitted record.
//! 5. **Replication** — a follower streams the schema record over
//!    `SHIP` and converges byte-identically across the evolution.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bschema_core::checkpoint::{checkpoint_path, schema_hash};
use bschema_core::legality::LegalityChecker;
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::ManagedDirectory;
use bschema_directory::{ldif, DirectoryInstance};
use bschema_faults::{silence_injected_panics, FaultPlan};
use bschema_obs::json::Value;
use bschema_server::{Client, DirectoryService, Follower, ReplicationState, Server, ServerConfig};

/// A multi-org base whose every person already carries `title`, so the
/// rolling tighten `require-attr person title` is satisfiable from the
/// start — the test measures the cutover machinery, not a migration.
fn titled_base(orgs: usize, persons_per_org: usize) -> DirectoryInstance {
    let mut text = String::new();
    for o in 0..orgs {
        text.push_str(&format!(
            "dn: o=org{o}\nobjectClass: organization\nobjectClass: orgGroup\n\
             objectClass: top\no: org{o}\n\n\
             dn: ou=unit,o=org{o}\nobjectClass: orgUnit\nobjectClass: orgGroup\n\
             objectClass: top\nou: unit\n\n"
        ));
        for p in 0..persons_per_org {
            text.push_str(&format!(
                "dn: uid=base{o}x{p},ou=unit,o=org{o}\nobjectClass: person\n\
                 objectClass: top\nuid: base{o}x{p}\nname: base {o} {p}\ntitle: staff\n\n"
            ));
        }
    }
    let mut dir = ldif::load(&text).expect("hand-built base parses");
    dir.prepare();
    let report = LegalityChecker::new(&white_pages_schema()).check(&dir);
    assert!(report.is_legal(), "titled base must be legal:\n{report}");
    dir
}

/// A person insertion that satisfies the *tightened* schema too.
fn titled_person_ldif(uid: &str, org: usize) -> String {
    format!(
        "dn: uid={uid},ou=unit,o=org{org}\nobjectClass: person\nobjectClass: top\n\
         uid: {uid}\nname: {uid}\ntitle: staff\n"
    )
}

fn json(body: &str) -> Value {
    Value::parse(body).unwrap_or_else(|| panic!("bad JSON: {body:?}"))
}

fn status_epoch(client: &mut Client) -> u64 {
    let v = json(&client.schema_status().expect("STATUS answers"));
    v.get("epoch").and_then(Value::as_u64).expect("status carries epoch")
}

/// Invariant 1: the rolling tighten. Four shards, four concurrent
/// writers inserting already-conforming persons the whole time; the
/// operator stages, checks, and commits `require-attr person title`
/// mid-traffic. Every writer transaction must commit — zero legal
/// writes rejected — and afterwards the tightened bound is enforced.
#[test]
fn rolling_tighten_commits_on_a_sharded_server_under_live_traffic() {
    const SHARDS: usize = 4;
    let base = titled_base(SHARDS, 6);
    let service = DirectoryService::new_sharded(white_pages_schema(), base, SHARDS)
        .expect("titled base is legal");
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 4, ..ServerConfig::default() })
            .expect("bind sharded loopback");
    let addr = handle.addr();
    let initial_len = handle.service().len();

    // Writers: keep committing conforming persons before, during, and
    // after the cutover. Any rejection fails the test.
    let cutover_done = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..4usize {
        let done = cutover_done.clone();
        writers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut inserted = 0usize;
            let mut i = 0usize;
            // Run until the cutover landed, then a few more to prove the
            // new epoch accepts conforming traffic; floor of 12 so every
            // writer overlaps the cutover window.
            while !done.load(Ordering::SeqCst) || i < 12 {
                let receipt = client
                    .apply_ldif(&titled_person_ldif(&format!("w{w}i{i}"), (w + i) % 4))
                    .unwrap_or_else(|e| {
                        panic!("legal write w{w}i{i} rejected during cutover: {e}")
                    });
                assert_eq!(receipt.ops, 1);
                inserted += 1;
                i += 1;
                thread::sleep(Duration::from_millis(1));
            }
            client.unbind().expect("clean unbind");
            inserted
        }));
    }

    // The operator session: propose → check (off the write path) →
    // commit, all while the writers hammer the shards.
    let mut operator = Client::connect(addr).expect("operator connects");
    assert_eq!(status_epoch(&mut operator), 0);
    thread::sleep(Duration::from_millis(10)); // let traffic build

    let body = operator.schema_propose("require-attr person title").expect("propose stages");
    let v = json(&body);
    assert_eq!(v.get("staged"), Some(&Value::Bool(true)), "{body}");
    assert_eq!(v.get("restricting").and_then(Value::as_u64), Some(1), "{body}");
    assert_eq!(v.get("requires_recheck"), Some(&Value::Bool(true)), "{body}");

    // A second proposal while one is staged is refused.
    let err = operator.schema_propose("allow-attr person mail").expect_err("must refuse");
    assert_eq!(err.server_code(), Some("schema-pending"), "{err}");

    let check = operator.schema_check().expect("every entry is titled");
    assert_eq!(json(&check).get("ok"), Some(&Value::Bool(true)), "{check}");

    let commit = operator.schema_commit().expect("cutover commits under traffic");
    let v = json(&commit);
    assert_eq!(v.get("committed"), Some(&Value::Bool(true)), "{commit}");
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1), "{commit}");

    cutover_done.store(true, Ordering::SeqCst);
    let mut committed = 0usize;
    for t in writers {
        committed += t.join().expect("writer thread — zero rejected legal writes");
    }
    assert!(committed >= 48, "writers only landed {committed} commits");

    // The new epoch is live: STATUS reports it, the tightened bound is
    // enforced, and conforming writes still commit.
    let status = operator.schema_status().expect("STATUS answers");
    let v = json(&status);
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1), "{status}");
    assert_eq!(v.get("pending"), Some(&Value::Null), "{status}");
    let titleless = "dn: uid=untitled,ou=unit,o=org0\nobjectClass: person\nobjectClass: top\n\
                     uid: untitled\nname: untitled\n";
    let err = operator.apply_ldif(titleless).expect_err("titleless person now illegal");
    assert_eq!(err.server_code(), Some("rolled-back"), "{err}");
    operator.apply_ldif(&titled_person_ldif("posttighten", 1)).expect("conforming write commits");

    // Client-side proof: the full wire dump is legal under the
    // *evolved* schema.
    let text = operator.search(None, "sub", "(objectClass=top)", None).expect("dump");
    let mut dump = ldif::load(&text).expect("loadable dump");
    dump.prepare();
    let evolved = bschema_core::evolution::plan::parse_proposal(
        &white_pages_schema(),
        "require-attr person title",
    )
    .expect("proposal parses")
    .target;
    let report = LegalityChecker::new(&evolved).check(&dump);
    assert!(report.is_legal(), "wire dump illegal under the evolved schema:\n{report}");
    assert_eq!(dump.len(), initial_len + committed + 1);

    operator.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Invariants 2 and 3 on a single-engine server: a violating tighten is
/// refused with a report naming the offenders (old epoch stays live),
/// then the widen → migrate → tighten loop lands the same bound.
#[test]
fn refused_tighten_then_widen_migrate_tighten_over_the_wire() {
    let (dir, _) = white_pages_instance();
    let managed =
        ManagedDirectory::with_instance(white_pages_schema(), dir).expect("figure 1 is legal");
    let handle = Server::spawn(
        Arc::new(DirectoryService::new(managed)),
        ServerConfig { threads: 2, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Lifecycle refusals: nothing staged yet.
    for (result, what) in [
        (client.schema_check(), "CHECK"),
        (client.schema_commit(), "COMMIT"),
        (client.schema_abort(), "ABORT"),
    ] {
        let err = result.expect_err("nothing staged");
        assert_eq!(err.server_code(), Some("schema-none"), "{what}: {err}");
    }

    // Refused tighten: no figure-1 person has `mail` (it is not even an
    // allowed person attribute), so the recheck names every person.
    client.schema_propose("allow-attr person mail\nrequire-attr person mail").expect("stages");
    let err = client.schema_check().expect_err("violating tighten refused");
    assert_eq!(err.server_code(), Some("schema-violates"), "{err}");
    let detail = format!("{err}");
    assert!(detail.contains("violation"), "report lacks a count: {detail}");
    assert!(detail.contains("uid="), "report must name offending DNs: {detail}");
    // COMMIT is equally refused — CHECK failing left no freshness token.
    let err = client.schema_commit().expect_err("commit of a violating plan refused");
    assert_eq!(err.server_code(), Some("schema-violates"), "{err}");
    assert_eq!(status_epoch(&mut client), 0, "old epoch must stay live");
    json(&client.schema_abort().expect("abort discards"));

    // Widen: allow the attribute. Relaxing-only — commits with no check.
    let body = client.schema_propose("allow-attr person mail").expect("widen stages");
    assert_eq!(json(&body).get("requires_recheck"), Some(&Value::Bool(false)), "{body}");
    let commit = client.schema_commit().expect("relaxing cutover needs no recheck");
    assert_eq!(json(&commit).get("epoch").and_then(Value::as_u64), Some(1), "{commit}");

    // Migrate over the wire: backfill `mail` on every person via MODIFY.
    let text = client.search(None, "sub", "(objectClass=person)", None).expect("person dump");
    let mut persons = 0usize;
    for line in text.lines() {
        let Some(dn) = line.strip_prefix("dn: ") else { continue };
        let uid = dn.strip_prefix("uid=").and_then(|r| r.split(',').next()).unwrap_or("person");
        client
            .modify_lines(&format!("dn: {dn}\nadd: mail: {uid}@example.org\n"))
            .unwrap_or_else(|e| panic!("migration modify for {dn} failed: {e}"));
        persons += 1;
    }
    assert!(persons >= 2, "figure 1 has multiple persons, migrated {persons}");

    // Tighten: the same bound now checks clean and commits.
    client.schema_propose("require-attr person mail").expect("tighten stages");
    let check = client.schema_check().expect("after migration the recheck passes");
    assert_eq!(json(&check).get("ok"), Some(&Value::Bool(true)), "{check}");
    let commit = client.schema_commit().expect("tighten commits");
    assert_eq!(json(&commit).get("epoch").and_then(Value::as_u64), Some(2), "{commit}");

    // The bound bites: a mailless person is refused, a mailed one lands.
    let mailless = "dn: uid=nomail,ou=databases,ou=attLabs,o=att\nobjectClass: person\n\
                    objectClass: top\nuid: nomail\nname: nomail\n";
    let err = client.apply_ldif(mailless).expect_err("mailless person now illegal");
    assert_eq!(err.server_code(), Some("rolled-back"), "{err}");
    let mailed = "dn: uid=hasmail,ou=databases,ou=attLabs,o=att\nobjectClass: person\n\
                  objectClass: top\nuid: hasmail\nname: hasmail\nmail: hasmail@example.org\n";
    client.apply_ldif(mailed).expect("conforming person commits");

    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Invariant 4: chaos at the `schema.cutover` site. The panic lands
/// between the journalled schema record (prepare) and the engine swap;
/// the session answers `ERR panicked`, the old epoch stays live, the
/// proposal stays staged, and a retry commits. A crash *without* the
/// retry recovers to the old epoch — the uncommitted record is
/// discarded — and the epoch journalled by the successful cutover
/// replays into the next generation.
#[test]
fn torn_cutover_leaves_the_old_epoch_and_recovery_converges() {
    silence_injected_panics();
    let path = std::env::temp_dir()
        .join(format!("bschema-evolution-chaos-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(checkpoint_path(&path));

    // Generation 1: panic the first cutover attempt mid-flight.
    let (dir, _) = white_pages_instance();
    let managed =
        ManagedDirectory::with_instance(white_pages_schema(), dir).expect("figure 1 is legal");
    let plan = Arc::new(FaultPlan::fail_at_site("schema.cutover", 0));
    let service = DirectoryService::new(managed).with_probe(plan.clone());
    let (service, replayed) = service.with_journal(&path).expect("journal attaches");
    assert_eq!(replayed, 0);
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..ServerConfig::default() })
            .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.schema_propose("allow-attr person mail").expect("stages");
    let err = client.schema_commit().expect_err("injected panic mid-cutover");
    assert_eq!(err.server_code(), Some("panicked"), "{err}");
    assert_eq!(plan.injected(), 1, "the fault fired at schema.cutover");

    // Old epoch live, proposal still staged: a mailed person is illegal
    // (mail is not yet an allowed attribute) and STATUS shows pending.
    let mailed = "dn: uid=early,ou=databases,ou=attLabs,o=att\nobjectClass: person\n\
                  objectClass: top\nuid: early\nname: early\nmail: early@example.org\n";
    let err = client.apply_ldif(mailed).expect_err("old epoch still refuses mail");
    assert_eq!(err.server_code(), Some("rolled-back"), "{err}");
    let status = client.schema_status().expect("STATUS answers");
    let v = json(&status);
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(0), "{status}");
    assert_ne!(v.get("pending"), Some(&Value::Null), "proposal must survive the panic: {status}");
    client.shutdown_server().expect("shutdown");
    handle.wait();

    // Generation 2: the torn (uncommitted) schema record is discarded —
    // the recovered server still runs the boot schema.
    let (dir, _) = white_pages_instance();
    let managed =
        ManagedDirectory::with_instance(white_pages_schema(), dir).expect("figure 1 is legal");
    let (service, _) = DirectoryService::new(managed).with_journal(&path).expect("reattach");
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..ServerConfig::default() })
            .expect("bind recovered");
    let mut client = Client::connect(handle.addr()).expect("connect recovered");
    let err = client.apply_ldif(mailed).expect_err("torn cutover must not half-apply");
    assert_eq!(err.server_code(), Some("rolled-back"), "{err}");

    // Retry on the recovered generation: propose again (the staged slot
    // was in-memory) and commit — no fault this time.
    client.schema_propose("allow-attr person mail").expect("stages again");
    let commit = client.schema_commit().expect("retry commits");
    assert_eq!(json(&commit).get("epoch").and_then(Value::as_u64), Some(1), "{commit}");
    client.apply_ldif(mailed).expect("evolved epoch accepts mail");
    let len_before = client.ping().expect("size");
    client.shutdown_server().expect("shutdown");
    handle.wait();

    // Generation 3: the committed schema record replays — the evolved
    // epoch survives the crash, byte-identically.
    let (dir, _) = white_pages_instance();
    let managed =
        ManagedDirectory::with_instance(white_pages_schema(), dir).expect("figure 1 is legal");
    let (service, _) = DirectoryService::new(managed).with_journal(&path).expect("reattach");
    assert_eq!(service.len(), len_before, "committed tx replays");
    let expected = bschema_core::evolution::plan::parse_proposal(
        &white_pages_schema(),
        "allow-attr person mail",
    )
    .expect("proposal parses")
    .target;
    assert_eq!(
        schema_hash(&service.current_schema()),
        schema_hash(&expected),
        "recovery must land on the evolved epoch"
    );
    assert_eq!(service.schema_epoch(), 1, "the replayed schema record counts as an epoch");
    let handle =
        Server::spawn(Arc::new(service), ServerConfig { threads: 2, ..ServerConfig::default() })
            .expect("bind generation 3");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mailed2 = "dn: uid=late,ou=databases,ou=attLabs,o=att\nobjectClass: person\n\
                   objectClass: top\nuid: late\nname: late\nmail: late@example.org\n";
    client.apply_ldif(mailed2).expect("replayed epoch accepts mail");
    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(checkpoint_path(&path));
}

/// Invariant 5: a live replica crosses the evolution with its primary.
/// The schema record ships over `SHIP` like any committed transaction;
/// the follower applies it (instead of fataling on an unknown record)
/// and converges to byte-identical state under the evolved schema.
#[test]
fn replica_converges_byte_identically_across_an_evolution() {
    let path = std::env::temp_dir()
        .join(format!("bschema-evolution-replica-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(checkpoint_path(&path));

    let (dir, _) = white_pages_instance();
    let schema = white_pages_schema();
    let managed = ManagedDirectory::with_instance(schema.clone(), dir).expect("figure 1 is legal");
    let (service, _) = DirectoryService::new(managed).with_journal(&path).expect("journal");
    let primary = Arc::new(service);
    let handle = Server::spawn(primary.clone(), ServerConfig { threads: 2, ..Default::default() })
        .expect("bind primary");
    let addr = handle.addr().to_string();

    // Follower bootstraps pre-evolution.
    let (managed, cursor) = Follower::bootstrap_state(&addr, &schema).expect("bootstrap");
    let replication = Arc::new(ReplicationState::default());
    let replica = Arc::new(
        DirectoryService::new(managed).with_read_only().with_replication(replication.clone()),
    );
    let mut follower =
        Follower::attach(&addr, schema.clone(), replica.clone(), replication, cursor);

    // Pre-evolution commit, then the cutover, then a commit only legal
    // under the evolved schema.
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .apply_ldif(
            "dn: uid=pre,ou=databases,ou=attLabs,o=att\nobjectClass: person\n\
             objectClass: top\nuid: pre\nname: pre\n",
        )
        .expect("pre-evolution commit");
    client.schema_propose("allow-attr person mail").expect("stages");
    let commit = client.schema_commit().expect("cutover commits");
    assert_eq!(json(&commit).get("epoch").and_then(Value::as_u64), Some(1), "{commit}");
    client
        .apply_ldif(
            "dn: uid=post,ou=databases,ou=attLabs,o=att\nobjectClass: person\n\
             objectClass: top\nuid: post\nname: post\nmail: post@example.org\n",
        )
        .expect("post-evolution commit");

    // The follower streams everything — including the schema record —
    // and converges byte-identically, on the evolved epoch.
    for _ in 0..20 {
        let report = follower.sync_once().expect("sync passes");
        if report.applied == 0 && !report.bootstrapped {
            break;
        }
    }
    assert_eq!(
        replica.snapshot().canonical_bytes(),
        primary.snapshot().canonical_bytes(),
        "replica must converge byte-identically across the evolution"
    );
    assert_eq!(
        schema_hash(&replica.current_schema()),
        schema_hash(&primary.current_schema()),
        "replica must adopt the shipped epoch"
    );
    assert_eq!(replica.schema_epoch(), 1, "the shipped schema record bumps the replica epoch");

    // A post-evolution re-bootstrap also works: the primary's fresh
    // checkpoint now hashes under the evolved schema, which the
    // follower adopts from the embedded DSL instead of fataling.
    // (Drop the follower first — its cached SHIP connection would
    // otherwise pin one of the primary's worker threads.)
    drop(follower);
    let (managed2, _cursor2) =
        Follower::bootstrap_state(&addr, &schema).expect("re-bootstrap with a stale boot schema");
    assert_eq!(
        schema_hash(managed2.schema()),
        schema_hash(&primary.current_schema()),
        "bootstrap must adopt the primary's evolved schema"
    );

    client.shutdown_server().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(checkpoint_path(&path));
}
