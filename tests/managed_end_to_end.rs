//! End-to-end workout of the `ManagedDirectory` API against randomized
//! workloads: after any sequence of accepted and rejected transactions, the
//! directory is exactly as legal as it claims to be.

use bschema_core::legality::LegalityChecker;
use bschema_core::managed::{ManagedDirectory, ManagedError};
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_query::Query;
use bschema_workload::{OrgGenerator, OrgParams, TxGenerator, TxParams};
use proptest::prelude::*;

#[test]
fn managed_directory_over_generated_workload() {
    let schema = white_pages_schema();
    let org = OrgGenerator::new(OrgParams::sized(300)).generate();
    let mut managed = ManagedDirectory::with_instance(schema.clone(), org.dir.clone())
        .expect("generated org is legal");
    let mut txgen = TxGenerator::new(TxParams::default());
    let checker = LegalityChecker::new(&schema);

    let mut accepted = 0;
    let mut rejected = 0;
    for round in 0..30 {
        let result = match round % 3 {
            0 => managed.apply(&txgen.legal_insertion(&org)),
            1 => match txgen.legal_deletion(&org, managed.instance()) {
                Some(tx) => managed.apply(&tx),
                None => continue,
            },
            _ => match txgen.violating_insertion(&org, managed.instance()) {
                Some(tx) => managed.apply(&tx),
                None => continue,
            },
        };
        match result {
            Ok(()) => accepted += 1,
            Err(ManagedError::RolledBack(_)) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
        // Invariant: the managed directory is always legal.
        assert!(
            checker.check(managed.instance()).is_legal(),
            "managed directory became illegal at round {round}"
        );
    }
    assert!(accepted > 0, "some transactions must be accepted");
    assert!(rejected > 0, "violating transactions must be rejected");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rollback restores byte-identical content: a rejected transaction
    /// leaves entry count, class index, and query answers unchanged.
    #[test]
    fn rollback_is_exact(seed in 0u64..5000) {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        let mut managed = ManagedDirectory::with_instance(schema, dir).unwrap();
        let org = OrgGenerator::new(OrgParams { seed, target_entries: 40, ..OrgParams::default() }).generate();
        let _ = org;

        let before_len = managed.len();
        let q = Query::object_class("person");
        let before_persons = managed.query(&q).len();

        // Violating transaction: orgUnit under a person.
        let persons = managed.query(&Query::object_class("person"));
        let victim = persons[(seed as usize) % persons.len()];
        let mut tx = bschema_core::updates::Transaction::new();
        tx.insert_under(
            victim,
            bschema_directory::Entry::builder()
                .classes(["orgUnit", "orgGroup", "top"])
                .attr("ou", "bad")
                .build(),
        );
        let err = managed.apply(&tx).unwrap_err();
        prop_assert!(matches!(err, ManagedError::RolledBack(_)));
        prop_assert_eq!(managed.len(), before_len);
        prop_assert_eq!(managed.query(&q).len(), before_persons);
        prop_assert!(managed.is_legal());
    }
}

#[test]
fn managed_directory_is_cloneable_and_independent() {
    let schema = white_pages_schema();
    let (dir, ids) = white_pages_instance();
    let managed = ManagedDirectory::with_instance(schema, dir).unwrap();
    let mut fork = managed.clone();
    fork.delete_subtree(ids.databases).unwrap();
    assert_eq!(fork.len(), 3);
    assert_eq!(managed.len(), 6, "clone mutation must not affect the original");
}
