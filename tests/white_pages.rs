//! End-to-end integration over the paper's worked example: Figures 1–3
//! together, through every crate layer (model, LDIF, query, schema,
//! legality, consistency).

use bschema_core::consistency::{build_witness, ConsistencyChecker};
use bschema_core::legality::LegalityChecker;
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::schema::dsl::{parse_schema, print_schema};
use bschema_directory::ldif;
use bschema_query::{evaluate, EvalContext, Query};

#[test]
fn figure1_is_legal_and_schema_is_consistent() {
    let schema = white_pages_schema();
    let (dir, _) = white_pages_instance();
    assert!(ConsistencyChecker::new(&schema).check().is_consistent());
    let report = LegalityChecker::new(&schema).with_value_validation(true).check(&dir);
    assert!(report.is_legal(), "{report}");
}

#[test]
fn figure1_survives_an_ldif_roundtrip() {
    let schema = white_pages_schema();
    let (dir, _) = white_pages_instance();
    let text = ldif::dump(&dir).expect("figure 1 entries are all named");
    let mut reloaded = bschema_directory::DirectoryInstance::white_pages();
    let n = ldif::load_into(&mut reloaded, &text).expect("dump output reparses");
    assert_eq!(n, 6);
    reloaded.prepare();
    let report = LegalityChecker::new(&schema).check(&reloaded);
    assert!(report.is_legal(), "{report}");
    // Structure preserved: laks is still three levels below the org.
    let laks = reloaded
        .lookup_dn(&"uid=laks,ou=databases,ou=attLabs,o=att".parse().unwrap())
        .expect("laks survived");
    assert_eq!(reloaded.forest().depth(laks), 3);
    assert_eq!(reloaded.entry(laks).unwrap().values("mail").len(), 2);
}

#[test]
fn paper_queries_give_expected_answers() {
    let (dir, ids) = white_pages_instance();
    let ctx = EvalContext::new(&dir);
    // §3.2 Q1 (violating orgGroups): empty on the legal instance.
    let q1 = Query::object_class("orgGroup")
        .minus(Query::object_class("orgGroup").with_descendant(Query::object_class("person")));
    assert!(evaluate(&ctx, &q1).is_empty());
    // §3.2 Q2 (persons with children): empty.
    let q2 = Query::object_class("person").with_child(Query::object_class("top"));
    assert!(evaluate(&ctx, &q2).is_empty());
    // §3.2 Q3 (◇orgUnit): non-empty, exactly attLabs and databases.
    let q3 = Query::object_class("orgUnit");
    assert_eq!(evaluate(&ctx, &q3), vec![ids.att_labs, ids.databases]);
}

#[test]
fn schema_round_trips_through_the_dsl() {
    let schema = white_pages_schema();
    let text = print_schema(&schema, None);
    let reparsed = parse_schema(&text).expect("printed schema reparses");
    assert_eq!(reparsed.schema.size(), schema.size());
    assert_eq!(
        reparsed.schema.structure().required_rels().len(),
        schema.structure().required_rels().len()
    );
    // The reparsed schema judges Figure 1 the same way.
    let (dir, _) = white_pages_instance();
    assert!(LegalityChecker::new(&reparsed.schema).check(&dir).is_legal());
    // And is still consistent with a working witness.
    assert!(ConsistencyChecker::new(&reparsed.schema).check().is_consistent());
    let witness = build_witness(&reparsed.schema).expect("consistent schema has a witness");
    assert!(LegalityChecker::new(&reparsed.schema).check(&witness).is_legal());
}

#[test]
fn every_figure1_entry_fails_if_tampered() {
    // Deleting any single required attribute from any person breaks
    // legality; adding a child under any person breaks legality.
    let schema = white_pages_schema();
    let (dir, ids) = white_pages_instance();
    let checker = LegalityChecker::new(&schema);
    for person in [ids.armstrong, ids.laks, ids.suciu] {
        for attr in ["name", "uid"] {
            let mut tampered = dir.clone();
            tampered.entry_mut(person).unwrap().remove_attribute(attr);
            tampered.prepare();
            assert!(!checker.check(&tampered).is_legal(), "removing {attr} must be caught");
        }
        let mut tampered = dir.clone();
        tampered
            .add_child_entry(
                person,
                bschema_directory::Entry::builder()
                    .classes(["person", "top"])
                    .attr("uid", "x")
                    .attr("name", "x")
                    .build(),
            )
            .unwrap();
        tampered.prepare();
        assert!(!checker.check(&tampered).is_legal(), "person child must be caught");
    }
}
