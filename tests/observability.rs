//! Instrumentation-layer tests: the probe counters must match
//! hand-computed operation counts on the paper's Figure 1–3 fixtures, and
//! span trees must be deterministic across runs and thread counts.
//!
//! Counter ↔ paper mapping (see DESIGN.md):
//! * `legality.structure_queries` / `query.evaluated` — the Figure 4
//!   queries behind Theorem 3.1's O(|Q|·|D|) bound.
//! * `incremental.delta_query.<row>` — the Figure 5 Δ-queries per row.
//! * `consistency.rule.<name>` — Figure 6/7 inference-rule firings.

use std::sync::Arc;

use bschema_core::consistency::ConsistencyChecker;
use bschema_core::legality::{translate, LegalityChecker, LegalityOptions};
use bschema_core::managed::{ManagedDirectory, ManagedError};
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::updates::Transaction;
use bschema_directory::Entry;
use bschema_obs::Recorder;

fn researcher(uid: &str) -> Entry {
    Entry::builder()
        .classes(["researcher", "person", "top"])
        .attr("uid", uid)
        .attr("name", uid)
        .build()
}

#[test]
fn full_check_counters_match_hand_computed_values() {
    let schema = white_pages_schema();
    let (dir, _) = white_pages_instance();
    let recorder = Recorder::new();
    let report = LegalityChecker::new(&schema).with_probe(&recorder).check(&dir);
    assert!(report.is_legal(), "{report}");

    let m = recorder.metrics();
    // Figure 1 has exactly six entries, each content-checked once.
    assert_eq!(m.counter("legality.entries_content_checked"), 6);
    // Figure 3 structure schema: 3 required classes + 4 required
    // relationships + 2 forbidden relationships = 9 legality queries
    // (the Figure 4 translation), each evaluated exactly once.
    assert_eq!(m.counter("legality.structure_queries"), 9);
    assert_eq!(m.counter("query.evaluated"), 9);
    let sizes = m.histogram("query.result_size").expect("result sizes observed");
    assert_eq!(sizes.count(), 9);
    // The three ◇-class queries return non-empty results (1 organization,
    // 2 orgUnits, 3 persons = 6 hits); every violation query is empty.
    assert_eq!(sizes.sum(), 6);

    // Sequential engine: no parallel chunks at all.
    assert_eq!(m.counter("parallel.chunks"), 0);

    let tree = recorder.tracer().tree();
    assert_eq!(tree.len(), 1);
    assert_eq!(tree[0].shape(), "legality.check(content,keys,structure)");
}

#[test]
fn parallel_chunk_metrics_and_deterministic_span_tree() {
    let schema = white_pages_schema();
    let (dir, _) = white_pages_instance();
    let mut shapes = Vec::new();
    for _ in 0..3 {
        let recorder = Recorder::new();
        let report = LegalityChecker::new(&schema)
            .with_options(LegalityOptions::parallel(4))
            .with_probe(&recorder)
            .check(&dir);
        assert!(report.is_legal());

        let m = recorder.metrics();
        // 6 entries over 4 workers → ⌈6/4⌉ = 2 per chunk → 3 content
        // chunks; the 9 structure queries batch the same way → 3 chunks.
        assert_eq!(m.counter("parallel.chunks"), 6);
        assert_eq!(m.histogram("parallel.chunk_us").expect("chunk timings").count(), 6);
        // Same verdict-relevant counters as the sequential engine.
        assert_eq!(m.counter("legality.entries_content_checked"), 6);
        assert_eq!(m.counter("legality.structure_queries"), 9);

        shapes.push(recorder.tracer().tree()[0].shape());
    }
    // Chunk spans are ordered by chunk index, not completion time, so the
    // reconstructed tree is identical on every run.
    assert_eq!(shapes[0], "legality.check(content(chunk,chunk,chunk),keys,structure)");
    assert!(shapes.iter().all(|s| *s == shapes[0]), "{shapes:?}");
}

#[test]
fn explain_census_of_the_nine_figure4_queries() {
    let schema = white_pages_schema();
    let (dir, _) = white_pages_instance();
    let structure = schema.structure();

    // The Figure 4 translation of the Figure 3 structure schema, in the
    // order the legality engine evaluates it.
    let mut queries = Vec::new();
    for class in structure.required_classes() {
        queries.push(translate::required_class_query(&schema, class));
    }
    for rel in structure.required_rels() {
        queries.push(translate::required_rel_query(&schema, rel));
    }
    for rel in structure.forbidden_rels() {
        queries.push(translate::forbidden_rel_query(&schema, rel));
    }
    assert_eq!(queries.len(), 9);

    let ctx = bschema_query::EvalContext::new(&dir);
    let reports: Vec<_> = queries.iter().map(|q| bschema_query::explain(&ctx, q)).collect();

    // EXPLAIN's matched counts are the same census the legality
    // counters pin: the three ◇-class queries hit 1 + 2 + 3 = 6
    // entries, every violation query is empty.
    let matched: usize = reports.iter().map(|r| r.matched()).sum();
    assert_eq!(matched, 6, "Figure 4 matched totals");
    for (query, report) in queries.iter().zip(&reports) {
        assert_eq!(
            report.result,
            bschema_query::evaluate(&ctx, query),
            "EXPLAIN must return what evaluate returns: {query}"
        );
        assert!(
            report.scanned() >= report.matched(),
            "cannot match more than was scanned: {}",
            report.render_text()
        );
        assert!(bschema_obs::json::is_valid(&report.to_json()), "EXPLAIN JSON parses");
    }
}

#[test]
fn insertion_counts_figure5_delta_queries_per_row() {
    let schema = white_pages_schema();
    let (mut dir, ids) = white_pages_instance();
    let mut tx = Transaction::new();
    tx.insert_under(ids.databases, researcher("zoe"));
    let recorder = Recorder::new();
    let applied = bschema_core::updates::apply_and_check_probed(
        &schema,
        &mut dir,
        &tx,
        LegalityOptions::sequential(),
        &recorder,
    )
    .expect("valid transaction");
    assert!(applied.report.is_legal(), "{}", applied.report);

    let m = recorder.metrics();
    // One researcher/person inserted under an orgUnit. Figure 5 Δ-queries
    // fired, by structure-schema row (the new entry is a person and — via
    // top — a candidate target of every relationship):
    //   orgGroup →de person  → require_descendant (target side)    = 1
    //   orgUnit  →pa orgGroup + person →pa orgGroup (source side)  = 2
    //   orgUnit  →an organization (target is never a new person,
    //                              but the inserted subtree could
    //                              contain an orgUnit)              = 1
    //   person  →ch̸ top + organization →ch̸ organization            = 2
    assert_eq!(m.counter("incremental.delta_query.require_descendant"), 1);
    assert_eq!(m.counter("incremental.delta_query.require_parent"), 2);
    assert_eq!(m.counter("incremental.delta_query.require_ancestor"), 1);
    assert_eq!(m.counter("incremental.delta_query.forbid_child"), 2);
    assert_eq!(m.counter("incremental.delta_query.require_child"), 0);
    assert_eq!(m.counter("incremental.delta_query.forbid_descendant"), 0);
    // Only the inserted entry is content-checked — that is the point of
    // the Figure 5 incremental test.
    assert_eq!(m.counter("legality.entries_content_checked"), 1);

    let tree = recorder.tracer().tree();
    let shapes: Vec<String> = tree.iter().map(|n| n.shape()).collect();
    // Each Δ-query evaluated inside the structure chunk gets its own row
    // span, named for its Figure 5 row, in structure-schema order — the
    // same per-row census the counters above pin.
    assert!(
        shapes.contains(
            &"incremental.check_insertions(content_delta(chunk),keys,structure_delta(chunk(\
              require_descendant,require_parent,require_ancestor,require_parent,forbid_child,\
              forbid_child)))"
                .to_owned()
        ),
        "{shapes:?}"
    );
}

#[test]
fn consistency_rule_firings_sum_to_closure_size() {
    let schema = white_pages_schema();
    let recorder = Recorder::new();
    let verdict = ConsistencyChecker::new(&schema).with_probe(&recorder).check();
    assert!(verdict.is_consistent());

    let m = recorder.metrics();
    // Every Figure 3 structure element is seeded by the `schema` rule:
    // 3 required classes + 4 required rels + 2 forbidden rels = 9.
    assert_eq!(m.counter("consistency.rule.schema"), 9);
    // Each closure element is derived (and counted) exactly once, so the
    // per-rule firings partition the closure.
    let fired: u64 = m
        .counters()
        .iter()
        .filter(|(k, _)| k.starts_with("consistency.rule."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(fired, verdict.closure_size() as u64);
    let h = m.histogram("consistency.closure_size").expect("closure size observed");
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), verdict.closure_size() as u64);

    assert_eq!(recorder.tracer().tree()[0].shape(), "consistency.check");
}

#[test]
fn managed_rollback_reports_and_counts_the_violations() {
    let schema = white_pages_schema();
    let (dir, ids) = white_pages_instance();
    let recorder = Arc::new(Recorder::new());
    let mut managed = ManagedDirectory::with_instance(schema, dir)
        .expect("figure 1 is legal")
        .with_probe(recorder.clone());
    let len_before = managed.len();

    // Giving a person a child violates person →ch̸ top; the transaction
    // must roll back *and* still hand the violation set to the caller.
    let mut tx = Transaction::new();
    tx.insert_under(ids.suciu, researcher("intruder"));
    let err = managed.apply(&tx).expect_err("illegal transaction");
    let ManagedError::RolledBack(report) = err else {
        panic!("expected RolledBack, got: {err}");
    };
    assert!(!report.is_legal());
    assert!(report.violations().iter().any(|v| v.kind_name() == "forbidden-relationship"));
    assert_eq!(managed.len(), len_before, "rollback restored the instance");

    let m = recorder.metrics();
    assert_eq!(m.counter("managed.tx_rolled_back"), 1);
    assert_eq!(m.counter("managed.tx_applied"), 0);
    assert!(m.counter("managed.rollback_violation.forbidden-relationship") >= 1);
    assert_eq!(m.histogram("managed.rollback_violations").expect("observed").count(), 1);

    // A legal transaction on the same directory counts as applied.
    let mut tx = Transaction::new();
    tx.insert_under(ids.databases, researcher("newhire"));
    managed.apply(&tx).expect("legal transaction");
    assert_eq!(recorder.metrics().counter("managed.tx_applied"), 1);
    assert_eq!(managed.len(), len_before + 1);
}

#[test]
fn noop_probe_records_nothing_and_changes_nothing() {
    let schema = white_pages_schema();
    let (dir, _) = white_pages_instance();
    // Instrumented and uninstrumented checkers agree byte-for-byte.
    let recorder = Recorder::new();
    let plain = LegalityChecker::new(&schema).check(&dir);
    let probed = LegalityChecker::new(&schema).with_probe(&recorder).check(&dir);
    assert_eq!(plain, probed);
    // The no-op probe really is inert: a recorder never attached stays
    // empty even after the probed run above did real work.
    let untouched = Recorder::new();
    assert!(untouched.metrics().is_empty());
    assert!(untouched.tracer().is_empty());
}
