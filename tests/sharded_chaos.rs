//! Chaos campaign for the sharded 2-phase write path.
//!
//! A deterministic multi-organization LDIF workload is replayed through
//! a [`ShardedDirectory`] instrumented with a [`FaultPlan`]:
//!
//! 1. an observer pass records the census of probe events — including
//!    the 2-phase sites `sharded.prepare.shard<k>`, `sharded.prepared`
//!    (the gap between prepare and commit), `sharded.commit.shard<k>`,
//!    and `sharded.rollback`;
//! 2. one run per event injects a one-shot panic at exactly that event
//!    and asserts the failed transaction left every shard byte-identical
//!    to its pre-transaction state (all-shards rollback), while a
//!    fault-free mirror engine tracks what committed;
//! 3. after each run, [`ShardedDirectory::recover`] is driven from the
//!    per-shard journals and must converge to the live engine's state —
//!    in particular for commits torn between peers.
//!
//! `injected == census` is asserted: every event really took its panic.
//! `CHAOS_SEED` reseeds the workload; `SHARDED_CHAOS_PREFIX` narrows the
//! site-matrix test to one 2-phase site family per CI job.

use std::sync::Arc;

use bschema_core::journal::Journal;
use bschema_core::paper::white_pages_schema;
use bschema_core::sharded::{partition, ShardedDirectory};
use bschema_directory::ldif::parse_ldif;
use bschema_directory::DirectoryInstance;
use bschema_faults::{silence_injected_panics, FaultPlan};
use bschema_workload::{GeneratedTx, LdifWorkload, LdifWorkloadParams};

const SHARDS: usize = 3;

fn seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(v) => v.parse().expect("CHAOS_SEED must be a u64"),
        Err(_) => 0x5A4D,
    }
}

fn workload() -> (DirectoryInstance, Vec<GeneratedTx>) {
    let (base, mut txs) = LdifWorkload::generate(LdifWorkloadParams {
        orgs: 4,
        entries_per_org: 30,
        transactions: 16,
        seed: seed(),
    });
    // Whatever the seed generates, the campaign must drive the 2-phase
    // path both to commit and to rollback: pin one legal and one
    // illegal transaction across two org roots on distinct shards.
    // (Org names are fixed `org0..org3`, so the routing is seed-free.)
    let by_shard = |name: &str| {
        bschema_core::sharded::shard_of_root_rdn(&bschema_directory::Rdn::single("o", name), SHARDS)
    };
    let a = "org0";
    let b = (1..4)
        .map(|i| format!("org{i}"))
        .find(|name| by_shard(name) != by_shard(a))
        .expect("four fixed org names cannot all hash to one of three shards here");
    let person = |uid: &str, org: &str, with_name: bool| {
        let mut text =
            format!("dn: uid={uid},o={org}\nobjectClass: person\nobjectClass: top\nuid: {uid}\n");
        if with_name {
            text.push_str(&format!("name: {uid}\n"));
        }
        text
    };
    txs.push(GeneratedTx {
        ldif: format!("{}\n{}", person("pin1", a, true), person("pin2", &b, true)),
        multi_subtree: true,
        expect_commit: true,
        kind: "pinned-cross",
    });
    txs.push(GeneratedTx {
        ldif: format!("{}\n{}", person("pin3", a, true), person("pin4", &b, false)),
        multi_subtree: true,
        expect_commit: false,
        kind: "pinned-reject-cross",
    });
    (base, txs)
}

fn engine(base: &DirectoryInstance, plan: Option<Arc<FaultPlan>>) -> ShardedDirectory {
    let sharded = ShardedDirectory::with_instance(white_pages_schema(), base.clone(), SHARDS)
        .expect("generated base is legal");
    match plan {
        Some(plan) => sharded.with_probe(plan),
        None => sharded,
    }
}

/// Replays the workload on a (possibly fault-injected) engine next to a
/// fault-free mirror, asserting per-transaction atomicity; then drives
/// recovery from the chaotic engine's journals and asserts convergence.
/// Returns the number of transactions that committed.
fn replay_and_check(
    base: &DirectoryInstance,
    txs: &[GeneratedTx],
    plan: Option<Arc<FaultPlan>>,
    context: &str,
) -> usize {
    let chaotic = engine(base, plan);
    let mirror = engine(base, None);
    let mut committed = 0usize;
    for (i, tx) in txs.iter().enumerate() {
        let records = parse_ldif(&tx.ldif).expect("generated ldif parses");
        let before = chaotic.merged_instance().expect("merge").canonical_bytes();
        match chaotic.apply_ldif(records) {
            Ok(_) => {
                committed += 1;
                let mirrored = parse_ldif(&tx.ldif).expect("generated ldif parses");
                mirror
                    .apply_ldif(mirrored)
                    .unwrap_or_else(|e| panic!("{context}: mirror rejected tx {i} ({e})"));
            }
            Err(_) => {
                let after = chaotic.merged_instance().expect("merge").canonical_bytes();
                assert_eq!(
                    before, after,
                    "{context}: failed tx {i} ({}) left shard residue",
                    tx.kind
                );
            }
        }
        let live = chaotic.merged_instance().expect("merge").canonical_bytes();
        let expected = mirror.merged_instance().expect("merge").canonical_bytes();
        assert_eq!(live, expected, "{context}: tx {i} ({}) diverged from mirror", tx.kind);
    }

    // Post-crash convergence: recover from the per-shard journals onto
    // the pristine partition of the base and compare to the live state.
    let journals: Vec<Journal> =
        (0..SHARDS).map(|k| Journal::parse(&chaotic.take_pending(k))).collect();
    let bases = partition(base, SHARDS).expect("partition");
    let (recovered, _reports) = ShardedDirectory::recover(white_pages_schema(), bases, &journals)
        .unwrap_or_else(|e| panic!("{context}: recovery failed ({e})"));
    let live = chaotic.merged_instance().expect("merge").canonical_bytes();
    let recovered_bytes = recovered.merged_instance().expect("merge").canonical_bytes();
    assert_eq!(recovered_bytes, live, "{context}: recovery diverges from live state");
    committed
}

#[test]
fn every_site_injection_rolls_back_all_shards_and_recovers() {
    silence_injected_panics();
    let (base, txs) = workload();

    // Observer pass: the census, and a baseline commit count.
    let observer = Arc::new(FaultPlan::observer());
    let baseline = replay_and_check(&base, &txs, Some(observer.clone()), "observer");
    assert!(baseline > 0, "workload committed nothing");
    let census = observer.sites();
    assert!(observer.events() > 0, "no probe events to inject at");
    for site in ["sharded.prepared", "sharded.rollback"] {
        assert!(census.contains_key(site), "census is missing {site}: {census:?}");
    }
    for family in ["sharded.prepare.shard", "sharded.commit.shard"] {
        let hit = census.keys().filter(|s| s.starts_with(family)).count();
        assert!(hit >= 2, "census has {hit} {family}* sites (want ≥2 of {SHARDS}): {census:?}");
    }

    // Injection campaign. The 2-phase `sharded.*` sites are this
    // suite's new surface: every occurrence takes a panic — including
    // each "between prepare and commit on shard k of m" gap
    // (`sharded.prepared`, and the k-th `sharded.commit.shard*` visit).
    // The engine-internal sites below them are already event-exhausted
    // by the `chaos_atomicity` campaign, so one injection per site
    // keeps this suite's runtime proportional to the new code.
    let mut runs: Vec<(String, u64)> = Vec::new();
    for (site, &occurrences) in &census {
        if site.starts_with("sharded.") {
            runs.extend((0..occurrences).map(|o| (site.clone(), o)));
        } else {
            runs.push((site.clone(), 0));
        }
    }
    let mut injected = 0u64;
    for (site, occurrence) in &runs {
        let plan = Arc::new(FaultPlan::fail_at_site(site.clone(), *occurrence));
        replay_and_check(
            &base,
            &txs,
            Some(plan.clone()),
            &format!("site {site} occurrence {occurrence}"),
        );
        assert_eq!(plan.injected(), 1, "site {site}#{occurrence} did not take its injection");
        injected += plan.injected();
    }
    assert_eq!(injected, runs.len() as u64, "injected != census");
}

#[test]
fn targeted_2pc_site_matrix() {
    // One 2-phase site family per CI matrix row:
    // SHARDED_CHAOS_PREFIX=prepare|commit|rollback. Without the
    // variable this is a no-op — the full campaign above covers all
    // families — so plain `cargo test` does not pay for the run twice.
    let prefix = match std::env::var("SHARDED_CHAOS_PREFIX") {
        Ok(p) => format!("sharded.{p}"),
        Err(_) => return,
    };
    silence_injected_panics();
    let (base, txs) = workload();

    let observer = Arc::new(FaultPlan::observer());
    replay_and_check(&base, &txs, Some(observer.clone()), "observer");
    let census = observer.sites();

    let mut covered = 0usize;
    for (site, &occurrences) in &census {
        if !site.starts_with(prefix.as_str()) {
            continue;
        }
        for occurrence in 0..occurrences {
            let plan = Arc::new(FaultPlan::fail_at_site(site.clone(), occurrence));
            replay_and_check(
                &base,
                &txs,
                Some(plan.clone()),
                &format!("site {site} occurrence {occurrence}"),
            );
            assert_eq!(plan.injected(), 1, "site {site}#{occurrence} was not injected");
            covered += 1;
        }
    }
    assert!(covered > 0, "no 2-phase sites matched {prefix:?}; census: {census:?}");
}
