//! Checkpoint + replication chaos campaign.
//!
//! Three surfaces under test, all over real TCP sessions:
//!
//! 1. **Checkpoint compaction** — a journaled primary checkpoints (via
//!    the `CHECKPOINT` verb and the `--checkpoint-every` trigger),
//!    truncates its journal, and a restart recovers from checkpoint +
//!    tail to a byte-identical instance.
//! 2. **Read replicas** — a [`Follower`] bootstraps from a shipped
//!    checkpoint, streams committed journal records over `SHIP`,
//!    re-bootstraps across compaction-induced `ship-gap`s, and refuses
//!    client writes with the stable `read-only` code.
//! 3. **Crash consistency** — a fault-injection matrix over the new
//!    sites (`checkpoint.write`, `checkpoint.truncate`, `ship.serve`,
//!    `ship.apply`): after every injected panic the campaign must end
//!    with primary ≡ replica ≡ disk-recovered state, compared by
//!    [`DirectoryInstance::canonical_bytes`].
//!
//! `CHAOS_SEED` reseeds the workload; `REPLICATION_CHAOS_SITE` narrows
//! the matrix to one site per CI job.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use bschema_core::checkpoint::checkpoint_path;
use bschema_core::paper::white_pages_schema;
use bschema_core::schema::DirectorySchema;
use bschema_core::ManagedDirectory;
use bschema_directory::DirectoryInstance;
use bschema_faults::{silence_injected_panics, FaultPlan};
use bschema_server::{
    Client, DirectoryService, Follower, ReplicationState, Server, ServerConfig, ServerHandle,
};
use bschema_workload::{GeneratedTx, LdifWorkload, LdifWorkloadParams};

fn seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(v) => v.parse().expect("CHAOS_SEED must be a u64"),
        Err(_) => 0xC4C7,
    }
}

/// A seeded workload plus pinned known-legal insertions, so every run —
/// whatever the seed — commits enough to exercise tail shipping.
fn workload() -> (DirectoryInstance, Vec<GeneratedTx>) {
    let (base, mut txs) = LdifWorkload::generate(LdifWorkloadParams {
        orgs: 2,
        entries_per_org: 12,
        transactions: 10,
        seed: seed(),
    });
    let person = |uid: &str| GeneratedTx {
        ldif: format!(
            "dn: uid={uid},o=org0\nobjectClass: person\nobjectClass: top\nuid: {uid}\nname: {uid}\n"
        ),
        multi_subtree: false,
        expect_commit: true,
        kind: "pinned-legal",
    };
    txs.insert(0, person("ship1"));
    txs.insert(2, person("ship2"));
    txs.push(person("ship3"));
    (base, txs)
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bschema-repl-{tag}-{}.journal", std::process::id()))
}

fn scrub(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let ckpt = checkpoint_path(path);
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(ckpt.with_file_name(format!(
        "{}.tmp",
        ckpt.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default()
    )));
    let _ = std::fs::remove_file(path.with_file_name(format!(
        "{}.tmp",
        path.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default()
    )));
}

/// Spawns a journaled primary over `base`, optionally fault-injected,
/// checkpointing every 4 commits.
fn spawn_primary(
    schema: &DirectorySchema,
    base: &DirectoryInstance,
    path: &PathBuf,
    plan: Option<Arc<FaultPlan>>,
) -> (Arc<DirectoryService>, ServerHandle) {
    let managed = ManagedDirectory::with_instance(schema.clone(), base.clone())
        .expect("workload base is legal");
    let mut service = DirectoryService::new(managed);
    if let Some(plan) = plan {
        service = service.with_probe(plan);
    }
    let (service, _replayed) = service.with_journal(path).expect("journal attaches");
    let service = Arc::new(service.with_checkpoint_every(4));
    let config = ServerConfig { threads: 2, ..ServerConfig::default() };
    let handle = Server::spawn(service.clone(), config).expect("bind loopback");
    (service, handle)
}

/// Bootstraps a follower replica off the primary at `addr`.
fn spawn_follower(
    addr: &str,
    schema: &DirectorySchema,
    plan: Option<Arc<FaultPlan>>,
) -> (Arc<DirectoryService>, Follower) {
    let (managed, cursor) =
        Follower::bootstrap_state(addr, schema).expect("primary serves a bootstrap checkpoint");
    let replication = Arc::new(ReplicationState::default());
    let mut service =
        DirectoryService::new(managed).with_read_only().with_replication(replication.clone());
    if let Some(plan) = plan {
        service = service.with_probe(plan);
    }
    let service = Arc::new(service);
    let follower = Follower::attach(addr, schema.clone(), service.clone(), replication, cursor);
    (service, follower)
}

/// One follower sync that tolerates injected panics (`ship.apply`) and
/// server-side injected panics surfacing as `panicked` refusals
/// (`ship.serve`).
fn sync_tolerant(follower: &mut Follower) {
    let _ = catch_unwind(AssertUnwindSafe(|| follower.sync_once()));
}

/// Syncs until the follower reports caught-up **and** byte-equality
/// with the primary holds. Panics if 20 passes do not converge.
fn sync_until_converged(follower: &mut Follower, primary: &Arc<DirectoryService>, context: &str) {
    for _ in 0..20 {
        let outcome = catch_unwind(AssertUnwindSafe(|| follower.sync_once()));
        if let Ok(Ok(report)) = outcome {
            if report.applied == 0
                && !report.bootstrapped
                && follower.service().snapshot().canonical_bytes()
                    == primary.snapshot().canonical_bytes()
            {
                return;
            }
        }
    }
    panic!("{context}: follower failed to converge with the primary");
}

/// Drives the whole campaign once: workload through a (possibly
/// fault-injected) primary with a live follower, explicit checkpoints
/// interleaved so compaction races shipping, then convergence checks:
/// follower ≡ primary, and a from-disk recovery ≡ primary.
fn run_campaign(
    tag: &str,
    primary_plan: Option<Arc<FaultPlan>>,
    follower_plan: Option<Arc<FaultPlan>>,
) {
    let schema = white_pages_schema();
    let (base, txs) = workload();
    let path = journal_path(tag);
    scrub(&path);

    let (primary, handle) = spawn_primary(&schema, &base, &path, primary_plan);
    let addr = handle.addr().to_string();
    let (_replica_svc, mut follower) = spawn_follower(&addr, &schema, follower_plan);

    let mut client = Client::connect(&addr).expect("connect workload client");
    for (i, tx) in txs.iter().enumerate() {
        // Every refusal is fine here — illegal workload txs reject, and
        // an injected checkpoint fault after a commit surfaces as
        // `panicked` (outcome unknown). The convergence checks below
        // are what the campaign asserts.
        if client.apply_ldif(&tx.ldif).is_err() {
            // An injected panic may also have dropped nothing — but a
            // transport-level failure needs a fresh connection.
            if client.ping().is_err() {
                client = Client::connect(&addr).expect("reconnect workload client");
            }
        }
        if i % 2 == 0 {
            // Tail-ship path: the follower streams what just committed.
            sync_tolerant(&mut follower);
        }
        if i % 3 == 2 {
            // Compaction racing the follower: txs committed since its
            // last sync get truncated into the checkpoint, forcing the
            // ship-gap → re-bootstrap path on the next sync.
            let _ = client.checkpoint();
        }
    }
    let _ = client.checkpoint();

    sync_until_converged(&mut follower, &primary, tag);
    let live = primary.snapshot().canonical_bytes();
    assert_eq!(
        follower.service().snapshot().canonical_bytes(),
        live,
        "{tag}: replica diverged from primary"
    );

    // "kill -9": drop the server, recover purely from the on-disk
    // checkpoint + journal tail onto a pristine seed. Connections are
    // dropped first so the drain does not sit out a read timeout.
    drop(client);
    drop(follower);
    handle.shutdown();
    handle.wait();
    let managed = ManagedDirectory::with_instance(schema.clone(), base.clone())
        .expect("workload base is legal");
    let (recovered, _replayed) =
        DirectoryService::new(managed).with_journal(&path).expect("post-crash recovery");
    assert_eq!(
        recovered.snapshot().canonical_bytes(),
        live,
        "{tag}: disk recovery diverged from the live primary"
    );
    scrub(&path);
}

#[test]
fn checkpoint_compacts_journal_and_restart_replays_tail_only() {
    let schema = white_pages_schema();
    let (base, txs) = workload();
    let path = journal_path("compact");
    scrub(&path);

    let (primary, handle) = spawn_primary(&schema, &base, &path, None);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut committed = 0usize;
    for tx in &txs {
        if client.apply_ldif(&tx.ldif).is_ok() {
            committed += 1;
        }
    }
    assert!(committed >= 3, "workload must commit (seed {})", seed());

    let seqs = client.checkpoint().expect("CHECKPOINT succeeds");
    assert_eq!(seqs.len(), 1, "single backend checkpoints one shard");
    let journal_after = std::fs::read_to_string(&path).unwrap_or_default();
    assert!(
        journal_after.is_empty(),
        "checkpoint must truncate the journal, found {} bytes",
        journal_after.len()
    );
    assert!(checkpoint_path(&path).exists(), "checkpoint file must exist");

    // One more commit after the checkpoint becomes the tail.
    client
        .apply_ldif("dn: uid=tail1,o=org0\nobjectClass: person\nobjectClass: top\nuid: tail1\nname: tail1\n")
        .expect("post-checkpoint commit");
    let live = primary.snapshot().canonical_bytes();
    drop(client);
    handle.shutdown();
    handle.wait();

    let managed =
        ManagedDirectory::with_instance(schema.clone(), base.clone()).expect("base is legal");
    let (recovered, replayed) =
        DirectoryService::new(managed).with_journal(&path).expect("checkpoint-aware recovery");
    assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
    assert_eq!(recovered.snapshot().canonical_bytes(), live);
    scrub(&path);
}

#[test]
fn follower_streams_rebootstraps_and_refuses_writes() {
    let schema = white_pages_schema();
    let (base, _txs) = workload();
    let path = journal_path("follow");
    scrub(&path);

    let (primary, handle) = spawn_primary(&schema, &base, &path, None);
    let addr = handle.addr().to_string();
    let (replica_svc, mut follower) = spawn_follower(&addr, &schema, None);
    assert_eq!(
        replica_svc.snapshot().canonical_bytes(),
        primary.snapshot().canonical_bytes(),
        "bootstrap state must match the primary"
    );

    // Tail shipping: commit, sync, converge.
    let mut client = Client::connect(&addr).expect("connect");
    client
        .apply_ldif("dn: uid=s1,o=org0\nobjectClass: person\nobjectClass: top\nuid: s1\nname: s1\n")
        .expect("legal commit");
    let report = follower.sync_once().expect("tail sync");
    assert_eq!(report.applied, 1);
    assert!(!report.bootstrapped);
    assert_eq!(replica_svc.snapshot().canonical_bytes(), primary.snapshot().canonical_bytes());

    // Compaction while the follower is behind forces a re-bootstrap.
    client
        .apply_ldif("dn: uid=s2,o=org0\nobjectClass: person\nobjectClass: top\nuid: s2\nname: s2\n")
        .expect("legal commit");
    client.checkpoint().expect("checkpoint");
    let report = follower.sync_once().expect("gap sync");
    assert!(report.bootstrapped, "compaction behind the cursor must re-bootstrap");
    assert_eq!(replica_svc.snapshot().canonical_bytes(), primary.snapshot().canonical_bytes());

    // The replica refuses writes with the stable code, on the service
    // API and over its own wire.
    let err = replica_svc.apply_ldif_tx("dn: o=nope\nobjectClass: top\n").unwrap_err();
    assert_eq!(err.code, "read-only");
    let replica_handle =
        Server::spawn(replica_svc.clone(), ServerConfig { threads: 1, ..ServerConfig::default() })
            .expect("bind replica");
    let mut rclient = Client::connect(replica_handle.addr()).expect("connect replica");
    let refusal =
        rclient.apply_ldif("dn: o=nope\nobjectClass: top\n").expect_err("replica must refuse TXN");
    assert_eq!(refusal.server_code(), Some("read-only"));
    let refusal =
        rclient.modify_lines("dn: o=org0\nadd: description: x\n").expect_err("refuse MODIFY");
    assert_eq!(refusal.server_code(), Some("read-only"));
    // Reads still serve.
    let hits = rclient.search(None, "sub", "(uid=s2)", None).expect("replica search");
    assert!(hits.contains("uid: s2"), "replica must serve replicated entries: {hits}");

    // Replication gauges surfaced: lag 0 after convergence, ≥2
    // bootstraps (attach + gap).
    let replication = replica_svc.replication().expect("follower carries gauges");
    assert_eq!(replication.lag(), 0);
    assert!(replication.bootstraps() >= 2, "attach + ship-gap: {}", replication.bootstraps());

    drop(rclient);
    replica_handle.shutdown();
    replica_handle.wait();
    drop(client);
    drop(follower);
    handle.shutdown();
    handle.wait();
    scrub(&path);
}

/// The injection matrix: `(site, occurrences, on_follower)`. Occurrence
/// counts are conservative floors — the driver guarantees at least that
/// many visits (4+ checkpoint cycles, a sync every other tx, pinned
/// legal commits), and each run asserts its injection actually fired.
const MATRIX: [(&str, u64, bool); 4] = [
    ("checkpoint.write", 3, false),
    ("checkpoint.truncate", 3, false),
    ("ship.serve", 3, false),
    ("ship.apply", 2, true),
];

#[test]
fn injected_faults_never_break_convergence() {
    silence_injected_panics();
    let only = std::env::var("REPLICATION_CHAOS_SITE").ok();
    let mut ran = 0usize;
    for (site, occurrences, on_follower) in MATRIX {
        if let Some(only) = &only {
            if only != site {
                continue;
            }
        }
        for occurrence in 0..occurrences {
            let plan = Arc::new(FaultPlan::fail_at_site(site, occurrence));
            let tag = format!("{site}#{occurrence}");
            let (primary_plan, follower_plan) =
                if on_follower { (None, Some(plan.clone())) } else { (Some(plan.clone()), None) };
            run_campaign(&tag, primary_plan, follower_plan);
            assert_eq!(plan.injected(), 1, "site {tag} did not take its injection");
            ran += 1;
        }
    }
    assert!(ran > 0, "REPLICATION_CHAOS_SITE={only:?} matched no matrix row");
}
