//! §5 property tests: soundness of the inference system (Theorem 5.1) and
//! empirical completeness for consistency (Theorem 5.2) via the witness
//! constructor, over randomized schema families.

use bschema_core::consistency::{build_witness, ConsistencyChecker, Element};
use bschema_core::legality::LegalityChecker;
use bschema_core::schema::{DirectorySchema, ForbidKind, RelKind};
use bschema_workload::{SchemaGenerator, SchemaParams};
use proptest::prelude::*;

/// Soundness (Theorem 5.1) in its operational form: if the engine derives
/// ◇∅ then NO legal instance exists — so whenever the witness builder
/// produces a verified-legal instance, the engine must have said consistent.
#[test]
fn soundness_against_witnesses_on_random_schemas() {
    for seed in 0..80u64 {
        let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
        let schema = g.unconstrained();
        let verdict = ConsistencyChecker::new(&schema).check();
        if let Ok(witness) = build_witness(&schema) {
            // build_witness verifies legality internally; double-check.
            assert!(
                LegalityChecker::new(&schema).check(&witness).is_legal(),
                "builder invariant broken at seed {seed}"
            );
            assert!(
                verdict.is_consistent(),
                "seed {seed}: engine derived ◇∅ but a legal instance exists — soundness violation.\n{}",
                verdict.explain_inconsistency().unwrap_or_default()
            );
        }
    }
}

/// Empirical completeness: on the consistent-by-construction family the
/// engine must agree, and a witness must be constructible.
#[test]
fn completeness_on_consistent_family() {
    for seed in 0..50u64 {
        let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
        let schema = g.consistent();
        let verdict = ConsistencyChecker::new(&schema).check();
        assert!(
            verdict.is_consistent(),
            "seed {seed}: consistent family flagged inconsistent:\n{}",
            verdict.explain_inconsistency().unwrap_or_default()
        );
        let witness = build_witness(&schema)
            .unwrap_or_else(|e| panic!("seed {seed}: witness construction failed: {e}"));
        assert!(LegalityChecker::new(&schema).check(&witness).is_legal());
    }
}

/// The planted-defect family must always be caught, with a printable proof.
#[test]
fn planted_defects_always_caught() {
    for seed in 0..50u64 {
        let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
        let schema = g.inconsistent();
        let verdict = ConsistencyChecker::new(&schema).check();
        assert!(!verdict.is_consistent(), "seed {seed}: planted defect missed");
        let proof = verdict.explain_inconsistency().expect("proof exists");
        assert!(proof.starts_with("◇∅"), "proof must be rooted at ◇∅:\n{proof}");
    }
}

/// Every derivation in the closure is well-founded: premises are themselves
/// derived, and base facts have no premises.
#[test]
fn derivations_are_well_founded() {
    let mut g = SchemaGenerator::new(SchemaParams::default());
    let schema = g.unconstrained();
    let verdict = ConsistencyChecker::new(&schema).check();
    for (element, derivation) in verdict.elements() {
        for premise in &derivation.premises {
            assert!(
                verdict.derives(premise),
                "premise {premise} of {element} is not in the closure"
            );
        }
        if derivation.rule == bschema_core::consistency::rules::SCHEMA {
            assert!(derivation.premises.is_empty());
        }
    }
}

// Monotonicity: adding elements to a schema never turns an inconsistent
// schema consistent.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn inconsistency_is_monotone(seed in 0u64..500, extra_kind in 0u8..4) {
        let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
        let schema = g.inconsistent();
        prop_assume!(!ConsistencyChecker::new(&schema).check().is_consistent());

        // Rebuild the schema with one extra harmless-looking element.
        let classes: Vec<String> = schema
            .classes()
            .core_classes()
            .map(|c| schema.classes().name(c).to_owned())
            .collect();
        let mut builder = DirectorySchema::builder();
        for name in &classes {
            if name.eq_ignore_ascii_case("top") {
                continue;
            }
            let parent = schema
                .classes()
                .parent(schema.classes().resolve(name).unwrap())
                .map(|p| schema.classes().name(p).to_owned())
                .unwrap_or_else(|| "top".to_owned());
            builder = builder.core_class(name, &parent).unwrap();
        }
        for class in schema.structure().required_classes() {
            builder = builder.require_class(schema.classes().name(class)).unwrap();
        }
        for rel in schema.structure().required_rels() {
            builder = builder
                .require_rel(schema.classes().name(rel.source), rel.kind, schema.classes().name(rel.target))
                .unwrap();
        }
        for rel in schema.structure().forbidden_rels() {
            builder = builder
                .forbid_rel(schema.classes().name(rel.upper), rel.kind, schema.classes().name(rel.lower))
                .unwrap();
        }
        let a = &classes[0];
        let b = classes.last().unwrap();
        builder = match extra_kind {
            0 => builder.require_class(b).unwrap(),
            1 => builder.require_rel(a, RelKind::Descendant, b).unwrap(),
            2 => builder.forbid_rel(a, ForbidKind::Child, b).unwrap(),
            _ => builder.require_rel(b, RelKind::Ancestor, a).unwrap(),
        };
        let bigger = builder.build();
        prop_assert!(
            !ConsistencyChecker::new(&bigger).check().is_consistent(),
            "adding elements made an inconsistent schema consistent (seed {seed})"
        );
    }
}

/// The derived closure only grows relative to the base elements, and base
/// elements are always present.
#[test]
fn closure_contains_all_base_elements() {
    let schema = bschema_core::paper::white_pages_schema();
    let verdict = ConsistencyChecker::new(&schema).check();
    for class in schema.structure().required_classes() {
        assert!(verdict.derives(&Element::Req(class.into())));
    }
    for rel in schema.structure().required_rels() {
        assert!(verdict.derives(&Element::ReqRel(rel.source.into(), rel.kind, rel.target.into())));
    }
    assert!(verdict.closure_size() >= schema.structure().len());
}
