//! Vendored stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: a seeded [`rngs::StdRng`]
//! built on SplitMix64, [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension trait with `random_bool` / `random_range`.
//! Deterministic by construction — exactly what seeded workload
//! generators want.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy {
    /// Maps one random word into `[range.start, range.end)`.
    fn sample_from(range: core::ops::Range<Self>, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(range: core::ops::Range<Self>, raw: u64) -> Self {
                assert!(
                    range.start < range.end,
                    "random_range requires a non-empty range"
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (raw as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The convenience sampling methods the workload generators use.
pub trait RngExt: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform draw from the half-open `range`.
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_from(range, self.next_u64())
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: SplitMix64. Not cryptographic —
    /// statistical quality only, which is all the benchmarks need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<usize> = (0..16).map(|_| a.random_range(0..1000)).collect();
        let ys: Vec<usize> = (0..16).map(|_| b.random_range(0..1000)).collect();
        let zs: Vec<usize> = (0..16).map(|_| c.random_range(0..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
