//! Vendored stand-in for the `criterion` crate (see
//! `vendor/README.md`).
//!
//! Implements the harness subset the `bschema-bench` targets use:
//! [`Criterion`], [`BenchmarkGroup`] with throughput annotations,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! plain median-of-samples wall-clock timer printing one line per
//! benchmark — no statistics engine, plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Samples measured per benchmark (each sample auto-scales its
/// iteration count to last roughly [`TARGET_SAMPLE_NANOS`]).
const SAMPLES: usize = 11;
/// Target wall-clock duration of one sample, in nanoseconds.
const TARGET_SAMPLE_NANOS: u128 = 20_000_000;

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, f);
        self
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label()), self.throughput, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label()), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A benchmark name, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { label: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times closures inside a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    sample_nanos: Vec<u128>,
}

impl Bencher {
    /// Measures `f`, retaining its return value to keep the work alive.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.sample_nanos.push(start.elapsed().as_nanos());
    }
}

/// An opaque wrapper preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibration pass: one iteration, to size the per-sample batch.
    let mut calib = Bencher { iters_per_sample: 1, sample_nanos: Vec::new() };
    f(&mut calib);
    let per_iter = calib.sample_nanos.first().copied().unwrap_or(1).max(1);
    let iters = ((TARGET_SAMPLE_NANOS / per_iter).clamp(1, 1_000_000)) as u64;

    let mut bencher =
        Bencher { iters_per_sample: iters, sample_nanos: Vec::with_capacity(SAMPLES) };
    for _ in 0..SAMPLES {
        f(&mut bencher);
    }
    bencher.sample_nanos.sort_unstable();
    let median = bencher.sample_nanos[bencher.sample_nanos.len() / 2] / u128::from(iters);

    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0 => {
            format!("  ({:.0} elem/s)", n as f64 / (median as f64 / 1e9))
        }
        Some(Throughput::Bytes(n)) if median > 0 => {
            format!("  ({:.0} B/s)", n as f64 / (median as f64 / 1e9))
        }
        _ => String::new(),
    };
    println!("{label:<50} {}{rate}", fmt_nanos(median));
}

fn fmt_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:>10.3} s ", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:>10.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:>10.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos:>10} ns")
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b))
    }

    #[test]
    fn harness_api_works_end_to_end() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| sum_to(black_box(100))));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("with_input", 100), &100u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        group.bench_function("plain", |b| b.iter(|| sum_to(50)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fast", 1000).label(), "fast/1000");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }
}
