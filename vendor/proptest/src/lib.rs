//! Vendored stand-in for the `proptest` crate (see
//! `vendor/README.md`).
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro with per-block [`ProptestConfig`], the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_recursive`, [`prop_oneof!`],
//! `Just`, `any`, and the collection / char / bits / sample strategy
//! modules. Generation is deterministic (fixed seed per test). There is
//! no shrinking: a failing case panics immediately with the assertion
//! message — acceptable for CI, where the fixed seed makes every failure
//! reproducible.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG, runner, and case-level error plumbing.

    /// Per-block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case is skipped, not failed.
        Reject(String),
        /// `prop_assert!`-style failure: the test fails.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator every test block starts from.
        pub fn deterministic() -> Self {
            TestRng { state: 0x9D67_36A1_C432_81A7 }
        }

        /// A generator seeded with `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below() requires a non-zero bound");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Minimal runner: owns the RNG that [`new_tree`] draws from.
    ///
    /// [`new_tree`]: crate::strategy::Strategy::new_tree
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with the fixed deterministic seed.
        pub fn deterministic() -> Self {
            TestRunner { rng: TestRng::deterministic() }
        }

        /// The underlying generator.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::sync::Arc;

    use crate::test_runner::{TestRng, TestRunner};

    /// A generated value frozen for inspection. Unlike real proptest
    /// there is no simplify/complicate: the tree is a snapshot.
    pub trait ValueTree {
        /// The value type.
        type Value;
        /// The current (only) value of this tree.
        fn current(&self) -> Self::Value;
    }

    /// The snapshot returned by [`Strategy::new_tree`].
    #[derive(Debug, Clone)]
    pub struct Snapshot<T>(pub T);

    impl<T: Clone> ValueTree for Snapshot<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Draws one value wrapped in a [`ValueTree`] snapshot.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Snapshot<Self::Value>, String> {
            Ok(Snapshot(self.generate(runner.rng())))
        }

        /// Applies `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then generates from the strategy `f`
        /// returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Retains only values satisfying `pred`, retrying internally.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), pred }
        }

        /// Builds recursive values: `recurse` receives a strategy for the
        /// previous level and returns the next level; nesting is bounded
        /// by `depth` levels above the leaf (`self`). The `_desired_size`
        /// and `_expected_branch_size` hints are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(level.clone()).boxed();
                // At each level, lean toward recursion so trees of the
                // full permitted depth actually occur.
                level = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            level
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence);
        }
    }

    /// Weighted choice between strategies of one value type — the
    /// engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union of `(weight, strategy)` alternatives.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (weight, strat) in &self.options {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&'static str` strategies: a simplified regex of the form
    /// `[class]{m,n}` (character class with ranges and literals, bounded
    /// repetition). This covers every pattern used in this workspace.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_simple_regex(self);
            let len = lo + rng.below(hi - lo + 1);
            (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect()
        }
    }

    fn unsupported(pattern: &str) -> ! {
        panic!("unsupported regex strategy {pattern:?}: only `[class]{{m,n}}` is implemented");
    }

    fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern.strip_prefix('[').unwrap_or_else(|| unsupported(pattern));
        let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported(pattern));
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| unsupported(pattern));
        let parse_count =
            |s: &str| -> usize { s.trim().parse().unwrap_or_else(|_| unsupported(pattern)) };
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (parse_count(a), parse_count(b)),
            None => {
                let n = parse_count(counts);
                (n, n)
            }
        };
        assert!(lo <= hi, "bad repetition in regex strategy {pattern:?}");
        let chars: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                assert!(a <= b, "bad class range in regex strategy {pattern:?}");
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty class in regex strategy {pattern:?}");
        (alphabet, lo, hi)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn regex_strategies_cover_class_and_counts() {
            let mut rng = TestRng::deterministic();
            for _ in 0..200 {
                let s = "[a-z0-9 .@-]{1,30}".generate(&mut rng);
                assert!((1..=30).contains(&s.chars().count()), "{s:?}");
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " .@-".contains(c)));
                let t = "[a-z]{0,10}".generate(&mut rng);
                assert!(t.chars().count() <= 10);
            }
        }

        #[test]
        fn union_respects_weights() {
            let u = Union::new(vec![(1, Just(0u8).boxed()), (9, Just(1u8).boxed())]);
            let mut rng = TestRng::deterministic();
            let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
            assert!(ones > 700, "weight-9 arm drawn only {ones}/1000 times");
        }

        #[test]
        fn recursive_strategies_terminate() {
            #[derive(Clone, Debug)]
            enum Tree {
                Leaf,
                Node(Box<Tree>, Box<Tree>),
            }
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf => 0,
                    Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
                }
            }
            let strat = Just(Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
            let mut rng = TestRng::deterministic();
            let max = (0..500).map(|_| depth(&strat.generate(&mut rng))).max().unwrap();
            assert!(max <= 3, "depth bound violated: {max}");
            assert!(max >= 2, "recursion never fired");
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// That strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Strategy backing [`any`] for primitives.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    /// Strategy for `Option<T>`: `None` one time in four.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyOption<S>(S);

    impl<S: Strategy> Strategy for AnyOption<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        type Strategy = AnyOption<T::Strategy>;
        fn arbitrary() -> Self::Strategy {
            AnyOption(T::arbitrary())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod char {
    //! Character strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from the inclusive `[lo, hi]` scalar-value range.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo, hi }
    }

    /// See [`range`].
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: char,
        hi: char,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.lo as u32, self.hi as u32);
            // Rejection-sample past the surrogate gap.
            loop {
                let v = lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod bits {
    //! Bit-oriented strategies.

    /// `u8` bit patterns.
    pub mod u8 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct AnyU8;

        /// All 8-bit patterns, uniformly.
        pub const ANY: AnyU8 = AnyU8;

        impl Strategy for AnyU8 {
            type Value = u8;
            fn generate(&self, rng: &mut TestRng) -> u8 {
                rng.next_u64() as u8
            }
        }
    }
}

pub mod sample {
    //! Sampling strategies: `select` and `Index`.

    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed option list (cloned out of `options`).
    pub fn select<T: Clone>(options: &[T]) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options: options.to_vec() }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// A positional pick applicable to any non-empty collection length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// This pick reduced modulo `len`.
        ///
        /// # Panics
        /// If `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index() requires a non-empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy backing `any::<Index>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyIndex;
        fn arbitrary() -> Self::Strategy {
            AnyIndex
        }
    }
}

/// The `prop::` alias used inside `proptest!` bodies
/// (`any::<prop::sample::Index>()`).
pub mod prop {
    pub use crate::sample;
}

pub mod prelude {
    //! The standard glob import.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let strategies = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).saturating_add(1_000) {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases,
                    );
                }
                let generated = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let ($($pat,)+) = generated;
                    #[allow(clippy::redundant_closure_call)]
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed (case {}):\n{}", stringify!($name), accepted, msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
            left, right, format!($($fmt)*),
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left,
        );
    }};
}

/// Skips (does not fail) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_values_respect_strategies(
            n in 3usize..17,
            v in crate::collection::vec(0u8..4, 1..5),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert!(pick.index(n) < n);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_cases_panic_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn inner(x in 0u8..4) {
                    prop_assert!(x > 100, "x was only {}", x);
                }
            }
            inner();
        });
        let err = result.expect_err("expected a panic");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("x was only"), "{msg}");
    }

    #[test]
    fn new_tree_snapshots_values() {
        use crate::strategy::{Just, Strategy, ValueTree};
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let tree = Just(41u8).prop_map(|x| x + 1).new_tree(&mut runner).unwrap();
        assert_eq!(tree.current(), 42);
    }
}
