#!/usr/bin/env bash
# Grep-gate: no `.unwrap()` in non-test library code of bschema-core and
# bschema-directory.
#
# A panic on malformed input is a crash-consistency bug: it tears down a
# ManagedDirectory mid-operation and turns a recoverable error into a
# poisoned state (see DESIGN.md §10). Library code must return a typed
# error instead. Exempt: comment/doc lines, and test modules — this repo
# keeps exactly one `#[cfg(test)]` marker per file, at the start of the
# trailing tests module, so everything from that line onward is test code.
#
# `.unwrap_or_else(...)` / `.unwrap_or_default()` are fine (non-panicking)
# and do not match the `.unwrap()` pattern below.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for f in $(find crates/core/src crates/directory/src -name '*.rs' | sort); do
    hits=$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /\.unwrap\(\)/ && $0 !~ /^[[:space:]]*\/\// { print FILENAME ":" FNR ": " $0 }
    ' "$f")
    if [ -n "$hits" ]; then
        echo "$hits"
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "error: .unwrap() in non-test code of crates/core or crates/directory;" >&2
    echo "       return a typed error instead (DESIGN.md §10)" >&2
fi
exit "$status"
