//! # bschema-workload
//!
//! Synthetic workload generators for the bounding-schemas reproduction.
//! The paper (EDBT 2000) reports no datasets, so the benchmarks use
//! organisation-shaped directories, randomized schemas, and randomized
//! update transactions generated here — all seeded for reproducibility.
//!
//! * [`org`] — corporate white-pages directories of any size, conforming to
//!   the paper's Figures 2–3 schema, with optional injected violations;
//! * [`schema_gen`] — random bounding-schemas: a consistent family, an
//!   inconsistent family (planted cycles/contradictions), and an
//!   unconstrained family for consistency-checker benchmarking;
//! * [`tx_gen`] — random legality-preserving and violating update
//!   transactions over generated directories;
//! * [`chaos`] — the fault-injection differential driver: replays a
//!   scripted workload under every injectable fault and asserts the
//!   crash-consistency invariants of
//!   [`ManagedDirectory`](bschema_core::managed::ManagedDirectory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod ldif_workload;
pub mod org;
pub mod schema_gen;
pub mod tx_gen;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use ldif_workload::{
    multi_org_base, spans_multiple_subtrees, GeneratedTx, LdifWorkload, LdifWorkloadParams,
};
pub use org::{OrgGenerator, OrgParams};
pub use schema_gen::{SchemaGenerator, SchemaParams};
pub use tx_gen::{TxGenerator, TxParams};
