//! Random update-transaction generator over generated org directories.

use bschema_core::updates::Transaction;
use bschema_directory::{DirectoryInstance, Entry, EntryId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::org::GeneratedOrg;

/// Parameters for [`TxGenerator`].
#[derive(Debug, Clone)]
pub struct TxParams {
    /// Entries per inserted subtree.
    pub subtree_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TxParams {
    fn default() -> Self {
        TxParams { subtree_size: 5, seed: 99 }
    }
}

/// The generator.
#[derive(Debug)]
pub struct TxGenerator {
    params: TxParams,
    rng: StdRng,
    counter: usize,
}

impl TxGenerator {
    /// A generator with the given parameters.
    pub fn new(params: TxParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        TxGenerator { params, rng, counter: 0 }
    }

    fn next_uid(&mut self) -> String {
        self.counter += 1;
        format!("tx{}", self.counter)
    }

    fn person(&mut self) -> Entry {
        let uid = self.next_uid();
        Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", uid.clone())
            .attr("name", format!("name of {uid}"))
            .build()
    }

    fn org_unit(&mut self) -> Entry {
        let ou = self.next_uid();
        Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", ou).build()
    }

    /// A legality-preserving insertion: a new orgUnit subtree (with persons
    /// inside) under a random existing unit.
    pub fn legal_insertion(&mut self, org: &GeneratedOrg) -> Transaction {
        let mut tx = Transaction::new();
        let parent = org.units[self.rng.random_range(0..org.units.len())];
        let unit_entry = self.org_unit();
        let unit_op = tx.insert_under(parent, unit_entry);
        for _ in 0..self.params.subtree_size.saturating_sub(1).max(1) {
            let p = self.person();
            tx.insert_under_new(unit_op, p);
        }
        tx
    }

    /// A legality-preserving deletion: one person whose parent unit keeps at
    /// least one other person child. Returns `None` when no such person
    /// exists.
    pub fn legal_deletion(
        &mut self,
        org: &GeneratedOrg,
        dir: &DirectoryInstance,
    ) -> Option<Transaction> {
        let start = self.rng.random_range(0..org.persons.len().max(1));
        let is_person = |id: EntryId| dir.entry(id).is_some_and(|e| e.has_class("person"));
        for offset in 0..org.persons.len() {
            let candidate = org.persons[(start + offset) % org.persons.len()];
            if !dir.contains(candidate) || !dir.forest().is_leaf(candidate) {
                continue;
            }
            let Some(parent) = dir.forest().parent(candidate) else {
                continue;
            };
            let sibling_persons =
                dir.forest().children(parent).filter(|&c| c != candidate && is_person(c)).count();
            if sibling_persons >= 1 {
                let mut tx = Transaction::new();
                tx.delete(candidate);
                return Some(tx);
            }
        }
        None
    }

    /// A legality-violating insertion: an orgUnit under a random person
    /// (violates `person ↛ch top` and `orgUnit →pa orgGroup`).
    pub fn violating_insertion(
        &mut self,
        org: &GeneratedOrg,
        dir: &DirectoryInstance,
    ) -> Option<Transaction> {
        let start = self.rng.random_range(0..org.persons.len().max(1));
        for offset in 0..org.persons.len() {
            let victim = org.persons[(start + offset) % org.persons.len()];
            if dir.contains(victim) {
                let mut tx = Transaction::new();
                let unit = self.org_unit();
                tx.insert_under(victim, unit);
                return Some(tx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::{OrgGenerator, OrgParams};
    use bschema_core::legality::LegalityChecker;
    use bschema_core::paper::white_pages_schema;
    use bschema_core::updates::apply_and_check;

    #[test]
    fn legal_workloads_stay_legal() {
        let schema = white_pages_schema();
        let mut org = OrgGenerator::new(OrgParams::sized(300)).generate();
        let mut gen = TxGenerator::new(TxParams::default());
        let checker = LegalityChecker::new(&schema);
        for round in 0..10 {
            let tx = if round % 2 == 0 {
                gen.legal_insertion(&org)
            } else {
                match gen.legal_deletion(&org, &org.dir) {
                    Some(tx) => tx,
                    None => continue,
                }
            };
            let applied = apply_and_check(&schema, &mut org.dir, &tx).unwrap();
            assert!(applied.report.is_legal(), "round {round}: {}", applied.report);
            assert!(checker.check(&org.dir).is_legal(), "round {round}");
        }
    }

    #[test]
    fn violating_insertions_violate() {
        let schema = white_pages_schema();
        let mut org = OrgGenerator::new(OrgParams::sized(200)).generate();
        let mut gen = TxGenerator::new(TxParams::default());
        let tx = gen.violating_insertion(&org, &org.dir).unwrap();
        let applied = apply_and_check(&schema, &mut org.dir, &tx).unwrap();
        assert!(!applied.report.is_legal());
    }

    #[test]
    fn generation_is_seeded() {
        let org = OrgGenerator::new(OrgParams::sized(200)).generate();
        let mut a = TxGenerator::new(TxParams::default());
        let mut b = TxGenerator::new(TxParams::default());
        let ta = a.legal_insertion(&org);
        let tb = b.legal_insertion(&org);
        assert_eq!(ta.len(), tb.len());
    }
}
