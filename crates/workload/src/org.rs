//! Organisation-shaped directory generator.
//!
//! Produces corporate white-pages instances of any size that are legal
//! w.r.t. the paper's Figures 2–3 schema
//! ([`bschema_core::paper::white_pages_schema`]): one organization root, a
//! tree of orgUnits, and person entries (staff members / researchers, with
//! heterogeneous optional attributes — the §1 motivation: "person john may
//! have no e-mail address, jack a single one, mary multiple"). Violations
//! can be injected at a configurable rate for checker benchmarks.

use bschema_directory::{DirectoryInstance, Entry, EntryId, Rdn};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RDN a generated entry goes by: its naming attribute is unique by
/// construction (`o=acme`, `ou=unit<N>`, `uid=u<N>`), so generated
/// instances are fully DN-addressable — a requirement for serving them
/// through `bschema-server`.
fn rdn_of(entry: &Entry) -> Rdn {
    for attr in ["o", "ou", "uid"] {
        if let Some(value) = entry.first_value(attr) {
            return Rdn::single(attr, value);
        }
    }
    unreachable!("every generated entry has a naming attribute")
}

/// Parameters for [`OrgGenerator`].
#[derive(Debug, Clone)]
pub struct OrgParams {
    /// Approximate number of entries to generate (exact count may exceed by
    /// the final unit's fill).
    pub target_entries: usize,
    /// Children per orgUnit that are themselves orgUnits, on average.
    pub unit_fanout: usize,
    /// Person entries per leaf orgUnit, on average.
    pub persons_per_unit: usize,
    /// Probability a person is a researcher (vs staffMember).
    pub researcher_ratio: f64,
    /// Probability a person carries the `online` auxiliary with mail
    /// values.
    pub online_ratio: f64,
    /// Number of entries to corrupt (removing a required attribute or
    /// planting a forbidden child) — 0 for legal instances.
    pub violations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrgParams {
    fn default() -> Self {
        OrgParams {
            target_entries: 1000,
            unit_fanout: 4,
            persons_per_unit: 8,
            researcher_ratio: 0.3,
            online_ratio: 0.5,
            violations: 0,
            seed: 42,
        }
    }
}

impl OrgParams {
    /// Convenience: default parameters scaled to `n` entries.
    pub fn sized(n: usize) -> Self {
        OrgParams { target_entries: n, ..OrgParams::default() }
    }
}

/// The generator.
#[derive(Debug)]
pub struct OrgGenerator {
    params: OrgParams,
    rng: StdRng,
    counter: usize,
}

impl OrgGenerator {
    /// A generator with the given parameters.
    pub fn new(params: OrgParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        OrgGenerator { params, rng, counter: 0 }
    }

    fn next_id(&mut self) -> usize {
        self.counter += 1;
        self.counter
    }

    fn person(&mut self) -> Entry {
        let uid = format!("u{}", self.next_id());
        let researcher = self.rng.random_bool(self.params.researcher_ratio);
        let online = self.rng.random_bool(self.params.online_ratio);
        let mut builder = Entry::builder()
            .class(if researcher { "researcher" } else { "staffMember" })
            .class("person")
            .class("top")
            .attr("uid", uid.clone())
            .attr("name", format!("name of {uid}"));
        if online {
            builder = builder.class("online").attr("mail", format!("{uid}@example.com"));
            // Heterogeneity: some people have several addresses.
            if self.rng.random_bool(0.3) {
                builder = builder.attr("mail", format!("{uid}@research.example.com"));
            }
        }
        if self.rng.random_bool(0.4) {
            builder =
                builder.attr("telephoneNumber", format!("+1 973 360 {:04}", self.counter % 10_000));
        }
        builder.build()
    }

    fn org_unit(&mut self) -> Entry {
        let ou = format!("unit{}", self.next_id());
        Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", ou).build()
    }

    /// Generates the instance (prepared) and the ids of all person entries.
    pub fn generate(mut self) -> GeneratedOrg {
        let mut dir = DirectoryInstance::white_pages();
        let root_entry = Entry::builder()
            .classes(["organization", "orgGroup", "online", "top"])
            .attr("o", "acme")
            .attr("uri", "http://www.example.com/")
            .build();
        let org = dir
            .add_named_root(rdn_of(&root_entry), root_entry)
            .expect("fresh instance has no roots");
        let mut units: Vec<EntryId> = Vec::new();
        let mut persons: Vec<EntryId> = Vec::new();

        // First unit directly under the organization.
        let first_unit = {
            let u = self.org_unit();
            dir.add_named_child(org, rdn_of(&u), u).expect("org exists")
        };
        units.push(first_unit);

        // Grow breadth-first until the target size is reached: every unit
        // gets persons (satisfying orgGroup ⇒⇒ person) and possibly child
        // units.
        let mut frontier = vec![first_unit];
        while dir.len() < self.params.target_entries {
            let unit = match frontier.pop() {
                Some(u) => u,
                None => {
                    // All leaves filled; widen the last unit.
                    *units.last().expect("at least one unit")
                }
            };
            let persons_here =
                1 + self.rng.random_range(0..self.params.persons_per_unit.max(1) * 2);
            for _ in 0..persons_here {
                let p = self.person();
                let id = dir.add_named_child(unit, rdn_of(&p), p).expect("unit exists");
                persons.push(id);
                if dir.len() >= self.params.target_entries {
                    break;
                }
            }
            if dir.len() >= self.params.target_entries {
                break;
            }
            let subunits = self.rng.random_range(0..self.params.unit_fanout.max(1) + 1);
            for _ in 0..subunits {
                let u = self.org_unit();
                let id = dir.add_named_child(unit, rdn_of(&u), u).expect("unit exists");
                units.push(id);
                frontier.push(id);
                // Every orgUnit needs a person descendant: give it one now
                // so the instance stays legal even if the loop stops here.
                let p = self.person();
                let pid = dir.add_named_child(id, rdn_of(&p), p).expect("unit exists");
                persons.push(pid);
                if dir.len() >= self.params.target_entries {
                    break;
                }
            }
        }

        // Inject violations if requested.
        let mut injected = 0;
        while injected < self.params.violations && !persons.is_empty() {
            let victim = persons[self.rng.random_range(0..persons.len())];
            if self.rng.random_bool(0.5) {
                // Content violation: drop a required attribute.
                if let Some(e) = dir.entry_mut(victim) {
                    if e.remove_attribute("name") {
                        injected += 1;
                        continue;
                    }
                }
            }
            // Structure violation: give a person a child (person ↛ch top).
            let extra = self.person();
            if dir.add_named_child(victim, rdn_of(&extra), extra).is_ok() {
                injected += 1;
            }
        }

        dir.prepare();
        GeneratedOrg { dir, org, units, persons }
    }
}

/// A generated organisation directory with handles for workloads.
#[derive(Debug)]
pub struct GeneratedOrg {
    /// The prepared instance.
    pub dir: DirectoryInstance,
    /// The organization root.
    pub org: EntryId,
    /// All orgUnit entries.
    pub units: Vec<EntryId>,
    /// All person entries.
    pub persons: Vec<EntryId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_core::legality::LegalityChecker;
    use bschema_core::paper::white_pages_schema;

    #[test]
    fn generated_instances_are_legal() {
        let schema = white_pages_schema();
        for (seed, size) in [(1u64, 50usize), (2, 500), (3, 2000)] {
            let gen =
                OrgGenerator::new(OrgParams { seed, target_entries: size, ..OrgParams::default() });
            let out = gen.generate();
            assert!(out.dir.len() >= size, "size {} < target {size}", out.dir.len());
            let report = LegalityChecker::new(&schema).check(&out.dir);
            assert!(report.is_legal(), "seed {seed} size {size}:\n{report}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = OrgGenerator::new(OrgParams::sized(300)).generate();
        let b = OrgGenerator::new(OrgParams::sized(300)).generate();
        assert_eq!(a.dir.len(), b.dir.len());
        assert_eq!(a.persons.len(), b.persons.len());
        let uids = |d: &DirectoryInstance| -> Vec<String> {
            d.iter().filter_map(|(_, e)| e.first_value("uid").map(str::to_owned)).collect()
        };
        assert_eq!(uids(&a.dir), uids(&b.dir));
    }

    #[test]
    fn violations_are_injected() {
        let schema = white_pages_schema();
        let gen = OrgGenerator::new(OrgParams {
            target_entries: 200,
            violations: 5,
            ..OrgParams::default()
        });
        let out = gen.generate();
        let report = LegalityChecker::new(&schema).check(&out.dir);
        assert!(!report.is_legal());
        assert!(report.len() >= 5, "expected ≥5 violations, got {}", report.len());
    }

    #[test]
    fn heterogeneity_is_present() {
        let out = OrgGenerator::new(OrgParams::sized(1000)).generate();
        let mail_counts: Vec<usize> =
            out.persons.iter().map(|&p| out.dir.entry(p).unwrap().values("mail").len()).collect();
        assert!(mail_counts.contains(&0), "some person without mail");
        assert!(mail_counts.contains(&1), "some person with one mail");
        assert!(mail_counts.iter().any(|&c| c >= 2), "some person with several mails");
    }
}
