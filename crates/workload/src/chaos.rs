//! Chaos differential driver: deterministic fault injection over a
//! scripted [`ManagedDirectory`] workload.
//!
//! The driver runs one fixed, seeded workload (generated org + a mix of
//! legal and violating transactions) many times: once with a
//! [`FaultPlan::observer`] to census every injectable probe event, then
//! once per event index with [`FaultPlan::fail_nth`] so every site that
//! fired in the fault-free run gets exactly one injected panic. Every
//! run asserts the atomicity contract of Theorem 4.1 as hardened by the
//! crash-consistency layer:
//!
//! * a transaction that fails or panics leaves the instance
//!   **byte-identical** (by [`canonical_bytes`]) to its pre-transaction
//!   snapshot, and `is_legal()` still holds;
//! * replaying the write-ahead journal from the base instance reproduces
//!   exactly the committed transactions — the recovered directory equals
//!   the live one byte for byte;
//! * recovery from a journal cut at an arbitrary byte (a simulated
//!   crash) yields the committed prefix.
//!
//! Panics on the first violated invariant, so it doubles as a test body
//! and a CLI-driveable chaos harness.
//!
//! [`canonical_bytes`]: bschema_directory::DirectoryInstance::canonical_bytes

use std::collections::BTreeMap;
use std::sync::Arc;

use bschema_core::journal::{Journal, JournalWriter};
use bschema_core::legality::LegalityOptions;
use bschema_core::managed::{ManagedDirectory, ManagedError};
use bschema_core::paper::white_pages_schema;
use bschema_core::schema::DirectorySchema;
use bschema_core::updates::Transaction;
use bschema_directory::DirectoryInstance;
use bschema_faults::FaultPlan;

use crate::org::{OrgGenerator, OrgParams};
use crate::tx_gen::{TxGenerator, TxParams};

/// Parameters for [`run_chaos`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the generated org, the transaction mix, and crash cuts.
    pub seed: u64,
    /// Approximate entry count of the base directory.
    pub org_size: usize,
    /// Number of transactions in the scripted workload.
    pub rounds: usize,
    /// Legality engine to run under fault injection (sequential or
    /// parallel — parallel additionally exercises worker-thread panic
    /// recovery and sequential retry).
    pub options: LegalityOptions,
    /// Number of simulated journal crash cuts.
    pub crash_cuts: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            org_size: 48,
            rounds: 6,
            options: LegalityOptions::sequential(),
            crash_cuts: 16,
        }
    }
}

/// A fixed workload: schema, base instance, and a pre-generated
/// transaction script (so every chaos run replays the same inputs).
#[derive(Debug, Clone)]
pub struct ChaosWorkload {
    /// The schema every run validates against.
    pub schema: DirectorySchema,
    /// The base instance every run starts from.
    pub base: DirectoryInstance,
    /// The transactions, in application order. A mix of legal
    /// insertions, legal deletions, and schema-violating insertions.
    pub txs: Vec<Transaction>,
}

/// Builds the deterministic workload for `cfg`. Transactions are
/// generated against a fault-free reference evolution so deletions name
/// live targets; chaos runs then replay them verbatim.
pub fn scripted_workload(cfg: &ChaosConfig) -> ChaosWorkload {
    let schema = white_pages_schema();
    let org =
        OrgGenerator::new(OrgParams { seed: cfg.seed ^ 0x5eed, ..OrgParams::sized(cfg.org_size) })
            .generate();
    let base = org.dir.clone();
    let mut reference = ManagedDirectory::with_instance(schema.clone(), base.clone())
        .expect("generated org must be consistent and legal");
    let mut tx_gen = TxGenerator::new(TxParams { seed: cfg.seed, ..TxParams::default() });
    let mut txs = Vec::new();
    for round in 0..cfg.rounds {
        let tx = match round % 3 {
            1 => tx_gen
                .legal_deletion(&org, reference.instance())
                .unwrap_or_else(|| tx_gen.legal_insertion(&org)),
            2 => tx_gen
                .violating_insertion(&org, reference.instance())
                .unwrap_or_else(|| tx_gen.legal_insertion(&org)),
            _ => tx_gen.legal_insertion(&org),
        };
        let _ = reference.apply(&tx);
        txs.push(tx);
    }
    ChaosWorkload { schema, base, txs }
}

/// Outcome of one workload run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Transactions committed.
    pub applied: usize,
    /// Transactions rejected (illegal / invalid) and rolled back.
    pub rejected: usize,
    /// Transactions aborted by an injected panic and rolled back.
    pub panicked: usize,
    /// Canonical bytes of the final instance.
    pub final_state: Vec<u8>,
    /// The accumulated journal text ("disk" contents).
    pub journal_text: String,
}

/// Runs the workload once with `plan` attached as the probe, asserting
/// the atomicity and recovery invariants at every step. Panics with a
/// diagnostic on the first violation.
pub fn run_once(w: &ChaosWorkload, options: LegalityOptions, plan: &Arc<FaultPlan>) -> RunStats {
    let mut managed = ManagedDirectory::with_instance(w.schema.clone(), w.base.clone())
        .expect("chaos base instance is legal")
        .with_options(options)
        .with_probe(plan.clone());
    let mut writer = JournalWriter::new();
    let mut journal_text = String::new();
    let mut stats = RunStats {
        applied: 0,
        rejected: 0,
        panicked: 0,
        final_state: Vec::new(),
        journal_text: String::new(),
    };

    for (i, tx) in w.txs.iter().enumerate() {
        let before = managed.instance().canonical_bytes();
        let result = managed.apply_journaled(tx, &mut writer);
        journal_text.push_str(&writer.take_pending());
        match result {
            Ok(()) => {
                assert!(managed.is_legal(), "tx {i}: committed transaction left illegal state");
                stats.applied += 1;
            }
            Err(ManagedError::Panicked { reason }) => {
                assert_eq!(
                    managed.instance().canonical_bytes(),
                    before,
                    "tx {i}: panicked transaction ({reason}) was not atomic"
                );
                assert!(managed.is_legal(), "tx {i}: panicked transaction poisoned the state");
                stats.panicked += 1;
            }
            Err(e) => {
                assert_eq!(
                    managed.instance().canonical_bytes(),
                    before,
                    "tx {i}: failed transaction ({e}) was not atomic"
                );
                assert!(managed.is_legal(), "tx {i}: failed transaction poisoned the state");
                stats.rejected += 1;
            }
        }
    }

    // Recovery differential: replaying the journal (probe-free, so no
    // faults) from the base must land on the live state, committed
    // transactions only.
    let journal = Journal::parse(&journal_text);
    assert!(!journal.truncated, "journal written by an uncrashed run must parse intact");
    let (recovered, report) = ManagedDirectory::recover(w.schema.clone(), w.base.clone(), &journal)
        .expect("recovery from an intact journal succeeds");
    assert_eq!(report.replayed, stats.applied, "recovery must replay exactly the committed txs");
    assert_eq!(
        recovered.instance().canonical_bytes(),
        managed.instance().canonical_bytes(),
        "journal recovery must reproduce the live directory byte for byte"
    );

    stats.final_state = managed.instance().canonical_bytes();
    stats.journal_text = journal_text;
    stats
}

/// Aggregate result of a chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Probe-site census from the fault-free observer run: site name →
    /// times hit. Every one of these sites was subsequently targeted.
    pub sites: BTreeMap<String, u64>,
    /// Total injectable events in the fault-free run.
    pub events: u64,
    /// Workload runs executed (1 observer + one per event).
    pub runs: usize,
    /// Faults actually injected across all runs.
    pub injected: u64,
    /// Runs where the fault was absorbed (graceful degradation or
    /// post-verdict probe fault): no transaction aborted and the final
    /// state equals the fault-free baseline.
    pub survived: u64,
    /// Transactions aborted by an injected panic (all verified atomic).
    pub aborted_txs: usize,
    /// Simulated journal crash cuts recovered from.
    pub crash_cuts: usize,
}

/// Runs the full chaos campaign for `cfg`: observer census, one
/// fail-nth run per event, and simulated journal crashes. Panics on the
/// first violated invariant; returns aggregate statistics otherwise.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    bschema_faults::silence_injected_panics();
    let w = scripted_workload(cfg);

    let observer = Arc::new(FaultPlan::observer());
    let baseline = run_once(&w, cfg.options, &observer);
    let events = observer.events();
    assert!(events > 0, "observer run must hit probe sites");

    let mut report = ChaosReport {
        sites: observer.sites(),
        events,
        runs: 1,
        injected: 0,
        survived: 0,
        aborted_txs: 0,
        crash_cuts: 0,
    };

    for event in 0..events {
        let plan = Arc::new(FaultPlan::fail_nth(event));
        let stats = run_once(&w, cfg.options, &plan);
        report.runs += 1;
        report.injected += plan.injected();
        report.aborted_txs += stats.panicked;
        if stats.panicked == 0 && stats.final_state == baseline.final_state {
            report.survived += 1;
        }
    }

    // Simulated crashes: cut the baseline journal at seeded byte offsets
    // and recover; the result must be a legal directory holding exactly
    // the committed prefix.
    for i in 0..cfg.crash_cuts {
        let len = baseline.journal_text.len();
        let mut cut =
            bschema_faults::nth_from_seed(cfg.seed ^ ((i as u64) << 8), len as u64 + 1) as usize;
        while cut > 0 && !baseline.journal_text.is_char_boundary(cut) {
            cut -= 1;
        }
        let journal = Journal::parse(&baseline.journal_text[..cut]);
        let committed = journal.committed().count();
        let (recovered, rep) =
            ManagedDirectory::recover(w.schema.clone(), w.base.clone(), &journal)
                .expect("recovery from a truncated journal succeeds");
        assert_eq!(rep.replayed, committed, "cut at byte {cut}: replay count mismatch");
        assert!(recovered.is_legal(), "cut at byte {cut}: recovered directory is illegal");
        report.crash_cuts += 1;
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_workload_is_deterministic() {
        let cfg = ChaosConfig { org_size: 30, rounds: 4, ..ChaosConfig::default() };
        let a = scripted_workload(&cfg);
        let b = scripted_workload(&cfg);
        assert_eq!(a.txs.len(), b.txs.len());
        assert_eq!(a.base.canonical_bytes(), b.base.canonical_bytes());
        for (ta, tb) in a.txs.iter().zip(&b.txs) {
            assert_eq!(format!("{ta:?}"), format!("{tb:?}"));
        }
    }

    #[test]
    fn fault_free_run_commits_and_recovers() {
        let cfg = ChaosConfig { org_size: 30, rounds: 4, ..ChaosConfig::default() };
        let w = scripted_workload(&cfg);
        let plan = Arc::new(FaultPlan::observer());
        let stats = run_once(&w, cfg.options, &plan);
        assert!(stats.applied >= 2, "workload must commit transactions: {stats:?}");
        assert!(stats.rejected >= 1, "workload must include a rejected transaction: {stats:?}");
        assert_eq!(stats.panicked, 0);
        assert!(plan.events() > 0);
    }
}
