//! Multi-organization LDIF transaction workloads for the
//! sharded≡unsharded differential oracle.
//!
//! [`multi_org_base`] builds one instance holding several generated
//! organizations — several top-level subtrees, so a sharded engine
//! spreads them across shards. [`LdifWorkload::generate`] then derives a
//! deterministic stream of LDIF-text transactions against that base:
//! legal single-subtree inserts and deletes, legal cross-subtree
//! transactions (touching two or more organizations, including brand-new
//! top-level organizations), and a spread of illegal transactions
//! (content violations, structure violations, witness-removing deletes,
//! undecodable deletes). Both engines replay the *same LDIF text*; the
//! oracle asserts identical verdicts and byte-identical final states.

use bschema_directory::{DirectoryInstance, Dn, Rdn};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::org::{OrgGenerator, OrgParams};

/// Parameters for [`multi_org_base`] and [`LdifWorkload`].
#[derive(Debug, Clone)]
pub struct LdifWorkloadParams {
    /// Number of organizations (top-level subtrees) in the base.
    pub orgs: usize,
    /// Approximate entries per organization.
    pub entries_per_org: usize,
    /// Number of transactions to generate.
    pub transactions: usize,
    /// RNG seed (drives both the base layout and the transaction mix).
    pub seed: u64,
}

impl Default for LdifWorkloadParams {
    fn default() -> Self {
        LdifWorkloadParams { orgs: 6, entries_per_org: 60, transactions: 200, seed: 0xD1FF }
    }
}

/// One generated transaction: raw LDIF text plus the generator's intent.
#[derive(Debug, Clone)]
pub struct GeneratedTx {
    /// The LDIF transaction body (blank-line-separated records).
    pub ldif: String,
    /// Whether the records span more than one top-level subtree (a
    /// cross-shard transaction on any shard count > 1 where the roots
    /// hash apart).
    pub multi_subtree: bool,
    /// Whether the generator built this to commit (`true`) or to be
    /// rejected (`false`). The oracle's ground truth is engine-vs-engine
    /// agreement, not this flag — it exists so tests can assert the mix
    /// actually exercises both outcomes.
    pub expect_commit: bool,
    /// A short label for the generation rule, for failure diagnostics.
    pub kind: &'static str,
}

/// Builds one instance with `orgs` generated organizations, each a
/// top-level subtree `o=org<i>` (deterministic in `seed`).
pub fn multi_org_base(orgs: usize, entries_per_org: usize, seed: u64) -> DirectoryInstance {
    let mut base = DirectoryInstance::white_pages();
    for i in 0..orgs.max(1) {
        let generated = OrgGenerator::new(OrgParams {
            target_entries: entries_per_org,
            seed: seed ^ (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
            ..OrgParams::default()
        })
        .generate();
        let mut dir = generated.dir;
        // Rename the generated `o=acme` root to a unique org name so the
        // subtrees coexist as distinct top-level subtrees.
        let name = format!("org{i}");
        let root = generated.org;
        if let Some(entry) = dir.entry_mut(root) {
            entry.remove_attribute("o");
            entry.add_value("o", &name);
        }
        dir.set_rdn(root, Rdn::single("o", name)).expect("root rename");
        dir.prepare();
        base.graft_subtree(&dir, root).expect("org roots are distinct");
    }
    base.prepare();
    base
}

/// Book-keeping for one unit: its DN string, its live person DNs, and
/// how many child units hang under it (a unit keeps a `de person`
/// witness through its sub-units, so only a *leaf* unit's last person
/// is a witness whose removal violates `orgGroup ⇒⇒ person`).
#[derive(Debug)]
struct UnitBook {
    dn: String,
    persons: Vec<String>,
    subunits: usize,
}

/// The workload generator. Tracks a book-keeping mirror of the expected
/// directory state so legal transactions reference live entries and
/// deletions never remove the last `de person` witness (unless built to).
#[derive(Debug)]
pub struct LdifWorkload {
    rng: StdRng,
    /// Per organization: the units (index 0 is a unit directly under the
    /// org root; the org root itself is not a person parent here, which
    /// matches [`OrgGenerator`]'s layout).
    orgs: Vec<Vec<UnitBook>>,
    counter: usize,
}

impl LdifWorkload {
    fn person_ldif(&mut self, parent_dn: &str, with_name: bool) -> (String, String) {
        self.counter += 1;
        let uid = format!("w{}", self.counter);
        let dn = format!("uid={uid},{parent_dn}");
        let mut text = format!(
            "dn: {dn}\nobjectClass: {}\nobjectClass: person\nobjectClass: top\nuid: {uid}\n",
            if self.rng.random_bool(0.3) { "researcher" } else { "staffMember" }
        );
        if with_name {
            text.push_str(&format!("name: name of {uid}\n"));
        }
        (dn, text)
    }

    fn unit_ldif(&mut self, parent_dn: &str) -> (String, String) {
        self.counter += 1;
        let ou = format!("wunit{}", self.counter);
        let dn = format!("ou={ou},{parent_dn}");
        let text = format!(
            "dn: {dn}\nobjectClass: orgUnit\nobjectClass: orgGroup\nobjectClass: top\nou: {ou}\n"
        );
        (dn, text)
    }

    fn org_ldif(&mut self, name: &str) -> (String, String) {
        let dn = format!("o={name}");
        let text = format!(
            "dn: {dn}\nobjectClass: organization\nobjectClass: orgGroup\nobjectClass: online\nobjectClass: top\no: {name}\nuri: https://{name}.example/\n"
        );
        (dn, text)
    }

    fn pick_org(&mut self) -> usize {
        self.rng.random_range(0..self.orgs.len())
    }

    fn pick_unit(&mut self, org: usize) -> usize {
        self.rng.random_range(0..self.orgs[org].len())
    }

    /// A legal person insert into one subtree; updates book-keeping.
    fn legal_person_insert(&mut self) -> GeneratedTx {
        let org = self.pick_org();
        let unit = self.pick_unit(org);
        let parent = self.orgs[org][unit].dn.clone();
        let (dn, text) = self.person_ldif(&parent, true);
        self.orgs[org][unit].persons.push(dn);
        GeneratedTx { ldif: text, multi_subtree: false, expect_commit: true, kind: "insert" }
    }

    /// A legal unit+person subtree insert; updates book-keeping.
    fn legal_unit_insert(&mut self) -> GeneratedTx {
        let org = self.pick_org();
        let unit = self.pick_unit(org);
        let parent = self.orgs[org][unit].dn.clone();
        let (unit_dn, unit_text) = self.unit_ldif(&parent);
        let (person_dn, person_text) = self.person_ldif(&unit_dn, true);
        self.orgs[org][unit].subunits += 1;
        self.orgs[org].push(UnitBook { dn: unit_dn, persons: vec![person_dn], subunits: 0 });
        GeneratedTx {
            ldif: format!("{unit_text}\n{person_text}"),
            multi_subtree: false,
            expect_commit: true,
            kind: "insert-subtree",
        }
    }

    /// A legal delete of one person whose unit keeps another; falls back
    /// to an insert when no unit has two persons.
    fn legal_delete(&mut self) -> GeneratedTx {
        let start_org = self.pick_org();
        for probe in 0..self.orgs.len() {
            let org = (start_org + probe) % self.orgs.len();
            if let Some(unit) = self.orgs[org].iter().position(|u| u.persons.len() >= 2) {
                let pick = self.rng.random_range(0..self.orgs[org][unit].persons.len());
                let victim = self.orgs[org][unit].persons.remove(pick);
                return GeneratedTx {
                    ldif: format!("dn: {victim}\nchangetype: delete\n"),
                    multi_subtree: false,
                    expect_commit: true,
                    kind: "delete",
                };
            }
        }
        self.legal_person_insert()
    }

    /// A legal transaction touching two distinct organizations.
    fn legal_cross_insert(&mut self) -> GeneratedTx {
        if self.orgs.len() < 2 {
            return self.legal_person_insert();
        }
        let a = self.pick_org();
        let b = (a + 1 + self.rng.random_range(0..self.orgs.len() - 1)) % self.orgs.len();
        let unit_a = self.pick_unit(a);
        let unit_b = self.pick_unit(b);
        let parent_a = self.orgs[a][unit_a].dn.clone();
        let parent_b = self.orgs[b][unit_b].dn.clone();
        let (dn_a, text_a) = self.person_ldif(&parent_a, true);
        let (dn_b, text_b) = self.person_ldif(&parent_b, true);
        self.orgs[a][unit_a].persons.push(dn_a);
        self.orgs[b][unit_b].persons.push(dn_b);
        GeneratedTx {
            ldif: format!("{text_a}\n{text_b}"),
            multi_subtree: true,
            expect_commit: true,
            kind: "cross-insert",
        }
    }

    /// A legal transaction creating a whole new top-level organization
    /// *and* inserting a person into an existing one.
    fn legal_new_org(&mut self) -> GeneratedTx {
        self.counter += 1;
        let name = format!("neworg{}", self.counter);
        let (org_dn, org_text) = self.org_ldif(&name);
        let (unit_dn, unit_text) = self.unit_ldif(&org_dn);
        let (person_dn, person_text) = self.person_ldif(&unit_dn, true);
        let other = self.pick_org();
        let other_unit = self.pick_unit(other);
        let other_parent = self.orgs[other][other_unit].dn.clone();
        let (extra_dn, extra_text) = self.person_ldif(&other_parent, true);
        self.orgs[other][other_unit].persons.push(extra_dn);
        self.orgs.push(vec![UnitBook { dn: unit_dn, persons: vec![person_dn], subunits: 0 }]);
        GeneratedTx {
            ldif: format!("{org_text}\n{unit_text}\n{person_text}\n{extra_text}"),
            multi_subtree: true,
            expect_commit: true,
            kind: "cross-new-org",
        }
    }

    /// A person missing its required `name` attribute (content
    /// violation → rolled back, nothing to book-keep).
    fn violating_nameless_person(&mut self) -> GeneratedTx {
        let org = self.pick_org();
        let unit = self.pick_unit(org);
        let parent = self.orgs[org][unit].dn.clone();
        let (_, text) = self.person_ldif(&parent, false);
        GeneratedTx {
            ldif: text,
            multi_subtree: false,
            expect_commit: false,
            kind: "reject-nameless",
        }
    }

    /// A person with a person child (`person ↛ch top` structure
    /// violation).
    fn violating_person_child(&mut self) -> GeneratedTx {
        let org = self.pick_org();
        let unit = self.pick_unit(org);
        let parent = self.orgs[org][unit].dn.clone();
        let (dn, text) = self.person_ldif(&parent, true);
        let (_, child_text) = self.person_ldif(&dn, true);
        GeneratedTx {
            ldif: format!("{text}\n{child_text}"),
            multi_subtree: false,
            expect_commit: false,
            kind: "reject-person-child",
        }
    }

    /// A unit with no person descendant (`orgGroup ⇒⇒ person` required
    /// relationship violation).
    fn violating_bare_unit(&mut self) -> GeneratedTx {
        let org = self.pick_org();
        let unit = self.pick_unit(org);
        let parent = self.orgs[org][unit].dn.clone();
        let (_, text) = self.unit_ldif(&parent);
        GeneratedTx {
            ldif: text,
            multi_subtree: false,
            expect_commit: false,
            kind: "reject-bare-unit",
        }
    }

    /// A cross-organization transaction whose second half is illegal:
    /// the whole transaction must roll back on both engines, leaving the
    /// legal first half unapplied — the cross-shard atomicity probe.
    fn violating_cross(&mut self) -> GeneratedTx {
        if self.orgs.len() < 2 {
            return self.violating_nameless_person();
        }
        let a = self.pick_org();
        let b = (a + 1 + self.rng.random_range(0..self.orgs.len() - 1)) % self.orgs.len();
        let unit_a = self.pick_unit(a);
        let unit_b = self.pick_unit(b);
        let parent_a = self.orgs[a][unit_a].dn.clone();
        let parent_b = self.orgs[b][unit_b].dn.clone();
        let (_, good) = self.person_ldif(&parent_a, true);
        let (_, bad) = self.person_ldif(&parent_b, false);
        GeneratedTx {
            ldif: format!("{good}\n{bad}"),
            multi_subtree: true,
            expect_commit: false,
            kind: "reject-cross",
        }
    }

    /// A delete that removes a unit's last person — the `de person`
    /// witness — and must roll back. Falls back when every unit is
    /// multi-person.
    fn violating_witness_delete(&mut self) -> GeneratedTx {
        let start_org = self.pick_org();
        for probe in 0..self.orgs.len() {
            let org = (start_org + probe) % self.orgs.len();
            if let Some(unit) =
                self.orgs[org].iter().position(|u| u.persons.len() == 1 && u.subunits == 0)
            {
                let victim = self.orgs[org][unit].persons[0].clone();
                return GeneratedTx {
                    ldif: format!("dn: {victim}\nchangetype: delete\n"),
                    multi_subtree: false,
                    expect_commit: false,
                    kind: "reject-witness-delete",
                };
            }
        }
        self.violating_nameless_person()
    }

    /// A delete of a DN that does not exist (undecodable: `invalid-tx`).
    fn invalid_missing_delete(&mut self) -> GeneratedTx {
        self.counter += 1;
        let org = self.pick_org();
        let unit = self.pick_unit(org);
        let parent = self.orgs[org][unit].dn.clone();
        GeneratedTx {
            ldif: format!("dn: uid=ghost{},{parent}\nchangetype: delete\n", self.counter),
            multi_subtree: false,
            expect_commit: false,
            kind: "reject-missing-delete",
        }
    }

    /// Generates the base instance and the transaction stream.
    pub fn generate(params: LdifWorkloadParams) -> (DirectoryInstance, Vec<GeneratedTx>) {
        let base = multi_org_base(params.orgs, params.entries_per_org, params.seed);
        // Book-keep units and their persons from the base itself.
        let mut orgs: Vec<Vec<UnitBook>> = Vec::new();
        let mut unit_index: std::collections::HashMap<String, (usize, usize)> =
            std::collections::HashMap::new();
        for (id, entry) in base.iter() {
            let dn = base.dn(id).expect("live entry has a dn");
            if entry.has_class("organization") {
                orgs.push(Vec::new());
            } else if entry.has_class("orgUnit") {
                let org = orgs.len() - 1;
                let parent = dn.parent().expect("units are never roots").to_string();
                if let Some(&(porg, punit)) = unit_index.get(&parent) {
                    orgs[porg][punit].subunits += 1;
                }
                unit_index.insert(dn.to_string(), (org, orgs[org].len()));
                orgs[org].push(UnitBook { dn: dn.to_string(), persons: Vec::new(), subunits: 0 });
            } else if entry.has_class("person") {
                let parent = dn.parent().expect("persons are never roots").to_string();
                let &(org, unit) = unit_index.get(&parent).expect("person parent is a unit");
                orgs[org][unit].persons.push(dn.to_string());
            }
        }
        let mut workload =
            LdifWorkload { rng: StdRng::seed_from_u64(params.seed), orgs, counter: 0 };
        let mut txs = Vec::with_capacity(params.transactions);
        for _ in 0..params.transactions {
            let roll = workload.rng.random_range(0..100u32);
            let tx = match roll {
                0..=29 => workload.legal_person_insert(),
                30..=39 => workload.legal_unit_insert(),
                40..=54 => workload.legal_delete(),
                55..=64 => workload.legal_cross_insert(),
                65..=69 => workload.legal_new_org(),
                70..=79 => workload.violating_nameless_person(),
                80..=84 => workload.violating_person_child(),
                85..=89 => workload.violating_bare_unit(),
                90..=93 => workload.violating_cross(),
                94..=96 => workload.violating_witness_delete(),
                _ => workload.invalid_missing_delete(),
            };
            txs.push(tx);
        }
        (base, txs)
    }
}

/// Whether `ldif`'s records span more than one top-level subtree —
/// recomputed from the text (rather than trusted from the generator) so
/// oracle assertions about cross-shard coverage stand on the replayed
/// artifact itself.
pub fn spans_multiple_subtrees(ldif: &str) -> bool {
    let mut first_root: Option<String> = None;
    for line in ldif.lines() {
        if let Some(dn) = line.strip_prefix("dn: ") {
            let parsed = match Dn::parse(dn) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let root = parsed
                .rdns()
                .last()
                .map(|r| Dn::from_rdns(vec![r.clone()]).to_normalized_string())
                .unwrap_or_default();
            match &first_root {
                None => first_root = Some(root),
                Some(seen) if *seen != root => return true,
                Some(_) => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_core::legality::LegalityChecker;
    use bschema_core::paper::white_pages_schema;

    #[test]
    fn multi_org_bases_are_legal_and_multi_rooted() {
        let base = multi_org_base(4, 40, 7);
        assert_eq!(base.forest().roots().count(), 4);
        let report = LegalityChecker::new(&white_pages_schema()).check(&base);
        assert!(report.is_legal(), "{report}");
    }

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let params = LdifWorkloadParams { transactions: 120, ..LdifWorkloadParams::default() };
        let (_, a) = LdifWorkload::generate(params.clone());
        let (_, b) = LdifWorkload::generate(params);
        let texts =
            |txs: &[GeneratedTx]| -> Vec<String> { txs.iter().map(|t| t.ldif.clone()).collect() };
        assert_eq!(texts(&a), texts(&b));
        assert!(a.iter().any(|t| t.multi_subtree && t.expect_commit));
        assert!(a.iter().any(|t| t.multi_subtree && !t.expect_commit));
        assert!(a.iter().any(|t| !t.multi_subtree && t.expect_commit));
        assert!(a.iter().any(|t| !t.multi_subtree && !t.expect_commit));
        assert!(a.iter().any(|t| t.kind == "delete"));
        for tx in &a {
            assert_eq!(
                spans_multiple_subtrees(&tx.ldif),
                tx.multi_subtree,
                "hint disagrees with text for {}:\n{}",
                tx.kind,
                tx.ldif
            );
        }
    }
}
