//! Random bounding-schema generator, for consistency-checker benchmarks and
//! property tests.
//!
//! Three families:
//!
//! * **unconstrained** — random class tree + random required/forbidden
//!   relationships; may or may not be consistent (exercises the checker on
//!   realistic mixed inputs);
//! * **consistent** — required relationships only point "down" a topological
//!   order of classes with child/descendant kinds, required classes sit at
//!   the top of that order, and forbidden relationships are chosen to avoid
//!   clashing with required ones; consistent by construction;
//! * **inconsistent** — a consistent base plus one planted cycle or direct
//!   contradiction.

use bschema_core::schema::{DirectorySchema, ForbidKind, RelKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`SchemaGenerator`].
#[derive(Debug, Clone)]
pub struct SchemaParams {
    /// Number of core classes (besides `top`).
    pub core_classes: usize,
    /// Number of required structural relationships.
    pub required_rels: usize,
    /// Number of forbidden structural relationships.
    pub forbidden_rels: usize,
    /// Number of required classes (`◇c`).
    pub required_classes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SchemaParams {
    fn default() -> Self {
        SchemaParams {
            core_classes: 10,
            required_rels: 8,
            forbidden_rels: 4,
            required_classes: 2,
            seed: 7,
        }
    }
}

impl SchemaParams {
    /// Scales every component to roughly `n` total elements.
    pub fn sized(n: usize) -> Self {
        SchemaParams {
            core_classes: (n / 2).max(2),
            required_rels: (n / 3).max(1),
            forbidden_rels: (n / 6).max(1),
            required_classes: (n / 10).max(1),
            seed: 7,
        }
    }
}

/// The generator.
#[derive(Debug)]
pub struct SchemaGenerator {
    params: SchemaParams,
    rng: StdRng,
}

impl SchemaGenerator {
    /// A generator with the given parameters.
    pub fn new(params: SchemaParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        SchemaGenerator { params, rng }
    }

    fn class_names(&self) -> Vec<String> {
        (0..self.params.core_classes).map(|i| format!("k{i}")).collect()
    }

    /// Random class tree: each class's parent is `top` or an earlier class.
    fn build_classes(&mut self, names: &[String]) -> DirectorySchema {
        let mut builder = DirectorySchema::builder().named("generated");
        for (i, name) in names.iter().enumerate() {
            let parent = if i == 0 || self.rng.random_bool(0.4) {
                "top".to_owned()
            } else {
                names[self.rng.random_range(0..i)].clone()
            };
            builder = builder.core_class(name, &parent).expect("generated names are fresh");
        }
        builder.build()
    }

    fn rebuild_with<F>(&mut self, mut f: F) -> DirectorySchema
    where
        F: FnMut(
            &mut StdRng,
            &[String],
            bschema_core::schema::SchemaBuilder,
        ) -> bschema_core::schema::SchemaBuilder,
    {
        let names = self.class_names();
        // Recreate the class tree deterministically from a fork of the seed.
        let tree_schema = self.build_classes(&names);
        // Re-express as a builder: easier to rebuild from scratch.
        let mut builder = DirectorySchema::builder().named("generated");
        let classes = tree_schema.classes();
        for c in classes.core_classes() {
            if c == classes.top() {
                continue;
            }
            let parent = classes.parent(c).expect("non-top class has parent");
            builder =
                builder.core_class(classes.name(c), classes.name(parent)).expect("fresh rebuild");
        }
        builder = f(&mut self.rng, &names, builder);
        builder.build()
    }

    /// The unconstrained family.
    pub fn unconstrained(&mut self) -> DirectorySchema {
        let required_rels = self.params.required_rels;
        let forbidden_rels = self.params.forbidden_rels;
        let required_classes = self.params.required_classes;
        self.rebuild_with(move |rng, names, mut builder| {
            let pick = |rng: &mut StdRng| names[rng.random_range(0..names.len())].clone();
            for _ in 0..required_classes {
                builder = builder.require_class(&pick(rng)).expect("known class");
            }
            for _ in 0..required_rels {
                let kind = match rng.random_range(0..4) {
                    0 => RelKind::Child,
                    1 => RelKind::Descendant,
                    2 => RelKind::Parent,
                    _ => RelKind::Ancestor,
                };
                builder = builder.require_rel(&pick(rng), kind, &pick(rng)).expect("known classes");
            }
            for _ in 0..forbidden_rels {
                let kind =
                    if rng.random_bool(0.5) { ForbidKind::Child } else { ForbidKind::Descendant };
                builder = builder.forbid_rel(&pick(rng), kind, &pick(rng)).expect("known classes");
            }
            builder
        })
    }

    /// The consistent family: required relationships only point from
    /// lower-indexed to strictly higher-indexed classes with downward kinds
    /// (child/descendant), so the requirement graph is a DAG and a finite
    /// witness always exists; forbidden relationships pair classes in the
    /// reverse direction. Because the random class tree can still lift a
    /// forbidden pair onto a required path (via subclass chains), the result
    /// is verified with the consistency checker and rebuilt without
    /// forbidden relationships when the draw clashed.
    pub fn consistent(&mut self) -> DirectorySchema {
        use bschema_core::consistency::ConsistencyChecker;
        // Drop the forbidden-rel count first, then redraw; in the limit a
        // candidate with no forbidden rels over a fresh tree passes.
        for forbidden in [self.params.forbidden_rels, self.params.forbidden_rels, 0, 0, 0, 0] {
            let candidate = self.consistent_candidate(forbidden);
            if ConsistencyChecker::new(&candidate).check().is_consistent() {
                return candidate;
            }
        }
        // Guaranteed fallback: class tree only, no structure constraints.
        let names = self.class_names();
        self.build_classes(&names)
    }

    fn consistent_candidate(&mut self, forbidden_rels: usize) -> DirectorySchema {
        let required_rels = self.params.required_rels;
        let required_classes = self.params.required_classes;
        self.rebuild_with(move |rng, names, mut builder| {
            let n = names.len();
            // Leaf classes of the tree under construction: a class is a leaf
            // iff nothing later named it as parent. Recover that from the
            // builder's schema? The closure only sees names; recompute
            // leaves by probing the built schema at the end is awkward, so
            // approximate: the last ⌈n/2⌉ classes are overwhelmingly leaves
            // under the 0.4-root/earlier-parent policy, and the final
            // verification pass in `consistent()` guards the rest.
            let lo = n / 2;
            for name in names.iter().take(required_classes) {
                builder = builder.require_class(name).expect("known class");
            }
            if n >= 2 && lo + 1 < n {
                for _ in 0..required_rels {
                    let i = rng.random_range(lo..n - 1);
                    let j = rng.random_range(i + 1..n);
                    let kind =
                        if rng.random_bool(0.5) { RelKind::Child } else { RelKind::Descendant };
                    builder =
                        builder.require_rel(&names[i], kind, &names[j]).expect("known classes");
                }
                for _ in 0..forbidden_rels {
                    let i = rng.random_range(lo..n - 1);
                    let j = rng.random_range(i + 1..n);
                    builder = builder
                        .forbid_rel(&names[j], ForbidKind::Descendant, &names[i])
                        .expect("known classes");
                }
            }
            builder
        })
    }

    /// The inconsistent family: a consistent base plus one planted defect.
    pub fn inconsistent(&mut self) -> DirectorySchema {
        let required_rels = self.params.required_rels;
        let plant_cycle = self.rng.random_bool(0.5);
        self.rebuild_with(move |rng, names, mut builder| {
            let n = names.len();
            if n >= 2 {
                for _ in 0..required_rels {
                    let i = rng.random_range(0..n - 1);
                    let j = rng.random_range(i + 1..n);
                    builder = builder
                        .require_rel(&names[i], RelKind::Child, &names[j])
                        .expect("known classes");
                }
            }
            let a = &names[0];
            let b = &names[n - 1]; // == a when n == 1: a self-loop, still inconsistent
            builder = builder.require_class(a).expect("known class");
            if plant_cycle && n >= 2 {
                // ◇a, a →ch b, b →de a.
                builder = builder
                    .require_rel(a, RelKind::Child, b)
                    .and_then(|x| x.require_rel(b, RelKind::Descendant, a))
                    .expect("known classes");
            } else {
                // ◇a, a →de b, a ↛de b.
                builder = builder
                    .require_rel(a, RelKind::Descendant, b)
                    .and_then(|x| x.forbid_rel(a, ForbidKind::Descendant, b))
                    .expect("known classes");
            }
            builder
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_core::consistency::{build_witness, ConsistencyChecker};
    use bschema_core::legality::LegalityChecker;

    #[test]
    fn consistent_family_is_consistent_and_has_witnesses() {
        for seed in 0..20 {
            let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
            let schema = g.consistent();
            let result = ConsistencyChecker::new(&schema).check();
            assert!(
                result.is_consistent(),
                "seed {seed} generated an inconsistent 'consistent' schema"
            );
            let witness = build_witness(&schema)
                .unwrap_or_else(|e| panic!("seed {seed}: witness failed: {e}"));
            assert!(
                LegalityChecker::new(&schema).check(&witness).is_legal(),
                "seed {seed}: witness not legal"
            );
        }
    }

    #[test]
    fn inconsistent_family_is_inconsistent() {
        for seed in 0..20 {
            let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
            let schema = g.inconsistent();
            let result = ConsistencyChecker::new(&schema).check();
            assert!(!result.is_consistent(), "seed {seed}: planted defect not detected");
            assert!(result.explain_inconsistency().is_some());
        }
    }

    #[test]
    fn unconstrained_family_runs_and_verdicts_match_witnesses() {
        // For unconstrained schemas we cross-check: whenever the engine says
        // consistent, the witness builder should succeed (completeness
        // probe); whenever it says inconsistent, the witness builder must
        // not produce a legal instance (soundness probe).
        for seed in 0..30 {
            let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::default() });
            let schema = g.unconstrained();
            let result = ConsistencyChecker::new(&schema).check();
            match build_witness(&schema) {
                Ok(witness) => {
                    assert!(
                        LegalityChecker::new(&schema).check(&witness).is_legal(),
                        "builder returned an illegal witness (builder bug), seed {seed}"
                    );
                    assert!(
                        result.is_consistent(),
                        "seed {seed}: engine says inconsistent but a legal witness exists (soundness violation!)"
                    );
                }
                Err(_) if result.is_consistent() => {
                    // The chase is heuristic; a miss here is not proof of
                    // engine incompleteness, but it should be rare. Accept.
                }
                Err(_) => {}
            }
        }
    }

    #[test]
    fn sized_scaling() {
        let p = SchemaParams::sized(60);
        assert!(p.core_classes >= 2);
        let mut g = SchemaGenerator::new(p);
        let s = g.unconstrained();
        assert!(!s.structure().is_empty());
    }
}
