//! # bschema-cli
//!
//! The `bschema` command-line tool: bounding-schema administration from the
//! shell. All command logic lives here (writer-parameterised) so it is unit
//! testable; `main.rs` is a thin shim.
//!
//! ```text
//! bschema check-schema <schema.bs>                  consistency + ◇∅ proof
//! bschema validate <schema.bs> <data.ldif>          legality report with DNs
//! bschema check <data.ldif> <schema.bs>             legality with --trace/--metrics
//! bschema apply <schema.bs> <data.ldif> <tx.ldif>   managed transaction, rollback on illegal
//! bschema recover <schema.bs> <base.ldif> <journal> replay a write-ahead journal
//! bschema consistency <schema.bs>                   consistency with --trace/--metrics
//! bschema witness <schema.bs>                       construct a legal example instance
//! bschema search <data.ldif> --filter F [--base DN] [--scope base|one|sub] [--schema S]
//! bschema print-schema <schema.bs>                  parse + normalise the DSL
//! bschema evolve <schema.bs> <data.ldif> <step...>  try a schema-evolution step
//! bschema suggest-schema <data.ldif>                mine a schema from data (§6.2)
//! bschema discover <data.ldif>                      mine a schema as pure DSL (SCHEMA PROPOSE input)
//! ```
//!
//! The instrumented commands (`check`, `apply`, `consistency`, `recover`)
//! accept `--trace` (hierarchical span tree of the check) and `--metrics` /
//! `--metrics=json` (engine counters and timing histograms; the JSON form
//! is emitted as the **last** output line so scripts can `tail -n 1`).
//!
//! `apply` additionally supports `--journal <path>` (write-ahead journal:
//! the transaction is durably recorded before it mutates anything, and
//! committed only after it is certified legal — `recover` replays exactly
//! the committed prefix after a crash) and `--inject-fault <n>`
//! (deterministic fault injection: the nth probe event panics mid-apply;
//! the `faults.injected` / `faults.survived` counters land in `--metrics`).
//!
//! Exit codes: 0 success / legal / consistent; 1 illegal or inconsistent;
//! 2 usage or input error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

use bschema_core::checkpoint::{
    checkpoint_path, recover_with_checkpoint, truncate_journal, write_checkpoint, Checkpoint,
};
use bschema_core::consistency::{build_witness, ConsistencyChecker};
use bschema_core::evolution::{self, Evolution};
use bschema_core::journal::{Journal, JournalWriter};
use bschema_core::legality::{translate, LegalityChecker, LegalityOptions};
use bschema_core::managed::{ManagedDirectory, ManagedError};
use bschema_core::schema::dsl::{parse_schema, print_schema, ParsedSchema};
use bschema_core::updates::{transaction_from_ldif, Transaction};
use bschema_directory::ldif::LdifLimits;
use bschema_directory::{ldif, DirectoryInstance};
use bschema_faults::{silence_injected_panics, FaultPlan};
use bschema_obs::{json::Value, FlightRecorder, Probe, Recorder, SloPolicy};
use bschema_query::{
    explain, parse_filter_limited, search, EvalContext, SearchRequest, SearchScope,
    DEFAULT_FILTER_DEPTH,
};
use bschema_server::{
    Client, ClientError, DirectoryService, Follower, Monitor, MonitorConfig, ReplicationState,
    Server, ServerConfig, ServiceLimits,
};

/// A CLI failure: message plus process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code (2 = usage/input, 1 = negative verdict).
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn usage_error(message: impl Into<String>) -> CliError {
    CliError { message: message.into(), code: 2 }
}

/// Dispatches a command line (without the program name). Writes output to
/// `out`; returns the exit code.
pub fn run(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let Some(command) = args.first() else {
        return Err(usage_error(USAGE));
    };
    match command.as_str() {
        "check-schema" => check_schema(&args[1..], out),
        "validate" => validate(&args[1..], out),
        "check" => cmd_check(&args[1..], out),
        "apply" => cmd_apply(&args[1..], out),
        "recover" => cmd_recover(&args[1..], out),
        "checkpoint" => cmd_checkpoint(&args[1..], out),
        "consistency" => cmd_consistency(&args[1..], out),
        "witness" => witness(&args[1..], out),
        "search" => cmd_search(&args[1..], out),
        "print-schema" => cmd_print_schema(&args[1..], out),
        "evolve" => cmd_evolve(&args[1..], out),
        "suggest-schema" => cmd_suggest(&args[1..], out),
        "discover" => cmd_discover(&args[1..], out),
        "serve" => cmd_serve(&args[1..], out),
        "client" => cmd_client(&args[1..], out),
        "top" => cmd_top(&args[1..], out),
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(0)
        }
        other => Err(usage_error(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// The usage text.
pub const USAGE: &str = "\
bschema — bounding-schemas for LDAP directories (EDBT 2000)

usage:
  bschema check-schema <schema.bs>
  bschema validate <schema.bs> <data.ldif>
  bschema check <data.ldif> <schema.bs> [--sequential] [--explain] [--trace] [--metrics[=json]]
  bschema apply <schema.bs> <data.ldif> <tx.ldif> [--sequential] [--journal <path>] [--inject-fault <n>] [--trace] [--metrics[=json]]
  bschema recover <schema.bs> <base.ldif> <journal> [--verify] [--trace] [--metrics[=json]]
  bschema checkpoint <schema.bs> <base.ldif> <journal>
  bschema consistency <schema.bs> [--trace] [--metrics[=json]]
  bschema witness <schema.bs>
  bschema search <data.ldif> --filter <rfc2254> [--base <dn>] [--scope base|one|sub] [--schema <schema.bs>]
  bschema print-schema <schema.bs>
  bschema evolve <schema.bs> <data.ldif> require-attr <class> <attr>
  bschema evolve <schema.bs> <data.ldif> allow-attr <class> <attr>
  bschema evolve <schema.bs> <data.ldif> require-class <class>
  bschema evolve <schema.bs> <data.ldif> require-rel <src> <ch|de|pa|an> <tgt>
  bschema evolve <schema.bs> <data.ldif> forbid-rel <upper> <ch|de> <lower>
  bschema evolve <schema.bs> <data.ldif> add-class <name> [parent]
  bschema evolve <schema.bs> <data.ldif> add-aux <name>
  bschema evolve <schema.bs> <data.ldif> allow-aux <core> <aux>
  bschema suggest-schema <data.ldif> [--forbidden] [--required-classes]
  bschema discover <data.ldif> [--forbidden] [--required-classes]
  bschema serve <schema.bs> [data.ldif] [--addr <ip:port>] [--port-file <path>]
          [--threads <n>] [--queue-depth <n>] [--shards <n>] [--journal <path>]
          [--checkpoint-every <n>] [--follow <addr>] [--ship-interval <ms>]
          [--sequential] [--trace] [--metrics[=json]]
          [--monitor-interval <ms>] [--slo p99=<dur>,err=<rate>] [--audit <path>]
          [--inject-fault-site <site>[:<occurrence>]]
  bschema client <addr> ping
  bschema client <addr> search --filter <rfc2254> [--base <dn>] [--scope base|one|sub] [--limit <n>] [--explain]
  bschema client <addr> apply <tx.ldif>
  bschema client <addr> modify <mods.txt>
  bschema client <addr> metrics | prom | stats | trace | health | checkpoint | shutdown
  bschema client <addr> schema propose <payload-file> | --step <word>...
  bschema client <addr> schema check | status | commit | abort
  bschema client <addr> watch [--ticks <n>]
  bschema top <addr> [--once] [--ticks <n>]

input limits (check, validate, apply, search, serve):
  --max-line-len <bytes>  --max-records <n>  --max-filter-depth <n>
";

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| usage_error(format!("cannot read {path:?}: {e}")))
}

fn load_schema(path: &str) -> Result<ParsedSchema, CliError> {
    parse_schema(&read_file(path)?).map_err(|e| usage_error(format!("{path}: {e}")))
}

fn load_ldif(path: &str, parsed: Option<&ParsedSchema>) -> Result<DirectoryInstance, CliError> {
    load_ldif_limited(path, parsed, &LdifLimits::default())
}

fn load_ldif_limited(
    path: &str,
    parsed: Option<&ParsedSchema>,
    limits: &LdifLimits,
) -> Result<DirectoryInstance, CliError> {
    let text = read_file(path)?;
    let mut dir = match parsed {
        Some(p) => DirectoryInstance::new(p.registry.clone()),
        None => DirectoryInstance::white_pages(),
    };
    ldif::load_into_limited(&mut dir, &text, limits)
        .map_err(|e| usage_error(format!("{path}: {e}")))?;
    dir.prepare();
    Ok(dir)
}

fn check_schema(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let [path] = args else {
        return Err(usage_error("check-schema takes exactly one schema file"));
    };
    let parsed = load_schema(path)?;
    let verdict = ConsistencyChecker::new(&parsed.schema).check();
    let _ = writeln!(
        out,
        "schema {:?}: {} classes, {} structure elements, closure {} elements",
        parsed.schema.name().unwrap_or("unnamed"),
        parsed.schema.classes().len(),
        parsed.schema.structure().len(),
        verdict.closure_size()
    );
    if verdict.is_consistent() {
        let _ = writeln!(out, "CONSISTENT: at least one legal directory instance exists");
        Ok(0)
    } else {
        let _ = writeln!(out, "INCONSISTENT: no legal directory instance can exist");
        let _ = writeln!(out, "{}", verdict.explain_inconsistency().unwrap_or_default());
        Ok(1)
    }
}

fn validate(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut limits = LimitOpts::default();
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if limits.accept(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            path if !path.starts_with("--") => positional.push(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let [schema_path, ldif_path] = positional[..] else {
        return Err(usage_error("validate takes <schema.bs> <data.ldif>"));
    };
    let parsed = load_schema(schema_path)?;
    let dir =
        load_ldif_limited(ldif_path, Some(&parsed), &limits.ldif_limits(LdifLimits::default()))?;
    let report = LegalityChecker::new(&parsed.schema).with_value_validation(true).check(&dir);
    let _ = writeln!(
        out,
        "{} entries checked against {:?}",
        dir.len(),
        parsed.schema.name().unwrap_or("unnamed")
    );
    if report.is_legal() {
        let _ = writeln!(out, "LEGAL");
        Ok(0)
    } else {
        let _ = writeln!(out, "ILLEGAL: {} violation(s)", report.len());
        for v in report.violations() {
            let location = v
                .entry()
                .and_then(|id| dir.dn(id).ok())
                .map(|dn| format!(" [dn: {dn}]"))
                .unwrap_or_default();
            let _ = writeln!(out, "  - {v}{location}");
        }
        Ok(1)
    }
}

/// How `--metrics` output should be rendered.
#[derive(Clone, Copy)]
enum MetricsFormat {
    Text,
    Json,
}

/// Observability flags shared by `check`, `apply`, and `consistency`.
#[derive(Default)]
struct ObsOpts {
    trace: bool,
    metrics: Option<MetricsFormat>,
}

impl ObsOpts {
    /// Consumes `arg` if it is an observability flag.
    fn accept(&mut self, arg: &str) -> bool {
        match arg {
            "--trace" => self.trace = true,
            "--metrics" => self.metrics = Some(MetricsFormat::Text),
            "--metrics=json" => self.metrics = Some(MetricsFormat::Json),
            _ => return false,
        }
        true
    }

    fn wanted(&self) -> bool {
        self.trace || self.metrics.is_some()
    }

    /// Emits the collected trace and metrics. The JSON form goes last so
    /// the final output line is always the one machine-readable object.
    fn emit(&self, recorder: &Recorder, out: &mut String) {
        if self.trace {
            out.push_str(&recorder.trace_text());
        }
        match self.metrics {
            Some(MetricsFormat::Text) => out.push_str(&recorder.metrics_text()),
            Some(MetricsFormat::Json) => {
                let _ = writeln!(out, "{}", recorder.to_json());
            }
            None => {}
        }
    }
}

/// Input resource-limit flags shared by `check`, `validate`, `apply`,
/// `search`, and `serve`. Unset fields keep [`LdifLimits::default`] /
/// [`DEFAULT_FILTER_DEPTH`]; `serve` tightens the unset LDIF fields to
/// [`LdifLimits::strict`] because socket bytes are untrusted.
#[derive(Default)]
struct LimitOpts {
    max_line_len: Option<usize>,
    max_records: Option<usize>,
    max_filter_depth: Option<usize>,
}

impl LimitOpts {
    /// Consumes `arg` (pulling its value from `it`) if it is a limit
    /// flag.
    fn accept(
        &mut self,
        arg: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, CliError> {
        let parse = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
            let word = next_value(it, flag)?;
            word.parse::<usize>()
                .map_err(|_| usage_error(format!("{flag} needs a number, got {word:?}")))
        };
        match arg {
            "--max-line-len" => self.max_line_len = Some(parse("--max-line-len", it)?),
            "--max-records" => self.max_records = Some(parse("--max-records", it)?),
            "--max-filter-depth" => self.max_filter_depth = Some(parse("--max-filter-depth", it)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn ldif_limits(&self, base: LdifLimits) -> LdifLimits {
        LdifLimits {
            max_line_len: self.max_line_len.unwrap_or(base.max_line_len),
            max_records: self.max_records.unwrap_or(base.max_records),
            ..base
        }
    }

    fn filter_depth(&self) -> usize {
        self.max_filter_depth.unwrap_or(DEFAULT_FILTER_DEPTH)
    }
}

fn cmd_check(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut obs = ObsOpts::default();
    let mut limits = LimitOpts::default();
    let mut sequential = false;
    let mut explain_plan = false;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if obs.accept(arg) || limits.accept(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--sequential" => sequential = true,
            "--explain" => explain_plan = true,
            path if !path.starts_with("--") => positional.push(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let [ldif_path, schema_path] = positional[..] else {
        return Err(usage_error("check takes <data.ldif> <schema.bs>"));
    };
    let parsed = load_schema(schema_path)?;
    let dir =
        load_ldif_limited(ldif_path, Some(&parsed), &limits.ldif_limits(LdifLimits::default()))?;
    let options =
        if sequential { LegalityOptions::sequential() } else { LegalityOptions::parallel(0) };
    let recorder = Recorder::new();
    let report = LegalityChecker::new(&parsed.schema)
        .with_options(options)
        .with_probe(&recorder)
        .check(&dir);
    let _ = writeln!(
        out,
        "{} entries checked against {:?}",
        dir.len(),
        parsed.schema.name().unwrap_or("unnamed")
    );
    let code = if report.is_legal() {
        let _ = writeln!(out, "LEGAL");
        0
    } else {
        let _ = writeln!(out, "ILLEGAL: {} violation(s)", report.len());
        for v in report.violations() {
            let location = v
                .entry()
                .and_then(|id| dir.dn(id).ok())
                .map(|dn| format!(" [dn: {dn}]"))
                .unwrap_or_default();
            let _ = writeln!(out, "  - {v}{location}");
        }
        1
    };
    if explain_plan {
        explain_structure_queries(&parsed.schema, &dir, out);
    }
    obs.emit(&recorder, out);
    Ok(code)
}

/// `check --explain`: renders the evaluation plan of every structure
/// query (the Figure 4 translation, in engine order) against the loaded
/// instance — which index each step reused or seeded, candidate-set
/// sizes, and entries scanned vs. matched — then a totals line.
fn explain_structure_queries(
    schema: &bschema_core::schema::DirectorySchema,
    dir: &DirectoryInstance,
    out: &mut String,
) {
    let structure = schema.structure();
    let mut queries = Vec::new();
    for class in structure.required_classes() {
        queries.push(translate::required_class_query(schema, class));
    }
    for rel in structure.required_rels() {
        queries.push(translate::required_rel_query(schema, rel));
    }
    for rel in structure.forbidden_rels() {
        queries.push(translate::forbidden_rel_query(schema, rel));
    }
    let _ =
        writeln!(out, "EXPLAIN: {} structure queries (the Figure 4 translation)", queries.len());
    let ctx = EvalContext::new(dir);
    let (mut scanned, mut matched) = (0usize, 0usize);
    for query in &queries {
        let report = explain(&ctx, query);
        scanned += report.scanned();
        matched += report.matched();
        out.push_str(&report.render_text());
    }
    let _ = writeln!(
        out,
        "EXPLAIN totals: {} queries, scanned={scanned}, matched={matched}",
        queries.len()
    );
}

/// Builds an insertion/deletion transaction from LDIF text — the shared
/// [`transaction_from_ldif`] decoder, so the CLI and the wire server
/// accept exactly the same change format.
fn build_transaction(
    dir: &DirectoryInstance,
    text: &str,
    limits: &LdifLimits,
) -> Result<Transaction, CliError> {
    let records = ldif::parse_ldif_limited(text, limits)
        .map_err(|e| usage_error(format!("transaction: {e}")))?;
    transaction_from_ldif(dir, records).map_err(|e| usage_error(format!("transaction: {e}")))
}

/// Appends `text` to the file at `path`, creating it if absent. Used for
/// the write-ahead journal: records must hit the file *before* the
/// mutation they describe (begin) and *after* the legality verdict
/// (commit).
fn append_file(path: &str, text: &str) -> Result<(), CliError> {
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| usage_error(format!("cannot open journal {path:?}: {e}")))?;
    file.write_all(text.as_bytes())
        .map_err(|e| usage_error(format!("cannot write journal {path:?}: {e}")))
}

fn cmd_apply(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut obs = ObsOpts::default();
    let mut limits = LimitOpts::default();
    let mut sequential = false;
    let mut journal_path: Option<&str> = None;
    let mut inject_fault: Option<u64> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if obs.accept(arg) || limits.accept(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--sequential" => sequential = true,
            "--journal" => journal_path = Some(next_value(&mut it, "--journal")?),
            "--inject-fault" => {
                let word = next_value(&mut it, "--inject-fault")?;
                let n = word.parse().map_err(|_| {
                    usage_error(format!("--inject-fault needs an event number, got {word:?}"))
                })?;
                inject_fault = Some(n);
            }
            path if !path.starts_with("--") => positional.push(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let [schema_path, ldif_path, tx_path] = positional[..] else {
        return Err(usage_error("apply takes <schema.bs> <data.ldif> <tx.ldif>"));
    };
    let parsed = load_schema(schema_path)?;
    let ldif_limits = limits.ldif_limits(LdifLimits::default());
    let dir = load_ldif_limited(ldif_path, Some(&parsed), &ldif_limits)?;
    let options =
        if sequential { LegalityOptions::sequential() } else { LegalityOptions::parallel(0) };
    let recorder = Arc::new(Recorder::new());
    let plan = inject_fault.map(|n| {
        silence_injected_panics();
        Arc::new(FaultPlan::fail_nth(n).with_inner(recorder.clone()))
    });
    let mut managed = ManagedDirectory::with_instance(parsed.schema.clone(), dir)
        .map_err(|e| CliError { message: e.to_string(), code: 1 })?
        .with_options(options);
    if let Some(plan) = &plan {
        managed = managed.with_probe(plan.clone());
    } else if obs.wanted() {
        managed = managed.with_probe(recorder.clone());
    }

    // Resume the write-ahead journal, repairing a torn tail first so the
    // new records extend an intact prefix.
    let mut writer = JournalWriter::new();
    if let Some(path) = journal_path {
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(usage_error(format!("cannot read journal {path:?}: {e}"))),
        };
        let journal = Journal::parse(&existing);
        if journal.truncated {
            let _ = writeln!(
                out,
                "journal: repaired torn tail ({} damaged record(s) dropped)",
                journal.dropped_records
            );
            std::fs::write(path, &existing[..journal.intact_len])
                .map_err(|e| usage_error(format!("cannot repair journal {path:?}: {e}")))?;
        }
        writer = JournalWriter::resume_after(&journal);
        // A checkpoint may have truncated the journal past the parsed
        // cursor; new records must continue the checkpoint's numbering,
        // or recovery's `first_seq >= ckpt.seq` tail filter would skip
        // them.
        if let Some(text) = read_optional_file(&checkpoint_path(std::path::Path::new(path)))? {
            if let Ok(ckpt) = Checkpoint::decode(&text) {
                if ckpt.seq > writer.records_emitted() || ckpt.next_tx > writer.next_tx() {
                    writer = JournalWriter::resume_at(
                        ckpt.seq.max(writer.records_emitted()),
                        ckpt.next_tx.max(writer.next_tx()),
                    );
                }
            }
        }
    }

    let tx = build_transaction(managed.instance(), &read_file(tx_path)?, &ldif_limits)?;
    // WAL discipline: the begin record (with the full transaction payload)
    // is durable before the instance mutates; the commit record is written
    // only after the transaction is certified legal. A rolled-back or
    // crashed transaction leaves an uncommitted record that `recover`
    // discards.
    let mut tx_id = None;
    if let Some(path) = journal_path {
        let id = writer.begin(&tx);
        append_file(path, &writer.take_pending())?;
        tx_id = Some(id);
    }
    let code = match managed.apply(&tx) {
        Ok(()) => {
            if let (Some(path), Some(id)) = (journal_path, tx_id) {
                writer.commit(id);
                append_file(path, &writer.take_pending())?;
            }
            let _ = writeln!(
                out,
                "APPLIED: {} op(s); directory now has {} entries (legal)",
                tx.len(),
                managed.len()
            );
            0
        }
        Err(ManagedError::RolledBack(report)) => {
            let _ = writeln!(out, "ROLLED BACK: {} violation(s)", report.len());
            for v in report.violations() {
                let _ = writeln!(out, "  - {v}");
            }
            1
        }
        Err(ManagedError::Panicked { reason }) => {
            let _ = writeln!(out, "PANICKED (rolled back, instance unchanged): {reason}");
            1
        }
        Err(e) => return Err(CliError { message: e.to_string(), code: 2 }),
    };
    if let Some(plan) = &plan {
        let outcome = if plan.injected() == 0 {
            "none fired"
        } else if code == 0 {
            "survived"
        } else {
            "rolled back"
        };
        let _ = writeln!(
            out,
            "fault plan: {} probe event(s), {} injected ({outcome})",
            plan.events(),
            plan.injected()
        );
        if plan.injected() > 0 && code == 0 {
            recorder.add("faults.survived", 1);
        }
    }
    obs.emit(&recorder, out);
    Ok(code)
}

fn cmd_recover(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut obs = ObsOpts::default();
    let mut verify = false;
    let mut positional: Vec<&str> = Vec::new();
    for arg in args {
        if obs.accept(arg) {
            continue;
        }
        match arg.as_str() {
            "--verify" => verify = true,
            path if !path.starts_with("--") => positional.push(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let [schema_path, base_path, journal_path] = positional[..] else {
        return Err(usage_error("recover takes <schema.bs> <base.ldif> <journal> [--verify]"));
    };
    let parsed = load_schema(schema_path)?;
    let journal = Journal::parse(&read_file(journal_path)?);
    let ckpt_file = checkpoint_path(std::path::Path::new(journal_path));
    let ckpt_text = read_optional_file(&ckpt_file)?;
    if verify {
        return cmd_recover_verify(&parsed.schema, &journal, ckpt_text.as_deref(), out);
    }
    let base = load_ldif(base_path, Some(&parsed))?;
    if journal.truncated {
        let _ = writeln!(
            out,
            "journal: torn tail, {} damaged record(s) dropped",
            journal.dropped_records
        );
    }
    match recover_with_checkpoint(parsed.schema.clone(), base, ckpt_text.as_deref(), &journal) {
        Ok(recovery) => {
            let (managed, report) = (recovery.managed, recovery.report);
            if let Some(seq) = recovery.checkpoint_seq {
                let _ = writeln!(out, "checkpoint: restored snapshot covering seq {seq}");
            } else if ckpt_text.is_some() {
                let _ = writeln!(out, "checkpoint: unusable, fell back to full replay");
            }
            let _ = writeln!(
                out,
                "RECOVERED: replayed {} committed tx(s), discarded {} uncommitted; directory has {} entries",
                report.replayed,
                report.discarded,
                managed.len()
            );
            let recorder = Recorder::new();
            let legal = if obs.wanted() {
                LegalityChecker::new(&parsed.schema)
                    .with_probe(&recorder)
                    .check(managed.instance())
                    .is_legal()
            } else {
                managed.is_legal()
            };
            let code = if legal {
                let _ = writeln!(out, "LEGAL");
                0
            } else {
                let _ = writeln!(out, "ILLEGAL");
                1
            };
            obs.emit(&recorder, out);
            Ok(code)
        }
        Err(e) => {
            let _ = writeln!(out, "RECOVERY FAILED: {e}");
            Ok(1)
        }
    }
}

/// `recover --verify`: the dry run. Reports what recovery *would* do —
/// intact/torn record counts, checkpoint usability, and the recovery
/// point — without mutating the journal, the checkpoint, or anything
/// else on disk.
fn cmd_recover_verify(
    schema: &bschema_core::schema::DirectorySchema,
    journal: &Journal,
    ckpt_text: Option<&str>,
    out: &mut String,
) -> Result<i32, CliError> {
    let stats = journal.stats();
    let _ = writeln!(
        out,
        "journal: {} intact record(s) (seq {}..{}), {} committed tx(s), {} uncommitted",
        stats.records, stats.start_seq, stats.next_seq, stats.committed, stats.uncommitted
    );
    if stats.truncated {
        let _ = writeln!(
            out,
            "journal: TORN tail — {} damaged record(s) would be dropped, file would shrink to {} byte(s)",
            stats.dropped_records, stats.intact_len
        );
    } else {
        let _ = writeln!(out, "journal: tail intact");
    }
    let expected_hash = bschema_core::checkpoint::schema_hash(schema);
    let usable_ckpt = match ckpt_text {
        None => {
            let _ = writeln!(out, "checkpoint: none");
            None
        }
        Some(text) => match Checkpoint::decode(text) {
            Ok(ckpt) if ckpt.schema_hash == expected_hash => {
                let _ = writeln!(
                    out,
                    "checkpoint: intact, {} entries covering seq {}",
                    ckpt.rows.len(),
                    ckpt.seq
                );
                Some(ckpt)
            }
            Ok(ckpt) => {
                let _ = writeln!(
                    out,
                    "checkpoint: UNUSABLE — schema hash {:016x} does not match {expected_hash:016x}",
                    ckpt.schema_hash
                );
                None
            }
            Err(e) => {
                let _ = writeln!(out, "checkpoint: UNUSABLE — {e}");
                None
            }
        },
    };
    let code = match usable_ckpt {
        Some(ckpt) => {
            let has_tail = stats.next_seq > stats.start_seq;
            if has_tail && stats.start_seq > ckpt.seq {
                let _ = writeln!(
                    out,
                    "VERIFY FAILED: gap between checkpoint seq {} and journal start seq {} — recovery would be refused",
                    ckpt.seq, stats.start_seq
                );
                1
            } else {
                let tail = journal.committed().filter(|tx| tx.first_seq >= ckpt.seq).count();
                let _ = writeln!(
                    out,
                    "recovery point: checkpoint seq {} + {tail} tail tx(s) would replay",
                    ckpt.seq
                );
                0
            }
        }
        None if stats.start_seq > 0 => {
            let _ = writeln!(
                out,
                "VERIFY FAILED: journal starts at seq {} with no usable checkpoint — the truncated history is gone",
                stats.start_seq
            );
            1
        }
        None => {
            let _ = writeln!(
                out,
                "recovery point: full replay, {} committed tx(s) from the seed base",
                stats.committed
            );
            0
        }
    };
    let _ = writeln!(out, "VERIFY ONLY: no files were modified");
    Ok(code)
}

/// `bschema checkpoint` — offline compaction: recover the directory
/// (checkpoint + tail, or full replay), certify it legal, snapshot it
/// into `<journal>.ckpt`, and truncate the journal. The write order
/// (checkpoint renamed into place before the journal shrinks) means a
/// crash mid-command never loses history.
fn cmd_checkpoint(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            path if !path.starts_with("--") => positional.push(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let [schema_path, base_path, journal_path] = positional[..] else {
        return Err(usage_error("checkpoint takes <schema.bs> <base.ldif> <journal>"));
    };
    let parsed = load_schema(schema_path)?;
    let base = load_ldif(base_path, Some(&parsed))?;
    let journal = Journal::parse(&read_file(journal_path)?);
    if journal.truncated {
        let _ = writeln!(
            out,
            "journal: torn tail, {} damaged record(s) discarded",
            journal.dropped_records
        );
    }
    let ckpt_file = checkpoint_path(std::path::Path::new(journal_path));
    let ckpt_text = read_optional_file(&ckpt_file)?;
    let recovery = match recover_with_checkpoint(
        parsed.schema.clone(),
        base,
        ckpt_text.as_deref(),
        &journal,
    ) {
        Ok(recovery) => recovery,
        Err(e) => {
            let _ = writeln!(out, "RECOVERY FAILED: {e}");
            return Ok(1);
        }
    };
    let ckpt = Checkpoint::capture(
        recovery.managed.instance(),
        &parsed.schema,
        recovery.writer.records_emitted(),
        recovery.writer.next_tx(),
        journal.shard,
    );
    let recorder = Recorder::new();
    write_checkpoint(&ckpt_file, &ckpt.encode(), &recorder)
        .map_err(|e| usage_error(format!("cannot write checkpoint {ckpt_file:?}: {e}")))?;
    truncate_journal(std::path::Path::new(journal_path), &recorder)
        .map_err(|e| usage_error(format!("cannot truncate journal {journal_path:?}: {e}")))?;
    let _ = writeln!(
        out,
        "CHECKPOINTED: {} entries at seq {} -> {}; journal truncated ({} committed tx(s) folded in)",
        recovery.managed.len(),
        ckpt.seq,
        ckpt_file.display(),
        recovery.report.replayed
    );
    Ok(0)
}

/// Reads a file that is allowed to be absent.
fn read_optional_file(path: &std::path::Path) -> Result<Option<String>, CliError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(usage_error(format!("cannot read {path:?}: {e}"))),
    }
}

fn cmd_consistency(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut obs = ObsOpts::default();
    let mut positional: Vec<&str> = Vec::new();
    for arg in args {
        if obs.accept(arg) {
            continue;
        }
        match arg.as_str() {
            path if !path.starts_with("--") => positional.push(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let [path] = positional[..] else {
        return Err(usage_error("consistency takes exactly one schema file"));
    };
    let parsed = load_schema(path)?;
    let recorder = Recorder::new();
    let verdict = ConsistencyChecker::new(&parsed.schema).with_probe(&recorder).check();
    let _ = writeln!(
        out,
        "schema {:?}: closure {} elements",
        parsed.schema.name().unwrap_or("unnamed"),
        verdict.closure_size()
    );
    let code = if verdict.is_consistent() {
        let _ = writeln!(out, "CONSISTENT");
        0
    } else {
        let _ = writeln!(out, "INCONSISTENT");
        let _ = writeln!(out, "{}", verdict.explain_inconsistency().unwrap_or_default());
        1
    };
    obs.emit(&recorder, out);
    Ok(code)
}

fn witness(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let [path] = args else {
        return Err(usage_error("witness takes exactly one schema file"));
    };
    let parsed = load_schema(path)?;
    let verdict = ConsistencyChecker::new(&parsed.schema).check();
    if !verdict.is_consistent() {
        let _ = writeln!(out, "INCONSISTENT — no witness exists:");
        let _ = writeln!(out, "{}", verdict.explain_inconsistency().unwrap_or_default());
        return Ok(1);
    }
    match build_witness(&parsed.schema) {
        Ok(instance) => {
            let _ = writeln!(out, "witness with {} entries (verified legal):", instance.len());
            for (id, entry) in instance.iter() {
                let depth = instance.forest().depth(id);
                let _ = writeln!(out, "{}- {}", "  ".repeat(depth), entry.classes().join(","));
            }
            Ok(0)
        }
        Err(e) => Err(CliError { message: format!("witness construction failed: {e}"), code: 1 }),
    }
}

fn cmd_search(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut limits = LimitOpts::default();
    let mut ldif_path: Option<&str> = None;
    let mut filter_text: Option<&str> = None;
    let mut base_dn: Option<&str> = None;
    let mut scope = SearchScope::Subtree;
    let mut schema_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if limits.accept(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--filter" => filter_text = Some(next_value(&mut it, "--filter")?),
            "--base" => base_dn = Some(next_value(&mut it, "--base")?),
            "--schema" => schema_path = Some(next_value(&mut it, "--schema")?),
            "--scope" => {
                scope = match next_value(&mut it, "--scope")? {
                    "base" => SearchScope::Base,
                    "one" | "onelevel" => SearchScope::OneLevel,
                    "sub" | "subtree" => SearchScope::Subtree,
                    other => return Err(usage_error(format!("unknown scope {other:?}"))),
                }
            }
            path if !path.starts_with("--") => ldif_path = Some(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let ldif_path = ldif_path.ok_or_else(|| usage_error("search needs a data.ldif argument"))?;
    let filter_text = filter_text.ok_or_else(|| usage_error("search needs --filter"))?;
    let filter = parse_filter_limited(filter_text, limits.filter_depth())
        .map_err(|e| usage_error(format!("bad filter: {e}")))?;

    let parsed = schema_path.map(load_schema).transpose()?;
    let dir =
        load_ldif_limited(ldif_path, parsed.as_ref(), &limits.ldif_limits(LdifLimits::default()))?;

    let base = match base_dn {
        Some(text) => {
            let dn = text.parse().map_err(|e| usage_error(format!("bad base DN: {e}")))?;
            Some(
                dir.lookup_dn(&dn)
                    .ok_or_else(|| usage_error(format!("base DN {text:?} not found")))?,
            )
        }
        None => None,
    };
    let request = SearchRequest { base, scope, filter, size_limit: None };
    let hits = search(&dir, &request);
    let _ = writeln!(out, "{} entries match", hits.len());
    for id in hits {
        match dir.dn(id) {
            Ok(dn) => {
                let _ = writeln!(out, "dn: {dn}");
            }
            Err(_) => {
                let _ = writeln!(out, "entry {id}");
            }
        }
    }
    Ok(0)
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, CliError> {
    it.next().map(String::as_str).ok_or_else(|| usage_error(format!("{flag} needs a value")))
}

fn cmd_print_schema(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let [path] = args else {
        return Err(usage_error("print-schema takes exactly one schema file"));
    };
    let parsed = load_schema(path)?;
    out.push_str(&print_schema(&parsed.schema, Some(&parsed.registry)));
    Ok(0)
}

fn cmd_evolve(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let [schema_path, ldif_path, rest @ ..] = args else {
        return Err(usage_error("evolve takes <schema.bs> <data.ldif> <step...>"));
    };
    let step = parse_step(rest)?;
    let parsed = load_schema(schema_path)?;
    let dir = load_ldif(ldif_path, Some(&parsed))?;
    // The instance must be legal for the targeted recheck to be meaningful.
    let before = LegalityChecker::new(&parsed.schema).check(&dir);
    if !before.is_legal() {
        let _ = writeln!(
            out,
            "directory is not legal under the current schema; fix it first:\n{before}"
        );
        return Ok(1);
    }
    match evolution::evolve(&parsed.schema, &step, &dir) {
        Ok(evolved) => {
            let _ = writeln!(
                out,
                "OK: {step} is safe ({} kind)",
                if step.is_relaxing() {
                    "relaxing — no recheck needed"
                } else {
                    "restricting — new element verified"
                }
            );
            let _ = writeln!(out, "evolved schema:\n");
            out.push_str(&print_schema(&evolved, None));
            Ok(0)
        }
        Err(e) => {
            let _ = writeln!(out, "REFUSED: {e}");
            Ok(1)
        }
    }
}

fn cmd_suggest(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut ldif_path: Option<&str> = None;
    let mut options = bschema_core::discover::DiscoveryOptions::default();
    for arg in args {
        match arg.as_str() {
            "--forbidden" => options.forbidden = true,
            "--required-classes" => options.required_classes = true,
            path if !path.starts_with("--") => ldif_path = Some(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let ldif_path = ldif_path.ok_or_else(|| usage_error("suggest-schema needs a data.ldif"))?;
    let dir = load_ldif(ldif_path, None)?;
    let suggested = bschema_core::discover::suggest_schema(&dir, &options);
    // Sanity: the suggestion must accept its own source.
    let report = LegalityChecker::new(&suggested).check(&dir);
    debug_assert!(report.is_legal(), "discovery invariant: {report}");
    let _ = writeln!(
        out,
        "# mined from {} entries; prune before adopting as a prescriptive schema",
        dir.len()
    );
    out.push_str(&print_schema(&suggested, None));
    Ok(0)
}

/// `bschema discover <data.ldif>` — mines a bounding-schema from the
/// instance (§6.2) and emits it as **pure schema DSL**, nothing else:
/// the output is directly valid as a `SCHEMA PROPOSE` payload
/// (`bschema discover data.ldif | bschema client <addr> schema propose
/// /dev/stdin`) or a `bschema serve` schema file. `suggest-schema` is
/// the human-facing variant with a provenance header.
fn cmd_discover(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut ldif_path: Option<&str> = None;
    let mut options = bschema_core::discover::DiscoveryOptions::default();
    for arg in args {
        match arg.as_str() {
            "--forbidden" => options.forbidden = true,
            "--required-classes" => options.required_classes = true,
            path if !path.starts_with("--") => ldif_path = Some(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let ldif_path = ldif_path.ok_or_else(|| usage_error("discover needs a data.ldif"))?;
    let dir = load_ldif(ldif_path, None)?;
    let suggested = bschema_core::discover::suggest_schema(&dir, &options);
    // The emitted DSL must round-trip: parse back and accept its own
    // source instance, or it would be refused as a PROPOSE payload.
    let report = LegalityChecker::new(&suggested).check(&dir);
    debug_assert!(report.is_legal(), "discovery invariant: {report}");
    out.push_str(&print_schema(&suggested, None));
    Ok(0)
}

/// One grammar for evolution steps everywhere: `bschema evolve`
/// arguments parse through the same [`plan::parse_step_words`] the
/// server's `SCHEMA PROPOSE` step lines go through, so anything the
/// CLI accepts offline is also a valid online proposal (and vice
/// versa) — including the relaxing `add-class` / `add-aux` /
/// `allow-aux` forms.
fn parse_step(words: &[String]) -> Result<Evolution, CliError> {
    let words: Vec<&str> = words.iter().map(String::as_str).collect();
    bschema_core::evolution::plan::parse_step_words(&words)
        .map_err(|e| usage_error(format!("{e}; see `bschema help`")))
}

/// `bschema serve <schema.bs> [data.ldif] [flags]` — runs the wire
/// server until a client sends `SHUTDOWN`. The listening address is
/// announced on **stderr** immediately (stdout is buffered until exit)
/// and optionally written to `--port-file` for scripts; request metrics
/// land in the buffered output after the drain when `--metrics[=json]`
/// is given.
fn cmd_serve(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut obs = ObsOpts::default();
    let mut limits = LimitOpts::default();
    let mut sequential = false;
    let mut addr = "127.0.0.1:0".to_owned();
    let mut port_file: Option<&str> = None;
    let mut threads = 4usize;
    let mut queue_depth = 64usize;
    let mut shards = 1usize;
    let mut journal_path: Option<&str> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut follow: Option<String> = None;
    let mut ship_interval_ms = 250u64;
    let mut monitor_interval_ms: Option<u64> = None;
    let mut slo_spec: Option<&str> = None;
    let mut audit_path: Option<&str> = None;
    let mut inject_site: Option<(String, u64)> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    let parse_num = |flag: &str, word: &str| {
        word.parse::<usize>()
            .map_err(|_| usage_error(format!("{flag} needs a number, got {word:?}")))
    };
    while let Some(arg) = it.next() {
        if obs.accept(arg) || limits.accept(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--sequential" => sequential = true,
            "--addr" => addr = next_value(&mut it, "--addr")?.to_owned(),
            "--port-file" => port_file = Some(next_value(&mut it, "--port-file")?),
            "--threads" => threads = parse_num("--threads", next_value(&mut it, "--threads")?)?,
            "--queue-depth" => {
                queue_depth = parse_num("--queue-depth", next_value(&mut it, "--queue-depth")?)?
            }
            "--shards" => shards = parse_num("--shards", next_value(&mut it, "--shards")?)?,
            "--journal" => journal_path = Some(next_value(&mut it, "--journal")?),
            "--checkpoint-every" => {
                let word = next_value(&mut it, "--checkpoint-every")?;
                let n = word.parse::<u64>().map_err(|_| {
                    usage_error(format!("--checkpoint-every needs a commit count, got {word:?}"))
                })?;
                checkpoint_every = Some(n.max(1));
            }
            "--follow" => follow = Some(next_value(&mut it, "--follow")?.to_owned()),
            "--ship-interval" => {
                let word = next_value(&mut it, "--ship-interval")?;
                let ms = word.parse::<u64>().map_err(|_| {
                    usage_error(format!("--ship-interval needs milliseconds, got {word:?}"))
                })?;
                ship_interval_ms = ms.max(10);
            }
            "--monitor-interval" => {
                let word = next_value(&mut it, "--monitor-interval")?;
                let ms = word.parse::<u64>().map_err(|_| {
                    usage_error(format!("--monitor-interval needs milliseconds, got {word:?}"))
                })?;
                monitor_interval_ms = Some(ms.max(10));
            }
            "--slo" => slo_spec = Some(next_value(&mut it, "--slo")?),
            "--audit" => audit_path = Some(next_value(&mut it, "--audit")?),
            "--inject-fault-site" => {
                let word = next_value(&mut it, "--inject-fault-site")?;
                let (site, occurrence) = match word.rsplit_once(':') {
                    Some((site, occ)) if occ.chars().all(|c| c.is_ascii_digit()) => (
                        site.to_owned(),
                        occ.parse()
                            .map_err(|_| usage_error(format!("bad occurrence in {word:?}")))?,
                    ),
                    _ => (word.to_owned(), 0),
                };
                inject_site = Some((site, occurrence));
            }
            path if !path.starts_with("--") => positional.push(path),
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let (schema_path, data_path) = match positional[..] {
        [schema] => (schema, None),
        [schema, data] => (schema, Some(data)),
        _ => return Err(usage_error("serve takes <schema.bs> [data.ldif]")),
    };
    let parsed = load_schema(schema_path)?;
    // Socket bytes are untrusted: unset limit flags tighten to strict.
    let ldif_limits = limits.ldif_limits(LdifLimits::strict());
    let dir = match data_path {
        Some(path) => load_ldif_limited(path, Some(&parsed), &ldif_limits)?,
        None => DirectoryInstance::new(parsed.registry.clone()),
    };
    let options =
        if sequential { LegalityOptions::sequential() } else { LegalityOptions::parallel(0) };
    // `--follow <addr>` turns this process into a read replica: the
    // initial state bootstraps from the primary's checkpoint, writes
    // are refused with the stable `read-only` code, and a ship loop
    // keeps the replica fed from the primary's journal.
    let mut follow_ctx: Option<(
        Arc<ReplicationState>,
        u64,
        bschema_core::schema::DirectorySchema,
    )> = None;
    let base_service = if let Some(primary) = &follow {
        if journal_path.is_some() || shards > 1 || data_path.is_some() {
            return Err(usage_error(
                "--follow replicas bootstrap from the primary; drop data.ldif, --journal, and --shards",
            ));
        }
        let (managed, cursor) =
            Follower::bootstrap_state(primary, &parsed.schema).map_err(|e| CliError {
                message: format!("cannot bootstrap from primary {primary:?}: {e}"),
                code: 1,
            })?;
        let replication = Arc::new(ReplicationState::default());
        // Track the schema the bootstrap actually restored under — the
        // primary may have evolved past the schema file this replica
        // was launched with.
        follow_ctx = Some((replication.clone(), cursor, managed.schema().clone()));
        DirectoryService::new(managed).with_read_only().with_replication(replication)
    } else if shards > 1 {
        // `--shards N` partitions the forest by top-level subtree (the
        // Theorem 4.1 transaction unit): writes to distinct shards commit
        // concurrently, cross-shard transactions take the 2-phase path.
        DirectoryService::new_sharded(parsed.schema.clone(), dir, shards)
            .map_err(|e| CliError { message: e.to_string(), code: 1 })?
    } else {
        let managed = ManagedDirectory::with_instance(parsed.schema.clone(), dir)
            .map_err(|e| CliError { message: e.to_string(), code: 1 })?
            .with_options(options);
        DirectoryService::new(managed)
    };

    let recorder = Arc::new(Recorder::new());
    let plan = inject_site.map(|(site, occurrence)| {
        silence_injected_panics();
        Arc::new(FaultPlan::fail_at_site(site, occurrence).with_inner(recorder.clone()))
    });
    let probe: Arc<dyn Probe + Send + Sync> = match &plan {
        Some(plan) => plan.clone(),
        None => recorder.clone(),
    };
    // `--trace` turns on the flight recorder: the server retains the 16
    // most recent and 16 slowest completed request span trees, queryable
    // over the wire with `bschema client <addr> trace`.
    let flight = obs.trace.then(|| Arc::new(FlightRecorder::new(16)));
    let mut service = base_service
        .with_limits(ServiceLimits {
            ldif: ldif_limits,
            filter_depth: limits.filter_depth(),
            wire: bschema_server::WireLimits::default(),
        })
        .with_probe(probe)
        .with_recorder(recorder.clone());
    if let Some(flight) = &flight {
        service = service.with_flight_recorder(flight.clone());
    }
    // `--monitor-interval` / `--slo` switch on the health plane: a
    // sampler thread ticks the registry into a ring (`HEALTH`, `WATCH`,
    // `bschema top`), and with an SLO attached each tick folds the
    // window into an error-budget burn rate with edge-triggered alerts.
    if monitor_interval_ms.is_some() || slo_spec.is_some() {
        let slo = slo_spec
            .map(SloPolicy::parse)
            .transpose()
            .map_err(|e| usage_error(format!("--slo: {e}")))?;
        let monitor = Arc::new(Monitor::new(MonitorConfig {
            interval: std::time::Duration::from_millis(monitor_interval_ms.unwrap_or(1000)),
            slo,
            audit_path: audit_path.map(std::path::PathBuf::from),
            ..MonitorConfig::default()
        }));
        service = service.with_monitor(monitor);
    } else if audit_path.is_some() {
        return Err(usage_error("--audit needs --monitor-interval or --slo"));
    }
    if let Some(path) = journal_path {
        let (recovered, replayed) = service
            .with_journal(path)
            .map_err(|e| usage_error(format!("journal {path:?}: {e}")))?;
        service = recovered;
        if replayed > 0 {
            let _ = writeln!(out, "journal: replayed {replayed} committed tx(s)");
        }
    }
    if let Some(every) = checkpoint_every {
        if journal_path.is_none() {
            return Err(usage_error("--checkpoint-every needs --journal"));
        }
        service = service.with_checkpoint_every(every);
    }

    let config =
        ServerConfig { addr: addr.clone(), threads, queue_depth, ..ServerConfig::default() };
    let service = Arc::new(service);
    let handle = Server::spawn(service.clone(), config)
        .map_err(|e| usage_error(format!("cannot serve on {addr:?}: {e}")))?;
    let bound = handle.addr();
    match &follow {
        Some(primary) => eprintln!(
            "SERVING {bound} (read replica of {primary}, {threads} worker(s), queue depth {queue_depth})"
        ),
        None => eprintln!(
            "SERVING {bound} ({threads} worker(s), queue depth {queue_depth}, {shards} shard(s))"
        ),
    }
    if let Some(path) = port_file {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| usage_error(format!("cannot write port file {path:?}: {e}")))?;
    }
    // The ship loop runs beside the acceptor until the server drains.
    let follower_thread = match (follow, follow_ctx) {
        (Some(primary), Some((replication, cursor, follower_schema))) => {
            let mut follower =
                Follower::attach(primary, follower_schema, service.clone(), replication, cursor);
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop_in = stop.clone();
            let interval = std::time::Duration::from_millis(ship_interval_ms);
            let thread = std::thread::spawn(move || follower.run(interval, &stop_in));
            Some((stop, thread))
        }
        _ => None,
    };
    handle.wait();
    if let Some((stop, thread)) = follower_thread {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = thread.join();
    }
    let _ = writeln!(out, "STOPPED {bound}");
    if let Some(plan) = &plan {
        let _ = writeln!(
            out,
            "fault plan: {} probe event(s), {} injected",
            plan.events(),
            plan.injected()
        );
    }
    obs.emit(&recorder, out);
    Ok(0)
}

/// `bschema client <addr> <action> ...` — one wire request against a
/// running server. Server refusals exit 1 with the stable code; local
/// usage problems exit 2.
fn cmd_client(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let [addr, action, rest @ ..] = args else {
        return Err(usage_error(
            "client takes <addr> ping|search|apply|modify|schema|metrics|prom|stats|trace|health|checkpoint|watch|shutdown [args]",
        ));
    };
    let connect_error =
        |e: ClientError| usage_error(format!("cannot talk to server at {addr}: {e}"));
    // Every CLI request is trace-stamped `cli-<seq>`; a traced server
    // reports the id back through `bschema client <addr> trace`, an
    // untraced (or older) one strips and ignores the token.
    let mut client = Client::connect(addr.as_str()).map_err(connect_error)?.with_trace_label("cli");
    match action.as_str() {
        "ping" => {
            let len = client.ping().map_err(connect_error)?;
            let _ = writeln!(out, "PONG: {len} entries");
            Ok(0)
        }
        "search" => {
            let mut filter: Option<&str> = None;
            let mut base: Option<&str> = None;
            let mut scope = "sub";
            let mut limit: Option<usize> = None;
            let mut explain_plan = false;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--filter" => filter = Some(next_value(&mut it, "--filter")?),
                    "--base" => base = Some(next_value(&mut it, "--base")?),
                    "--scope" => scope = next_value(&mut it, "--scope")?,
                    "--explain" => explain_plan = true,
                    "--limit" => {
                        let word = next_value(&mut it, "--limit")?;
                        limit = Some(word.parse().map_err(|_| {
                            usage_error(format!("--limit needs a number, got {word:?}"))
                        })?);
                    }
                    other => return Err(usage_error(format!("unknown option {other:?}"))),
                }
            }
            let filter = filter.ok_or_else(|| usage_error("client search needs --filter"))?;
            if explain_plan {
                return match client.search_explain(base, scope, filter, limit) {
                    Ok((count, json)) => {
                        let _ = writeln!(out, "EXPLAIN: {count} entries match");
                        let _ = writeln!(out, "{json}");
                        Ok(0)
                    }
                    Err(ClientError::Server { code, detail }) => {
                        let _ = writeln!(out, "REFUSED ({code}): {detail}");
                        Ok(1)
                    }
                    Err(e) => Err(connect_error(e)),
                };
            }
            match client.search(base, scope, filter, limit) {
                Ok(ldif) => {
                    let _ = writeln!(out, "{} entries match", ldif.matches("dn: ").count());
                    out.push_str(&ldif);
                    Ok(0)
                }
                Err(ClientError::Server { code, detail }) => {
                    let _ = writeln!(out, "REFUSED ({code}): {detail}");
                    Ok(1)
                }
                Err(e) => Err(connect_error(e)),
            }
        }
        "apply" => {
            let [tx_path] = rest else {
                return Err(usage_error("client apply takes <tx.ldif>"));
            };
            match client.apply_ldif(&read_file(tx_path)?) {
                Ok(receipt) => {
                    let _ = writeln!(
                        out,
                        "APPLIED: {} op(s); directory now has {} entries (legal)",
                        receipt.ops, receipt.len
                    );
                    Ok(0)
                }
                Err(ClientError::Server { code, detail }) => {
                    let _ = writeln!(out, "REJECTED ({code}): {detail}");
                    Ok(1)
                }
                Err(e) => Err(connect_error(e)),
            }
        }
        "modify" => {
            let [mods_path] = rest else {
                return Err(usage_error("client modify takes <mods.txt>"));
            };
            match client.modify_lines(&read_file(mods_path)?) {
                Ok(len) => {
                    let _ = writeln!(out, "MODIFIED: directory has {len} entries (legal)");
                    Ok(0)
                }
                Err(ClientError::Server { code, detail }) => {
                    let _ = writeln!(out, "REJECTED ({code}): {detail}");
                    Ok(1)
                }
                Err(e) => Err(connect_error(e)),
            }
        }
        "checkpoint" => match client.checkpoint() {
            Ok(seqs) => {
                let joined = seqs.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
                let _ = writeln!(out, "CHECKPOINTED: journal truncated, covered seq(s) {joined}");
                Ok(0)
            }
            Err(ClientError::Server { code, detail }) => {
                let _ = writeln!(out, "REFUSED ({code}): {detail}");
                Ok(1)
            }
            Err(e) => Err(connect_error(e)),
        },
        "metrics" => {
            let json = client.metrics_json().map_err(connect_error)?;
            let _ = writeln!(out, "{json}");
            Ok(0)
        }
        "prom" => {
            let text = client.metrics_prom().map_err(connect_error)?;
            out.push_str(&text);
            Ok(0)
        }
        "health" => match client.health_json() {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
                Ok(0)
            }
            Err(ClientError::Server { code, detail }) => {
                let _ = writeln!(out, "REFUSED ({code}): {detail}");
                Ok(1)
            }
            Err(e) => Err(connect_error(e)),
        },
        "watch" => {
            let mut ticks = 5u64;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--ticks" => {
                        let word = next_value(&mut it, "--ticks")?;
                        ticks = word.parse().map_err(|_| {
                            usage_error(format!("--ticks needs a number, got {word:?}"))
                        })?;
                    }
                    other => return Err(usage_error(format!("unknown option {other:?}"))),
                }
            }
            match client.watch(ticks, |seq, json| {
                println!("TICK {seq} {json}");
                true
            }) {
                Ok(streamed) => {
                    let _ = writeln!(out, "watch: {streamed} tick(s)");
                    Ok(0)
                }
                Err(ClientError::Server { code, detail }) => {
                    let _ = writeln!(out, "REFUSED ({code}): {detail}");
                    Ok(1)
                }
                Err(e) => Err(connect_error(e)),
            }
        }
        "stats" => match client.stats_json() {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
                Ok(0)
            }
            Err(ClientError::Server { code, detail }) => {
                let _ = writeln!(out, "REFUSED ({code}): {detail}");
                Ok(1)
            }
            Err(e) => Err(connect_error(e)),
        },
        "trace" => match client.trace_json() {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
                Ok(0)
            }
            Err(ClientError::Server { code, detail }) => {
                let _ = writeln!(out, "REFUSED ({code}): {detail}");
                Ok(1)
            }
            Err(e) => Err(connect_error(e)),
        },
        "shutdown" => {
            client.shutdown_server().map_err(connect_error)?;
            let _ = writeln!(out, "server draining");
            Ok(0)
        }
        "schema" => {
            let report = |out: &mut String, result: Result<String, ClientError>| match result {
                Ok(json) => {
                    let _ = writeln!(out, "{json}");
                    Ok(0)
                }
                Err(ClientError::Server { code, detail }) => {
                    let _ = writeln!(out, "REFUSED ({code}): {detail}");
                    Ok(1)
                }
                Err(e) => Err(connect_error(e)),
            };
            match rest {
                [sub, args @ ..] if sub == "propose" => {
                    let payload = match args {
                        [flag, words @ ..] if flag == "--step" && !words.is_empty() => {
                            words.join(" ")
                        }
                        [path] => read_file(path)?,
                        _ => {
                            return Err(usage_error(
                                "client schema propose takes <payload-file> or --step <word>...",
                            ))
                        }
                    };
                    report(out, client.schema_propose(&payload))
                }
                [sub] if sub == "check" => report(out, client.schema_check()),
                [sub] if sub == "status" => report(out, client.schema_status()),
                [sub] if sub == "commit" => report(out, client.schema_commit()),
                [sub] if sub == "abort" => report(out, client.schema_abort()),
                _ => Err(usage_error(
                    "client schema takes propose <payload-file>|--step <word>... | check | status | commit | abort",
                )),
            }
        }
        other => Err(usage_error(format!("unknown client action {other:?}"))),
    }
}

/// `bschema top <addr> [--once] [--ticks <n>]` — the operator view: a
/// `HEALTH` header (verdict, window, per-shard signals) followed by a
/// live per-verb latency table fed from the server's `WATCH` stream.
/// `--once` renders a single tick into the buffered output for
/// scripting; live mode prints each tick as it lands.
fn cmd_top(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let [addr, rest @ ..] = args else {
        return Err(usage_error("top takes <addr> [--once] [--ticks <n>]"));
    };
    let mut once = false;
    let mut ticks: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--ticks" => {
                let word = next_value(&mut it, "--ticks")?;
                ticks =
                    Some(word.parse().map_err(|_| {
                        usage_error(format!("--ticks needs a number, got {word:?}"))
                    })?);
            }
            other => return Err(usage_error(format!("unknown option {other:?}"))),
        }
    }
    let want = ticks.unwrap_or(if once { 1 } else { 30 }).max(1);
    let connect_error =
        |e: ClientError| usage_error(format!("cannot talk to server at {addr}: {e}"));
    let mut client = Client::connect(addr.as_str()).map_err(connect_error)?.with_trace_label("top");
    let health = match client.health_json() {
        Ok(json) => json,
        Err(ClientError::Server { code, detail }) => {
            let _ = writeln!(out, "REFUSED ({code}): {detail}");
            return Ok(1);
        }
        Err(e) => return Err(connect_error(e)),
    };
    let header = render_health(&health);
    if once {
        out.push_str(&header);
    } else {
        print!("{header}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
    }
    let mut rendered = String::new();
    let streamed = match client.watch(want, |seq, json| {
        let frame = render_tick(seq, json);
        if once {
            rendered.push_str(&frame);
        } else {
            print!("{frame}");
            let _ = std::io::Write::flush(&mut std::io::stdout());
        }
        true
    }) {
        Ok(streamed) => streamed,
        Err(ClientError::Server { code, detail }) => {
            let _ = writeln!(out, "REFUSED ({code}): {detail}");
            return Ok(1);
        }
        Err(e) => return Err(connect_error(e)),
    };
    out.push_str(&rendered);
    let _ = writeln!(out, "top: {streamed} tick(s)");
    Ok(0)
}

/// A number already validated as JSON: integral values print without
/// the trailing `.000000` the wire format carries for rates.
fn fmt_top_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Renders a `HEALTH` snapshot as the `top` header. Falls back to the
/// raw JSON if the payload does not parse (older server, truncation).
fn render_health(json: &str) -> String {
    let Some(v) = Value::parse(json) else {
        return format!("{json}\n");
    };
    let mut s = String::new();
    let verdict = v.get("verdict").and_then(Value::as_str).unwrap_or("?");
    let shards = v.get("shards_total").and_then(Value::as_u64).unwrap_or(0);
    let ticks = v.get("ticks").and_then(Value::as_u64).unwrap_or(0);
    let _ = writeln!(
        s,
        "health: {} ({shards} shard(s), {ticks} tick(s) retained)",
        verdict.to_uppercase()
    );
    let requests = v.path("window.requests").and_then(Value::as_u64).unwrap_or(0);
    let req_per_s = v.path("window.req_per_s").and_then(Value::as_f64).unwrap_or(0.0);
    let p99 = v.path("window.p99_us").and_then(Value::as_u64).unwrap_or(0);
    let err = v.path("window.err_rate").and_then(Value::as_f64).unwrap_or(0.0);
    let _ = writeln!(
        s,
        "window: {requests} request(s) ({}/s), p99 {p99}us, err-rate {}",
        fmt_top_num(req_per_s),
        fmt_top_num(err),
    );
    if let Some(burn) = v.path("slo.burn").and_then(Value::as_f64) {
        let alerts = v.path("slo.alerts").and_then(Value::as_u64).unwrap_or(0);
        let _ = writeln!(s, "slo: burn {} ({alerts} alert(s) fired)", fmt_top_num(burn));
    }
    if let Some(fit) = v.get("fitness") {
        let legal = fit.get("legal_rate").and_then(Value::as_f64).unwrap_or(1.0);
        let committed = fit.get("committed").and_then(Value::as_u64).unwrap_or(0);
        let _ = writeln!(s, "fitness: legal-rate {} ({committed} committed)", fmt_top_num(legal));
    }
    if let Some(signals) = v.get("signals").and_then(Value::items) {
        let _ = writeln!(
            s,
            "{:<18} {:>12} {:>12} {:>12} {:>6}",
            "signal", "value", "warn", "crit", "status"
        );
        for sig in signals {
            let name = sig.get("name").and_then(Value::as_str).unwrap_or("?");
            let value = sig.get("value").and_then(Value::as_f64).unwrap_or(0.0);
            let warn = sig.get("warn").and_then(Value::as_f64).unwrap_or(0.0);
            let crit = sig.get("crit").and_then(Value::as_f64).unwrap_or(0.0);
            let status = sig.get("status").and_then(Value::as_str).unwrap_or("?");
            let _ = writeln!(
                s,
                "{name:<18} {:>12} {:>12} {:>12} {status:>6}",
                fmt_top_num(value),
                fmt_top_num(warn),
                fmt_top_num(crit),
            );
        }
    }
    if let Some(shards) = v.get("shards").and_then(Value::items) {
        for shard in shards {
            let k = shard.get("shard").and_then(Value::as_u64).unwrap_or(0);
            let status = shard.get("status").and_then(Value::as_str).unwrap_or("?");
            let mut parts = Vec::new();
            if let Some(signals) = shard.get("signals").and_then(Value::items) {
                for sig in signals {
                    let name = sig.get("name").and_then(Value::as_str).unwrap_or("?");
                    let value = sig.get("value").and_then(Value::as_f64).unwrap_or(0.0);
                    parts.push(format!("{name}={}", fmt_top_num(value)));
                }
            }
            let _ = writeln!(s, "shard {k} [{status}] {}", parts.join(" "));
        }
    }
    s
}

/// Renders one `WATCH` tick: the burn line plus a per-verb latency
/// table and per-shard 2PC counters from the tick's metric delta.
fn render_tick(seq: u64, json: &str) -> String {
    let Some(v) = Value::parse(json) else {
        return format!("TICK {seq} {json}\n");
    };
    let mut s = String::new();
    let burn = v.get("burn").and_then(Value::as_f64).unwrap_or(0.0);
    let alerts = v.get("alerts").and_then(Value::as_u64).unwrap_or(0);
    let dur = v.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
    let _ =
        writeln!(s, "tick {seq}: interval {dur}us, burn {}, {alerts} alert(s)", fmt_top_num(burn));
    let mut verb_rows = Vec::new();
    if let Some(hists) = v.path("delta.histograms").and_then(Value::entries) {
        for (name, h) in hists {
            if let Some(verb) = name.strip_prefix("server.request_us.") {
                let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
                let p50 = h.get("p50").and_then(Value::as_u64).unwrap_or(0);
                let p99 = h.get("p99").and_then(Value::as_u64).unwrap_or(0);
                let max = h.get("max").and_then(Value::as_u64).unwrap_or(0);
                verb_rows.push(format!("  {verb:<10} {count:>8} {p50:>10} {p99:>10} {max:>10}"));
            }
        }
    }
    if !verb_rows.is_empty() {
        let _ = writeln!(
            s,
            "  {:<10} {:>8} {:>10} {:>10} {:>10}",
            "verb", "count", "p50_us", "p99_us", "max_us"
        );
        for row in verb_rows {
            let _ = writeln!(s, "{row}");
        }
    }
    let mut shard_2pc: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    if let Some(counters) = v.path("delta.counters").and_then(Value::entries) {
        for (name, value) in counters {
            let n = value.as_u64().unwrap_or(0);
            if let Some(k) = name.strip_prefix("sharded.prepare.shard") {
                shard_2pc.entry(k.to_owned()).or_default().0 += n;
            } else if let Some(k) = name.strip_prefix("sharded.commit.shard") {
                shard_2pc.entry(k.to_owned()).or_default().1 += n;
            }
        }
    }
    for (k, (prepares, commits)) in &shard_2pc {
        let _ = writeln!(s, "  shard {k}: prepares={prepares} commits={commits}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "\
schema \"t\"
class orgGroup extends top
class organization extends orgGroup
class orgUnit extends orgGroup
class person extends top
  require uid name
require-class person
require orgGroup descendant person
forbid person child top
";

    const LDIF: &str = "\
dn: o=acme
objectClass: organization
objectClass: orgGroup
objectClass: top

dn: uid=a,o=acme
objectClass: person
objectClass: top
uid: a
name: a
";

    fn write_tmp(name: &str, content: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("bschema-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_ok(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let code = run(&args, &mut out).unwrap_or_else(|e| panic!("cli error: {e}"));
        (code, out)
    }

    #[test]
    fn check_schema_consistent() {
        let schema = write_tmp("s1.bs", SCHEMA);
        let (code, out) = run_ok(&["check-schema", &schema]);
        assert_eq!(code, 0);
        assert!(out.contains("CONSISTENT"));
    }

    #[test]
    fn check_schema_inconsistent() {
        let schema = write_tmp(
            "s2.bs",
            "class a extends top\nclass b extends top\nrequire-class a\nrequire a child b\nrequire b descendant a\n",
        );
        let (code, out) = run_ok(&["check-schema", &schema]);
        assert_eq!(code, 1);
        assert!(out.contains("INCONSISTENT"));
        assert!(out.contains("◇∅"));
    }

    #[test]
    fn validate_legal_and_illegal() {
        let schema = write_tmp("s3.bs", SCHEMA);
        let data = write_tmp("d3.ldif", LDIF);
        let (code, out) = run_ok(&["validate", &schema, &data]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("LEGAL"));

        let bad = LDIF.replace("name: a\n", "");
        let data = write_tmp("d3b.ldif", &bad);
        let (code, out) = run_ok(&["validate", &schema, &data]);
        assert_eq!(code, 1);
        assert!(out.contains("ILLEGAL"));
        assert!(out.contains("dn: uid=a,o=acme"), "{out}");
    }

    #[test]
    fn witness_output() {
        let schema = write_tmp("s4.bs", SCHEMA);
        let (code, out) = run_ok(&["witness", &schema]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verified legal"));
        assert!(out.contains("person"));
    }

    #[test]
    fn search_with_filter_and_scope() {
        let schema = write_tmp("s5.bs", SCHEMA);
        let data = write_tmp("d5.ldif", LDIF);
        let (code, out) =
            run_ok(&["search", &data, "--schema", &schema, "--filter", "(objectClass=person)"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("1 entries match"));
        assert!(out.contains("dn: uid=a,o=acme"));

        let (code, out) = run_ok(&[
            "search",
            &data,
            "--filter",
            "(objectClass=person)",
            "--base",
            "o=acme",
            "--scope",
            "one",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("dn: uid=a,o=acme"));
    }

    #[test]
    fn print_schema_normalises() {
        let schema = write_tmp("s6.bs", SCHEMA);
        let (code, out) = run_ok(&["print-schema", &schema]);
        assert_eq!(code, 0);
        assert!(out.contains("require orgGroup descendant person"));
        // Output reparses.
        assert!(parse_schema(&out).is_ok());
    }

    #[test]
    fn evolve_accepts_and_refuses() {
        let schema = write_tmp("s7.bs", SCHEMA);
        let data = write_tmp("d7.ldif", LDIF);
        let (code, out) = run_ok(&["evolve", &schema, &data, "allow-attr", "person", "mail"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("relaxing"));

        let (code, out) = run_ok(&["evolve", &schema, &data, "require-attr", "person", "mail"]);
        assert_eq!(code, 1);
        assert!(out.contains("REFUSED"));
    }

    #[test]
    fn suggest_schema_output_reparses() {
        let data = write_tmp("d8.ldif", LDIF);
        let (code, out) = run_ok(&["suggest-schema", &data, "--forbidden"]);
        assert_eq!(code, 0, "{out}");
        let body: String =
            out.lines().filter(|l| !l.starts_with('#')).collect::<Vec<_>>().join("\n");
        let parsed = parse_schema(&body).expect("suggested schema reparses");
        assert!(parsed.schema.classes().len() > 1);
        // Mined regularity: the person under the org needs its org ancestor.
        assert!(body.contains("require person"), "{body}");
    }

    #[test]
    fn check_emits_trace_and_json_metrics() {
        let schema = write_tmp("s9.bs", SCHEMA);
        let data = write_tmp("d9.ldif", LDIF);
        let (code, out) = run_ok(&["check", &data, &schema, "--trace", "--metrics=json"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("LEGAL"));
        assert!(out.contains("legality.check"), "span tree missing: {out}");
        let last = out.lines().last().unwrap();
        assert!(bschema_obs::json::is_valid(last), "last line is not JSON: {last}");
        assert!(last.contains("\"legality.entries_content_checked\":2"), "{last}");
        assert!(last.contains("\"legality.structure_queries\""), "{last}");
        assert!(last.contains("\"spans\""), "{last}");
    }

    #[test]
    fn check_explain_census_on_the_quickstart_example() {
        // The shipped quickstart pair IS Figures 1–3, so the EXPLAIN
        // census is the paper's: 9 Figure 4 queries, the three ◇-class
        // queries matching 1 + 2 + 3 = 6 entries, every violation query
        // empty (the same totals tests/observability.rs pins).
        let schema = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/quickstart.bs");
        let data = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/quickstart.ldif");
        let (code, out) = run_ok(&["check", data, schema, "--explain"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("LEGAL"), "{out}");
        assert!(out.contains("EXPLAIN: 9 structure queries"), "{out}");
        // Per-query plan lines show the access path and the counts.
        assert!(out.contains("index-reused"), "{out}");
        assert!(out.contains("scanned="), "{out}");
        let totals = out.lines().find(|l| l.starts_with("EXPLAIN totals:")).expect("totals line");
        assert!(totals.contains("9 queries"), "{totals}");
        assert!(totals.ends_with("matched=6"), "{totals}");
    }

    #[test]
    fn check_metrics_text_and_sequential() {
        let schema = write_tmp("s10.bs", SCHEMA);
        let data = write_tmp("d10.ldif", LDIF);
        let (code, out) = run_ok(&["check", &data, &schema, "--sequential", "--metrics"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("legality.entries_content_checked"), "{out}");
    }

    #[test]
    fn apply_reports_delta_queries_and_rollback() {
        let schema = write_tmp("s11.bs", SCHEMA);
        let data = write_tmp("d11.ldif", LDIF);
        // Legal insertion: a second person under the org.
        let tx = write_tmp(
            "t11.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &tx, "--metrics=json"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("APPLIED"), "{out}");
        let last = out.lines().last().unwrap();
        assert!(bschema_obs::json::is_valid(last), "{last}");
        assert!(last.contains("incremental.delta_query."), "{last}");
        assert!(last.contains("\"managed.tx_applied\":1"), "{last}");

        // Illegal insertion (person under person) rolls back with diagnostics.
        let bad = write_tmp(
            "t11b.ldif",
            "dn: uid=c,uid=a,o=acme\nobjectClass: person\nobjectClass: top\nuid: c\nname: c\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &bad, "--metrics=json"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("ROLLED BACK"), "{out}");
        assert!(out.contains("forbidden"), "diagnostics survived rollback: {out}");
        let last = out.lines().last().unwrap();
        assert!(last.contains("\"managed.tx_rolled_back\":1"), "{last}");
    }

    #[test]
    fn apply_supports_changetype_delete() {
        let schema = write_tmp("s12.bs", SCHEMA);
        let data = write_tmp("d12.ldif", LDIF);
        // Deleting the only person violates require-class person → rollback.
        let tx = write_tmp("t12.ldif", "dn: uid=a,o=acme\nchangetype: delete\n");
        let (code, out) = run_ok(&["apply", &schema, &data, &tx]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("ROLLED BACK"), "{out}");
    }

    #[test]
    fn journaled_apply_then_recover_replays_committed_prefix() {
        let schema = write_tmp("s14.bs", SCHEMA);
        let data = write_tmp("d14.ldif", LDIF);
        let journal = write_tmp("j14.jrn", "");

        // Legal transaction: begin + ops + commit land in the journal.
        let good = write_tmp(
            "t14.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &good, "--journal", &journal]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("APPLIED"), "{out}");

        // Illegal transaction: rolled back, so the journal gains an
        // uncommitted begin record that recovery must discard.
        let bad = write_tmp(
            "t14b.ldif",
            "dn: uid=c,uid=a,o=acme\nobjectClass: person\nobjectClass: top\nuid: c\nname: c\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &bad, "--journal", &journal]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("ROLLED BACK"), "{out}");

        let (code, out) = run_ok(&["recover", &schema, &data, &journal]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("RECOVERED: replayed 1 committed tx(s), discarded 1 uncommitted"),
            "{out}"
        );
        assert!(out.contains("directory has 3 entries"), "{out}");
        assert!(out.contains("LEGAL"), "{out}");
    }

    #[test]
    fn recover_repairs_a_torn_journal_tail() {
        let schema = write_tmp("s15.bs", SCHEMA);
        let data = write_tmp("d15.ldif", LDIF);
        let journal = write_tmp("j15.jrn", "");
        let good = write_tmp(
            "t15.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &good, "--journal", &journal]);
        assert_eq!(code, 0, "{out}");

        // Simulate a crash mid-write: chop the tail off the commit record.
        let text = std::fs::read_to_string(&journal).unwrap();
        std::fs::write(&journal, &text[..text.len() - 3]).unwrap();

        // The commit record is torn, so its transaction is uncommitted.
        let (code, out) = run_ok(&["recover", &schema, &data, &journal]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("torn tail"), "{out}");
        assert!(out.contains("replayed 0 committed tx(s), discarded 1 uncommitted"), "{out}");

        // A journaled apply on the torn file repairs it in place, then a
        // fresh transaction commits and recovery replays exactly it.
        let (code, out) = run_ok(&["apply", &schema, &data, &good, "--journal", &journal]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("repaired torn tail"), "{out}");
        let (code, out) = run_ok(&["recover", &schema, &data, &journal]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("replayed 1 committed tx(s)"), "{out}");
    }

    #[test]
    fn injected_fault_rolls_back_and_lands_in_metrics() {
        let schema = write_tmp("s16.bs", SCHEMA);
        let data = write_tmp("d16.ldif", LDIF);
        let tx = write_tmp(
            "t16.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&[
            "apply",
            &schema,
            &data,
            &tx,
            "--sequential",
            "--inject-fault",
            "0",
            "--metrics=json",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("PANICKED (rolled back, instance unchanged)"), "{out}");
        assert!(out.contains("1 injected (rolled back)"), "{out}");
        let last = out.lines().last().unwrap();
        assert!(last.contains("\"faults.injected\":1"), "{last}");
    }

    #[test]
    fn far_future_fault_never_fires_and_apply_survives() {
        let schema = write_tmp("s17.bs", SCHEMA);
        let data = write_tmp("d17.ldif", LDIF);
        let tx = write_tmp(
            "t17.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&[
            "apply",
            &schema,
            &data,
            &tx,
            "--sequential",
            "--inject-fault",
            "9999999",
            "--metrics=json",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("APPLIED"), "{out}");
        assert!(out.contains("0 injected (none fired)"), "{out}");
    }

    #[test]
    fn consistency_emits_rule_counters() {
        let schema = write_tmp("s13.bs", SCHEMA);
        let (code, out) = run_ok(&["consistency", &schema, "--trace", "--metrics=json"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("CONSISTENT"));
        assert!(out.contains("consistency.check"), "{out}");
        let last = out.lines().last().unwrap();
        assert!(bschema_obs::json::is_valid(last), "{last}");
        assert!(last.contains("\"consistency.rule.schema\":3"), "{last}");
        assert!(last.contains("\"consistency.closure_size\""), "{last}");
    }

    #[test]
    fn serve_and_client_roundtrip() {
        let schema = write_tmp("s18.bs", SCHEMA);
        let data = write_tmp("d18.ldif", LDIF);
        let port_file = write_tmp("p18.port", "");
        std::fs::remove_file(&port_file).unwrap();

        let server = {
            let schema = schema.clone();
            let data = data.clone();
            let port_file = port_file.clone();
            std::thread::spawn(move || {
                run_ok(&[
                    "serve",
                    &schema,
                    &data,
                    "--threads",
                    "2",
                    "--port-file",
                    &port_file,
                    "--metrics=json",
                ])
            })
        };
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.ends_with('\n') {
                    break text.trim().to_owned();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let (code, out) = run_ok(&["client", &addr, "ping"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("PONG: 2 entries"), "{out}");

        let tx = write_tmp(
            "t18.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["client", &addr, "apply", &tx]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("directory now has 3 entries"), "{out}");

        // An illegal transaction is refused with the stable code.
        let bad = write_tmp(
            "t18b.ldif",
            "dn: uid=c,uid=a,o=acme\nobjectClass: person\nobjectClass: top\nuid: c\nname: c\n",
        );
        let (code, out) = run_ok(&["client", &addr, "apply", &bad]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("REJECTED (rolled-back)"), "{out}");

        let (code, out) = run_ok(&["client", &addr, "search", "--filter", "(objectClass=person)"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 entries match"), "{out}");
        assert!(out.contains("dn: uid=b,o=acme"), "{out}");

        let (code, out) = run_ok(&["client", &addr, "metrics"]);
        assert_eq!(code, 0, "{out}");
        assert!(bschema_obs::json::is_valid(out.trim()), "{out}");
        assert!(out.contains("\"server.tx_committed\":1"), "{out}");

        let (code, _) = run_ok(&["client", &addr, "shutdown"]);
        assert_eq!(code, 0);
        let (code, out) = server.join().unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("STOPPED"), "{out}");
        let last = out.lines().last().unwrap();
        assert!(bschema_obs::json::is_valid(last), "{last}");
    }

    #[test]
    fn traced_serve_answers_stats_trace_and_search_explain() {
        let schema = write_tmp("s20.bs", SCHEMA);
        let data = write_tmp("d20.ldif", LDIF);
        let port_file = write_tmp("p20.port", "");
        std::fs::remove_file(&port_file).unwrap();

        let server = {
            let schema = schema.clone();
            let data = data.clone();
            let port_file = port_file.clone();
            std::thread::spawn(move || {
                run_ok(&["serve", &schema, &data, "--port-file", &port_file, "--trace"])
            })
        };
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.ends_with('\n') {
                    break text.trim().to_owned();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        // A committed transaction, stamped `cli-0` by the client CLI…
        let tx = write_tmp(
            "t20.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["client", &addr, "apply", &tx]);
        assert_eq!(code, 0, "{out}");

        // …shows up in the flight recorder with its span tree.
        let (code, out) = run_ok(&["client", &addr, "trace"]);
        assert_eq!(code, 0, "{out}");
        assert!(bschema_obs::json::is_valid(out.trim()), "{out}");
        assert!(out.contains("\"trace_id\":\"cli-0\""), "{out}");
        assert!(out.contains("\"verb\":\"TXN\""), "{out}");
        assert!(out.contains("service.journal_commit"), "{out}");

        // STATS returns deltas: a second scrape with no traffic in
        // between (beyond the scrape itself) must not repeat the TXN.
        let (code, out) = run_ok(&["client", &addr, "stats"]);
        assert_eq!(code, 0, "{out}");
        assert!(bschema_obs::json::is_valid(out.trim()), "{out}");
        assert!(out.contains("\"server.tx_committed\":1"), "{out}");
        let (code, out) = run_ok(&["client", &addr, "stats"]);
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("server.tx_committed"), "delta repeated: {out}");

        // SEARCH --explain returns the count plus the plan JSON.
        let (code, out) =
            run_ok(&["client", &addr, "search", "--filter", "(objectClass=person)", "--explain"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("EXPLAIN: 2 entries match"), "{out}");
        let json = out.lines().nth(1).expect("plan line");
        assert!(bschema_obs::json::is_valid(json), "{json}");
        assert!(json.contains("\"access\":\"index-reused\""), "{json}");

        let (code, _) = run_ok(&["client", &addr, "shutdown"]);
        assert_eq!(code, 0);
        let (code, out) = server.join().unwrap();
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn monitored_serve_answers_health_prom_watch_and_top() {
        let schema = write_tmp("s22.bs", SCHEMA);
        let data = write_tmp("d22.ldif", LDIF);
        let port_file = write_tmp("p22.port", "");
        std::fs::remove_file(&port_file).unwrap();

        let server = {
            let schema = schema.clone();
            let data = data.clone();
            let port_file = port_file.clone();
            std::thread::spawn(move || {
                run_ok(&[
                    "serve",
                    &schema,
                    &data,
                    "--trace",
                    "--port-file",
                    &port_file,
                    "--monitor-interval",
                    "25",
                    "--slo",
                    "p99=50ms,err=50%",
                ])
            })
        };
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.ends_with('\n') {
                    break text.trim().to_owned();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        // Traffic so the evaluation window has something to say.
        for _ in 0..3 {
            let (code, _) = run_ok(&["client", &addr, "ping"]);
            assert_eq!(code, 0);
        }

        let (code, out) = run_ok(&["client", &addr, "health"]);
        assert_eq!(code, 0, "{out}");
        assert!(bschema_obs::json::is_valid(out.trim()), "{out}");
        assert!(out.contains("\"verdict\""), "{out}");
        assert!(out.contains("\"slo\":{\"policy\""), "{out}");

        let (code, out) = run_ok(&["client", &addr, "prom"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# TYPE"), "{out}");
        assert!(out.contains("bschema_server_request"), "{out}");

        // WATCH streams the asked-for number of ticks, then ends.
        let (code, out) = run_ok(&["client", &addr, "watch", "--ticks", "2"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("watch: 2 tick(s)"), "{out}");

        // `top --once` renders the health header plus one tick.
        let (code, out) = run_ok(&["top", &addr, "--once"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("health: "), "{out}");
        assert!(out.contains("slo: burn "), "{out}");
        assert!(out.contains("request_p99_us"), "{out}");
        assert!(out.contains("top: 1 tick(s)"), "{out}");

        let (code, _) = run_ok(&["client", &addr, "shutdown"]);
        assert_eq!(code, 0);
        let (code, out) = server.join().unwrap();
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn top_without_monitor_is_refused() {
        let schema = write_tmp("s23.bs", SCHEMA);
        let data = write_tmp("d23.ldif", LDIF);
        let port_file = write_tmp("p23.port", "");
        std::fs::remove_file(&port_file).unwrap();

        let server = {
            let schema = schema.clone();
            let data = data.clone();
            let port_file = port_file.clone();
            std::thread::spawn(move || {
                run_ok(&["serve", &schema, &data, "--port-file", &port_file])
            })
        };
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if text.ends_with('\n') {
                    break text.trim().to_owned();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let (code, out) = run_ok(&["top", &addr, "--once"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("REFUSED (unsupported)"), "{out}");

        let (code, out) = run_ok(&["client", &addr, "health"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("REFUSED (unsupported)"), "{out}");

        let (code, _) = run_ok(&["client", &addr, "shutdown"]);
        assert_eq!(code, 0);
        server.join().unwrap();
    }

    #[test]
    fn limit_flags_gate_inputs() {
        let schema = write_tmp("s19.bs", SCHEMA);
        let data = write_tmp("d19.ldif", LDIF);
        // Two records but --max-records 1.
        let args: Vec<String> = ["validate", &schema, &data, "--max-records", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args, &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("records"), "{}", err.message);

        // A filter two levels deep but --max-filter-depth 1.
        let args: Vec<String> = [
            "search",
            &data,
            "--filter",
            "(&(uid=a)(objectClass=person))",
            "--max-filter-depth",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&args, &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("filter"), "{}", err.message);
    }

    #[test]
    fn usage_errors() {
        let mut out = String::new();
        assert!(run(&[], &mut out).is_err());
        let args = vec!["bogus".to_owned()];
        assert!(run(&args, &mut out).is_err());
        let args = vec!["help".to_owned()];
        assert_eq!(run(&args, &mut out).unwrap(), 0);
        assert!(out.contains("usage"));
    }

    #[test]
    fn recover_verify_is_a_pure_dry_run() {
        let schema = write_tmp("s24.bs", SCHEMA);
        let data = write_tmp("d24.ldif", LDIF);
        let journal = write_tmp("j24.jrn", "");
        let tx = write_tmp(
            "t24.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &tx, "--journal", &journal]);
        assert_eq!(code, 0, "{out}");

        let intact = std::fs::read_to_string(&journal).unwrap();
        let (code, out) = run_ok(&["recover", &schema, &data, &journal, "--verify"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("1 committed tx(s), 0 uncommitted"), "{out}");
        assert!(out.contains("checkpoint: none"), "{out}");
        assert!(out.contains("recovery point: full replay, 1 committed tx(s)"), "{out}");
        assert!(out.contains("VERIFY ONLY: no files were modified"), "{out}");
        assert_eq!(std::fs::read_to_string(&journal).unwrap(), intact, "verify must not mutate");

        // Tear the tail: verify reports the damage, still without repairing.
        let torn = &intact[..intact.len() - 3];
        std::fs::write(&journal, torn).unwrap();
        let (code, out) = run_ok(&["recover", &schema, &data, &journal, "--verify"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("TORN tail"), "{out}");
        assert!(out.contains("0 committed tx(s), 1 uncommitted"), "{out}");
        assert_eq!(std::fs::read_to_string(&journal).unwrap(), torn, "verify must not repair");
    }

    #[test]
    fn checkpoint_command_compacts_and_recover_replays_the_tail() {
        let schema = write_tmp("s25.bs", SCHEMA);
        let data = write_tmp("d25.ldif", LDIF);
        let journal = write_tmp("j25.jrn", "");
        let ckpt = format!("{journal}.ckpt");
        let _ = std::fs::remove_file(&ckpt);
        let tx_b = write_tmp(
            "t25b.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &tx_b, "--journal", &journal]);
        assert_eq!(code, 0, "{out}");

        let (code, out) = run_ok(&["checkpoint", &schema, &data, &journal]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("CHECKPOINTED: 3 entries"), "{out}");
        assert_eq!(std::fs::read_to_string(&journal).unwrap(), "", "journal truncated");
        assert!(std::fs::read_to_string(&ckpt).unwrap().starts_with("bschema-ckpt"));

        // One more journaled tx becomes the tail past the checkpoint.
        let tx_c = write_tmp(
            "t25c.ldif",
            "dn: uid=c,o=acme\nobjectClass: person\nobjectClass: top\nuid: c\nname: c\n",
        );
        let (code, out) = run_ok(&["apply", &schema, &data, &tx_c, "--journal", &journal]);
        assert_eq!(code, 0, "{out}");

        let (code, out) = run_ok(&["recover", &schema, &data, &journal, "--verify"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("checkpoint: intact, 3 entries"), "{out}");
        assert!(out.contains("+ 1 tail tx(s) would replay"), "{out}");

        let (code, out) = run_ok(&["recover", &schema, &data, &journal]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("checkpoint: restored snapshot"), "{out}");
        assert!(out.contains("replayed 1 committed tx(s)"), "{out}");
        assert!(out.contains("4 entries"), "{out}");
        assert!(out.contains("LEGAL"), "{out}");
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn serve_follow_runs_a_read_replica() {
        let schema = write_tmp("s26.bs", SCHEMA);
        let data = write_tmp("d26.ldif", LDIF);
        let journal = write_tmp("j26.jrn", "");
        let _ = std::fs::remove_file(format!("{journal}.ckpt"));
        let pport = write_tmp("p26a.port", "");
        let rport = write_tmp("p26b.port", "");
        std::fs::remove_file(&pport).unwrap();
        std::fs::remove_file(&rport).unwrap();

        let wait_addr = |port_file: &str| loop {
            if let Ok(text) = std::fs::read_to_string(port_file) {
                if text.ends_with('\n') {
                    break text.trim().to_owned();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let primary = {
            let (schema, data, journal, pport) =
                (schema.clone(), data.clone(), journal.clone(), pport.clone());
            std::thread::spawn(move || {
                run_ok(&[
                    "serve",
                    &schema,
                    &data,
                    "--journal",
                    &journal,
                    "--checkpoint-every",
                    "2",
                    "--port-file",
                    &pport,
                ])
            })
        };
        let paddr = wait_addr(&pport);

        let replica = {
            let (schema, paddr, rport) = (schema.clone(), paddr.clone(), rport.clone());
            std::thread::spawn(move || {
                run_ok(&[
                    "serve",
                    &schema,
                    "--follow",
                    &paddr,
                    "--ship-interval",
                    "20",
                    "--port-file",
                    &rport,
                ])
            })
        };
        let raddr = wait_addr(&rport);

        // The bootstrap alone carries the seed data.
        let (code, out) = run_ok(&["client", &raddr, "ping"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("PONG: 2 entries"), "{out}");

        // A write on the primary ships to the replica within a few polls.
        let tx = write_tmp(
            "t26.ldif",
            "dn: uid=b,o=acme\nobjectClass: person\nobjectClass: top\nuid: b\nname: b\n",
        );
        let (code, out) = run_ok(&["client", &paddr, "apply", &tx]);
        assert_eq!(code, 0, "{out}");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let (_, out) = run_ok(&["client", &raddr, "search", "--filter", "(uid=b)"]);
            if out.contains("1 entries match") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "replica never caught up: {out}");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        // The replica refuses writes with the stable code.
        let (code, out) = run_ok(&["client", &raddr, "apply", &tx]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("REJECTED (read-only)"), "{out}");

        let (code, _) = run_ok(&["client", &raddr, "shutdown"]);
        assert_eq!(code, 0);
        replica.join().unwrap();
        let (code, _) = run_ok(&["client", &paddr, "shutdown"]);
        assert_eq!(code, 0);
        primary.join().unwrap();
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(format!("{journal}.ckpt"));
    }
}
