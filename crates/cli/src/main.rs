//! Thin shim over [`bschema_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match bschema_cli::run(&args, &mut out) {
        Ok(code) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
