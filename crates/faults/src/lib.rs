//! # bschema-faults
//!
//! Deterministic fault injection for the bounding-schema engines.
//!
//! The instrumentation sites PR 2 threaded through the legality,
//! consistency, query, and managed-update engines double as *fault
//! sites*: every `Probe` call marks a point where real deployments can
//! fail (an allocation inside a content check, a worker thread dying
//! mid-chunk, a crash between mutation and verdict). [`FaultPlan`]
//! wraps any inner [`Probe`] and panics at a chosen site, which lets
//! the chaos suite in `crates/workload` drive every reachable site to
//! failure and assert the atomicity invariant behind Theorem 4.1: a
//! transaction either commits to a certified-legal state or leaves the
//! instance byte-identical to its pre-transaction snapshot.
//!
//! Plans are deterministic: [`FaultPlan::fail_nth`] fires at the Nth
//! probe event (events are counted in program order on the sequential
//! engines), [`FaultPlan::fail_at_site`] fires at the k-th visit of a
//! named site, and [`nth_from_seed`] maps an arbitrary seed to an event
//! ordinal so CI can replay a failure from its logged seed. Every plan
//! fires **at most once** — after the injected panic is caught and the
//! operation retried (the parallel engine degrades to a sequential
//! retry), the same site passes, modelling a transient fault.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use bschema_obs::{Probe, SpanId, NO_SPAN};

/// Marker embedded in every injected panic payload. [`is_injected_panic`]
/// and the panic-hook silencer key off it.
pub const INJECTED_FAULT_MARKER: &str = "injected fault";

/// When a [`FaultPlan`] fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMode {
    /// Never fire — count events and sites only (dry run / site census).
    Observe,
    /// Panic at the Nth probe event, zero-based, at most once.
    Nth(u64),
    /// Panic at the `occurrence`-th visit (zero-based) of the named
    /// site, at most once.
    AtSite {
        /// Site name, e.g. `managed.tx_applied` or `span:legality.check`.
        site: String,
        /// Zero-based visit index at which to fire.
        occurrence: u64,
    },
}

/// A deterministic fault-injection probe.
///
/// `FaultPlan` implements [`Probe`]; hand it to any engine that accepts
/// one (`with_probe`) and it panics with a payload containing
/// [`INJECTED_FAULT_MARKER`] when its [`FaultMode`] matches. All other
/// traffic is forwarded to the optional inner probe, so a run can be
/// traced *and* faulted at once.
///
/// Site naming: counter and histogram sites use their metric key
/// (labeled counters use `key.label`), span-open sites use
/// `span:<name>`. `span_end` is intentionally not a fault site — it
/// does not count as an event and never fires — so injected panics
/// always unwind *out of* open spans, matching how real faults strike
/// mid-operation.
pub struct FaultPlan {
    mode: FaultMode,
    armed: AtomicBool,
    events: AtomicU64,
    injected: AtomicU64,
    sites: Mutex<BTreeMap<String, u64>>,
    inner: Option<Arc<dyn Probe + Send + Sync>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("mode", &self.mode)
            .field("events", &self.events.load(Ordering::SeqCst))
            .field("injected", &self.injected.load(Ordering::SeqCst))
            .field("has_inner", &self.inner.is_some())
            .finish()
    }
}

impl FaultPlan {
    fn with_mode(mode: FaultMode) -> Self {
        FaultPlan {
            mode,
            armed: AtomicBool::new(true),
            events: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            sites: Mutex::new(BTreeMap::new()),
            inner: None,
        }
    }

    /// A plan that never fires: counts events and sites, so a dry run
    /// enumerates every injectable site of a workload.
    pub fn observer() -> Self {
        FaultPlan::with_mode(FaultMode::Observe)
    }

    /// A plan that panics at the `n`-th probe event (zero-based).
    pub fn fail_nth(n: u64) -> Self {
        FaultPlan::with_mode(FaultMode::Nth(n))
    }

    /// A plan that panics the `occurrence`-th time the named site is
    /// visited (zero-based).
    pub fn fail_at_site(site: impl Into<String>, occurrence: u64) -> Self {
        FaultPlan::with_mode(FaultMode::AtSite { site: site.into(), occurrence })
    }

    /// Forward all probe traffic to `inner` as well (e.g. a
    /// `bschema_obs::Recorder`, so a faulted run still produces metrics;
    /// the `faults.injected` counter is forwarded before the panic).
    pub fn with_inner(mut self, inner: Arc<dyn Probe + Send + Sync>) -> Self {
        self.inner = Some(inner);
        self
    }

    /// The plan's mode.
    pub fn mode(&self) -> &FaultMode {
        &self.mode
    }

    /// Total probe events seen so far (spans opened + counters +
    /// histogram observations; `span_end` excluded).
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// How many faults this plan has injected (0 or 1).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Per-site visit counts, deterministically ordered by site name.
    pub fn sites(&self) -> BTreeMap<String, u64> {
        self.sites.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Counts one event at `site` and panics if the plan says so.
    fn touch(&self, site: &str) {
        let event = self.events.fetch_add(1, Ordering::SeqCst);
        let occurrence = {
            let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
            let count = sites.entry(site.to_string()).or_insert(0);
            *count += 1;
            *count - 1
        };
        let matches = match &self.mode {
            FaultMode::Observe => false,
            FaultMode::Nth(n) => event == *n,
            FaultMode::AtSite { site: wanted, occurrence: wanted_occ } => {
                site == wanted && occurrence == *wanted_occ
            }
        };
        if matches && self.armed.swap(false, Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            if let Some(inner) = &self.inner {
                inner.add("faults.injected", 1);
            }
            panic!("{INJECTED_FAULT_MARKER} #{event} at {site}");
        }
    }
}

impl Probe for FaultPlan {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, key: &str, by: u64) {
        self.touch(key);
        if let Some(inner) = &self.inner {
            inner.add(key, by);
        }
    }

    fn add_labeled(&self, key: &str, label: &str, by: u64) {
        self.touch(&format!("{key}.{label}"));
        if let Some(inner) = &self.inner {
            inner.add_labeled(key, label, by);
        }
    }

    fn observe(&self, key: &str, value: u64) {
        self.touch(key);
        if let Some(inner) = &self.inner {
            inner.observe(key, value);
        }
    }

    fn span_start(&self, parent: SpanId, name: &'static str, ord: u64) -> SpanId {
        self.touch(&format!("span:{name}"));
        match &self.inner {
            Some(inner) => inner.span_start(parent, name, ord),
            None => NO_SPAN,
        }
    }

    fn span_end(&self, span: SpanId) {
        if let Some(inner) = &self.inner {
            inner.span_end(span);
        }
    }
}

/// Whether a caught panic payload came from a [`FaultPlan`].
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    panic_message(payload).is_some_and(|m| m.contains(INJECTED_FAULT_MARKER))
}

/// Extracts the human-readable message from a panic payload, if it is a
/// string (all `panic!("...")` payloads are).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<&str> {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        Some(s)
    } else {
        payload.downcast_ref::<String>().map(String::as_str)
    }
}

/// Maps an arbitrary seed to an event ordinal in `[0, horizon)` with a
/// splitmix64 step — so a chaos run can derive its injection point from
/// a logged CI seed and be replayed exactly.
pub fn nth_from_seed(seed: u64, horizon: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if horizon == 0 {
        0
    } else {
        z % horizon
    }
}

/// Picks one `(site, occurrence)` injection point from an
/// [`FaultPlan::observer`] census, deterministically from `seed`,
/// restricted to sites whose name starts with `prefix` (`""` for all).
/// Both the site and the visit index are seed-derived, so a CI job that
/// logs its seed can replay the exact injection. Returns `None` when no
/// site matches the prefix.
pub fn site_from_seed(
    sites: &BTreeMap<String, u64>,
    prefix: &str,
    seed: u64,
) -> Option<(String, u64)> {
    let matching: Vec<(&String, &u64)> =
        sites.iter().filter(|(name, _)| name.starts_with(prefix)).collect();
    if matching.is_empty() {
        return None;
    }
    let (site, &visits) = matching[nth_from_seed(seed, matching.len() as u64) as usize];
    let occurrence = nth_from_seed(seed.wrapping_add(1), visits.max(1));
    Some((site.clone(), occurrence))
}

static SILENCE: Once = Once::new();

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" stderr spam for *injected* panics while leaving
/// every other panic's output untouched. Chaos suites inject hundreds
/// of panics; without this the test log is unreadable.
pub fn silence_injected_panics() {
    SILENCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                panic_message(info.payload()).is_some_and(|m| m.contains(INJECTED_FAULT_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn observer_counts_events_and_sites() {
        let plan = FaultPlan::observer();
        plan.add("a", 1);
        plan.add("a", 1);
        plan.observe("h", 7);
        plan.add_labeled("rule", "path", 1);
        let s = plan.span_start(NO_SPAN, "root", 0);
        plan.span_end(s);
        assert_eq!(plan.events(), 5);
        assert_eq!(plan.injected(), 0);
        let sites = plan.sites();
        assert_eq!(sites.get("a"), Some(&2));
        assert_eq!(sites.get("h"), Some(&1));
        assert_eq!(sites.get("rule.path"), Some(&1));
        assert_eq!(sites.get("span:root"), Some(&1));
    }

    #[test]
    fn nth_fires_exactly_once_then_passes() {
        silence_injected_panics();
        let plan = FaultPlan::fail_nth(1);
        plan.add("a", 1); // event 0: passes
        let err = catch_unwind(AssertUnwindSafe(|| plan.add("b", 1))).unwrap_err();
        assert!(is_injected_panic(err.as_ref()));
        assert_eq!(plan.injected(), 1);
        // Retry: same site, plan disarmed — must pass.
        plan.add("b", 1);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn at_site_fires_on_requested_occurrence() {
        silence_injected_panics();
        let plan = FaultPlan::fail_at_site("span:check", 1);
        plan.span_start(NO_SPAN, "check", 0); // occurrence 0: passes
        let err =
            catch_unwind(AssertUnwindSafe(|| plan.span_start(NO_SPAN, "check", 1))).unwrap_err();
        assert!(is_injected_panic(err.as_ref()));
        let msg = panic_message(err.as_ref()).unwrap();
        assert!(msg.contains("span:check"), "{msg}");
    }

    #[test]
    fn forwards_to_inner_probe_including_injected_counter() {
        silence_injected_panics();
        let recorder = Arc::new(bschema_obs::Recorder::new());
        let plan = FaultPlan::fail_nth(2).with_inner(recorder.clone());
        plan.add("a", 3);
        plan.observe("h", 5);
        let _ = catch_unwind(AssertUnwindSafe(|| plan.add("boom", 1)));
        assert_eq!(recorder.metrics().counter("a"), 3);
        assert_eq!(recorder.metrics().counter("faults.injected"), 1);
        // The faulted event itself is recorded only after the fault
        // check — the panic preempts the forward, like a real crash.
        assert_eq!(recorder.metrics().counter("boom"), 0);
    }

    #[test]
    fn site_from_seed_is_deterministic_and_prefix_scoped() {
        let mut sites = BTreeMap::new();
        sites.insert("server.request".to_owned(), 10);
        sites.insert("server.tx_admitted".to_owned(), 4);
        sites.insert("legality.entries_content_checked".to_owned(), 7);
        for seed in [0u64, 1, 42, 803845] {
            let (site, occ) = site_from_seed(&sites, "server.", seed).expect("prefix matches");
            assert!(site.starts_with("server."), "{site}");
            assert!(occ < sites[&site]);
            assert_eq!(site_from_seed(&sites, "server.", seed), Some((site, occ)));
        }
        assert!(site_from_seed(&sites, "nothing.", 7).is_none());
        assert!(site_from_seed(&BTreeMap::new(), "", 7).is_none());
    }

    #[test]
    fn seed_mapping_is_deterministic_and_in_range() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = nth_from_seed(seed, 100);
            let b = nth_from_seed(seed, 100);
            assert_eq!(a, b);
            assert!(a < 100);
        }
        assert_eq!(nth_from_seed(7, 0), 0);
    }
}
