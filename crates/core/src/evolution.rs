//! Schema evolution (§6.2).
//!
//! The paper contrasts bounding-schemas with rigid relational/OO schemas:
//! "many kinds of schema evolution, such as adding a new allowed attribute
//! to an object class, or adding a new auxiliary object class … is extremely
//! lightweight, involving no modifications to existing directory entries."
//! This module makes that observation executable. Every evolution step is
//! classified:
//!
//! * **Relaxing** steps widen the bounds. A legal instance stays legal —
//!   provable from Definition 2.7, so no recheck runs at all.
//! * **Restricting** steps tighten the bounds. The key fact making them
//!   cheap anyway: the old elements still hold, so only the *new* element
//!   needs testing against the instance — one per-entry sweep for a content
//!   element, one Figure 4 query for a structure element — plus a schema
//!   consistency re-verification.

pub mod plan;

use std::fmt;

use bschema_directory::DirectoryInstance;
use bschema_query::{evaluate, EvalContext};

use crate::consistency::ConsistencyChecker;
use crate::legality::report::{LegalityReport, Violation};
use crate::legality::translate;
use crate::schema::{DirectorySchema, ForbidKind, ForbiddenRel, RelKind, RequiredRel, SchemaError};

/// One schema evolution step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evolution {
    // ----- relaxing -----
    /// Adds `attr` to `α(class)` — the paper's flagship lightweight change.
    AllowAttribute {
        /// The class gaining the allowance.
        class: String,
        /// The newly allowed attribute.
        attribute: String,
    },
    /// Declares a new auxiliary object class.
    AddAuxiliaryClass {
        /// Its name.
        name: String,
    },
    /// Adds an auxiliary to `Aux(core)` — the paper's second lightweight
    /// example.
    AllowAuxiliaryFor {
        /// The core class.
        core: String,
        /// The auxiliary being admitted.
        auxiliary: String,
    },
    /// Declares a new core class under an existing parent. Relaxing: no
    /// existing entry belongs to it.
    AddCoreClass {
        /// Its name.
        name: String,
        /// Its parent in the single-inheritance tree.
        parent: String,
    },

    // ----- restricting -----
    /// Adds `attr` to `ρ(class)`: every member entry must now carry it.
    RequireAttribute {
        /// The class gaining the requirement.
        class: String,
        /// The newly required attribute.
        attribute: String,
    },
    /// Adds `◇class` to `Cr`.
    RequireClass {
        /// The class that must now be inhabited.
        class: String,
    },
    /// Adds a required structural relationship to `Er`.
    RequireRel {
        /// Source class.
        source: String,
        /// Relationship kind.
        kind: RelKind,
        /// Target class.
        target: String,
    },
    /// Adds a forbidden structural relationship to `Ef`.
    ForbidRel {
        /// Upper class.
        upper: String,
        /// Child or descendant.
        kind: ForbidKind,
        /// Lower class.
        lower: String,
    },
}

impl Evolution {
    /// Whether this step can never invalidate a legal instance.
    pub fn is_relaxing(&self) -> bool {
        matches!(
            self,
            Evolution::AllowAttribute { .. }
                | Evolution::AddAuxiliaryClass { .. }
                | Evolution::AllowAuxiliaryFor { .. }
                | Evolution::AddCoreClass { .. }
        )
    }
}

impl fmt::Display for Evolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Evolution::AllowAttribute { class, attribute } => {
                write!(f, "allow attribute {attribute} on {class}")
            }
            Evolution::AddAuxiliaryClass { name } => write!(f, "add auxiliary class {name}"),
            Evolution::AllowAuxiliaryFor { core, auxiliary } => {
                write!(f, "allow auxiliary {auxiliary} on {core}")
            }
            Evolution::AddCoreClass { name, parent } => {
                write!(f, "add core class {name} under {parent}")
            }
            Evolution::RequireAttribute { class, attribute } => {
                write!(f, "require attribute {attribute} on {class}")
            }
            Evolution::RequireClass { class } => write!(f, "require class ◇{class}"),
            Evolution::RequireRel { source, kind, target } => {
                write!(f, "require {source} →{kind} {target}")
            }
            Evolution::ForbidRel { upper, kind, lower } => {
                write!(f, "forbid {upper} ↛{kind} {lower}")
            }
        }
    }
}

/// Why an evolution step was refused.
#[derive(Debug)]
pub enum EvolutionError {
    /// The step references missing classes or is otherwise ill-formed.
    Schema(SchemaError),
    /// The evolved schema would be inconsistent; payload is the ◇∅ proof.
    WouldBeInconsistent(String),
    /// The instance violates the new element; nothing was changed.
    InstanceViolates(LegalityReport),
}

impl fmt::Display for EvolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvolutionError::Schema(e) => write!(f, "{e}"),
            EvolutionError::WouldBeInconsistent(proof) => {
                write!(f, "evolution would make the schema inconsistent:\n{proof}")
            }
            EvolutionError::InstanceViolates(report) => {
                write!(f, "existing directory violates the new element:\n{report}")
            }
        }
    }
}

impl std::error::Error for EvolutionError {}

impl From<SchemaError> for EvolutionError {
    fn from(e: SchemaError) -> Self {
        EvolutionError::Schema(e)
    }
}

/// Applies `step` to `schema`, returning the evolved schema. No instance
/// involved — see [`evolve`] for the checked variant.
pub fn apply(
    schema: &DirectorySchema,
    step: &Evolution,
) -> Result<DirectorySchema, EvolutionError> {
    let builder = schema.to_builder();
    let builder = match step {
        Evolution::AllowAttribute { class, attribute } => {
            builder.allow_attrs(class, [attribute.as_str()])?
        }
        Evolution::AddAuxiliaryClass { name } => builder.auxiliary(name)?,
        Evolution::AllowAuxiliaryFor { core, auxiliary } => builder.allow_aux(core, auxiliary)?,
        Evolution::AddCoreClass { name, parent } => builder.core_class(name, parent)?,
        Evolution::RequireAttribute { class, attribute } => {
            builder.require_attrs(class, [attribute.as_str()])?
        }
        Evolution::RequireClass { class } => builder.require_class(class)?,
        Evolution::RequireRel { source, kind, target } => {
            builder.require_rel(source, *kind, target)?
        }
        Evolution::ForbidRel { upper, kind, lower } => builder.forbid_rel(upper, *kind, lower)?,
    };
    Ok(builder.build())
}

/// The targeted recheck for a restricting step: test **only** the new
/// element against the instance (old elements still hold on a legal
/// instance). Returns the violations of the new element.
pub fn recheck_new_element(
    schema: &DirectorySchema,
    step: &Evolution,
    dir: &DirectoryInstance,
) -> LegalityReport {
    let classes = schema.classes();
    let mut out = Vec::new();
    match step {
        _ if step.is_relaxing() => {}
        Evolution::RequireAttribute { class, attribute } => {
            // One per-entry sweep over members of `class`.
            let ctx = EvalContext::new(dir);
            let members = evaluate(&ctx, &bschema_query::Query::object_class(class.clone()));
            for id in members {
                let entry = dir.entry(id).expect("query results are live");
                if !entry.has_attribute(attribute) {
                    out.push(Violation::MissingRequiredAttribute {
                        entry: id,
                        class: class.clone(),
                        attribute: attribute.to_ascii_lowercase(),
                    });
                }
            }
        }
        Evolution::RequireClass { class } => {
            if let Ok(id) = classes.resolve(class) {
                let q = translate::required_class_query(schema, id);
                if evaluate(&EvalContext::new(dir), &q).is_empty() {
                    out.push(Violation::MissingRequiredClass { class: class.clone() });
                }
            }
        }
        Evolution::RequireRel { source, kind, target } => {
            if let (Ok(s), Ok(t)) = (classes.resolve(source), classes.resolve(target)) {
                let rel = RequiredRel { source: s, kind: *kind, target: t };
                let q = translate::required_rel_query(schema, &rel);
                for witness in evaluate(&EvalContext::new(dir), &q) {
                    out.push(Violation::RequiredRelViolation {
                        entry: witness,
                        source: source.clone(),
                        kind: *kind,
                        target: target.clone(),
                    });
                }
            }
        }
        Evolution::ForbidRel { upper, kind, lower } => {
            if let (Ok(u), Ok(l)) = (classes.resolve(upper), classes.resolve(lower)) {
                let rel = ForbiddenRel { upper: u, kind: *kind, lower: l };
                let q = translate::forbidden_rel_query(schema, &rel);
                for witness in evaluate(&EvalContext::new(dir), &q) {
                    out.push(Violation::ForbiddenRelViolation {
                        entry: witness,
                        upper: upper.clone(),
                        kind: *kind,
                        lower: lower.clone(),
                    });
                }
            }
        }
        _ => {}
    }
    LegalityReport::from_violations(out)
}

/// Fully-checked evolution: applies `step`, verifies the evolved schema is
/// still consistent, and — for restricting steps — verifies the existing
/// (legal) instance satisfies the new element. On success returns the
/// evolved schema; on failure nothing changes.
pub fn evolve(
    schema: &DirectorySchema,
    step: &Evolution,
    dir: &DirectoryInstance,
) -> Result<DirectorySchema, EvolutionError> {
    let evolved = apply(schema, step)?;
    if !step.is_relaxing() {
        let verdict = ConsistencyChecker::new(&evolved).check();
        if !verdict.is_consistent() {
            return Err(EvolutionError::WouldBeInconsistent(
                verdict.explain_inconsistency().unwrap_or_default(),
            ));
        }
        let report = recheck_new_element(&evolved, step, dir);
        if !report.is_legal() {
            return Err(EvolutionError::InstanceViolates(report));
        }
    }
    Ok(evolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::LegalityChecker;
    use crate::paper::{white_pages_instance, white_pages_schema};

    #[test]
    fn to_builder_roundtrip() {
        let schema = white_pages_schema();
        let rebuilt = schema.to_builder().build();
        assert_eq!(rebuilt.size(), schema.size());
        let (dir, _) = white_pages_instance();
        assert!(LegalityChecker::new(&rebuilt).check(&dir).is_legal());
    }

    #[test]
    fn relaxing_steps_need_no_recheck_and_preserve_legality() {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        let steps = [
            Evolution::AllowAttribute { class: "person".into(), attribute: "homePage".into() },
            Evolution::AddAuxiliaryClass { name: "pgpUser".into() },
            Evolution::AddCoreClass { name: "contractor".into(), parent: "person".into() },
        ];
        let mut current = schema;
        for step in steps {
            assert!(step.is_relaxing());
            current = evolve(&current, &step, &dir).unwrap_or_else(|e| panic!("{step}: {e}"));
            assert!(
                LegalityChecker::new(&current).check(&dir).is_legal(),
                "relaxing step {step} broke legality"
            );
        }
        // The new auxiliary can then be admitted for a class.
        let step =
            Evolution::AllowAuxiliaryFor { core: "person".into(), auxiliary: "pgpUser".into() };
        current = evolve(&current, &step, &dir).unwrap();
        assert!(LegalityChecker::new(&current).check(&dir).is_legal());
    }

    #[test]
    fn restricting_step_satisfied_by_instance_is_accepted() {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        // Every researcher in Figure 1 already has a name.
        let step =
            Evolution::RequireAttribute { class: "researcher".into(), attribute: "name".into() };
        let evolved = evolve(&schema, &step, &dir).unwrap();
        assert!(LegalityChecker::new(&evolved).check(&dir).is_legal());
        // And a structure element that already holds.
        let step = Evolution::RequireRel {
            source: "researcher".into(),
            kind: RelKind::Ancestor,
            target: "organization".into(),
        };
        let evolved = evolve(&evolved, &step, &dir).unwrap();
        assert!(LegalityChecker::new(&evolved).check(&dir).is_legal());
    }

    #[test]
    fn restricting_step_violated_by_instance_is_refused() {
        let schema = white_pages_schema();
        let (dir, ids) = white_pages_instance();
        // suciu has no mail: requiring mail on researchers must fail and
        // name the violators.
        let step =
            Evolution::RequireAttribute { class: "researcher".into(), attribute: "mail".into() };
        match evolve(&schema, &step, &dir) {
            Err(EvolutionError::InstanceViolates(report)) => {
                assert!(report.violations().iter().any(|v| v.entry() == Some(ids.suciu)));
            }
            other => panic!("expected InstanceViolates, got {other:?}"),
        }
        // A forbidden rel the instance violates: orgUnit ↛de researcher
        // (attLabs has laks and suciu below it). The schema itself stays
        // consistent, so the refusal comes from the instance recheck.
        let step = Evolution::ForbidRel {
            upper: "orgUnit".into(),
            kind: ForbidKind::Descendant,
            lower: "researcher".into(),
        };
        assert!(matches!(evolve(&schema, &step, &dir), Err(EvolutionError::InstanceViolates(_))));
        // Forbidding organization ↛de person, by contrast, is refused one
        // level earlier: it contradicts the (inherited) orgGroup →de person
        // requirement, making the schema itself inconsistent.
        let step = Evolution::ForbidRel {
            upper: "organization".into(),
            kind: ForbidKind::Descendant,
            lower: "person".into(),
        };
        assert!(matches!(
            evolve(&schema, &step, &dir),
            Err(EvolutionError::WouldBeInconsistent(_))
        ));
    }

    #[test]
    fn evolution_into_inconsistency_is_refused() {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        // person →de person with ◇person already present ⇒ infinite chains.
        let step = Evolution::RequireRel {
            source: "person".into(),
            kind: RelKind::Descendant,
            target: "person".into(),
        };
        assert!(matches!(
            evolve(&schema, &step, &dir),
            Err(EvolutionError::WouldBeInconsistent(_))
        ));
    }

    #[test]
    fn targeted_recheck_agrees_with_full_recheck() {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        let steps = [
            Evolution::RequireAttribute { class: "researcher".into(), attribute: "mail".into() },
            Evolution::RequireAttribute { class: "researcher".into(), attribute: "name".into() },
            Evolution::RequireClass { class: "staffMember".into() },
            Evolution::RequireRel {
                source: "person".into(),
                kind: RelKind::Ancestor,
                target: "orgUnit".into(),
            },
            Evolution::ForbidRel {
                upper: "orgUnit".into(),
                kind: ForbidKind::Child,
                lower: "orgUnit".into(),
            },
        ];
        for step in steps {
            let evolved = apply(&schema, &step).unwrap();
            let targeted = recheck_new_element(&evolved, &step, &dir);
            let full = LegalityChecker::new(&evolved).check(&dir);
            assert_eq!(
                targeted.is_legal(),
                full.is_legal(),
                "targeted recheck diverged for {step}: targeted={targeted} full={full}"
            );
        }
    }

    #[test]
    fn bad_references_are_schema_errors() {
        let schema = white_pages_schema();
        let step = Evolution::AllowAttribute { class: "nosuch".into(), attribute: "x".into() };
        assert!(matches!(apply(&schema, &step), Err(EvolutionError::Schema(_))));
    }
}
