//! The epoch engine behind the `SCHEMA` verb family: parse an operator
//! proposal, classify its steps, and run the Definition 2.7 / Figures
//! 6–7 checks that gate a live cutover.
//!
//! A proposal arrives in one of two forms:
//!
//! * **Step form** — one evolution step per line (`require-attr person
//!   mail`, `allow-aux person pgpUser`, …), the same grammar as
//!   `bschema evolve`. Steps fold left-to-right over the current
//!   schema; each is classified relaxing or restricting, and the
//!   targeted recheck tests **only** the restricting steps' new
//!   elements against the instance ([`recheck_new_element`]).
//! * **DSL form** — a whole schema document (the `bschema discover`
//!   output, or a hand-edited `.bs` file). No step decomposition
//!   exists, so the recheck degrades to one full §3 legality pass —
//!   still off the write path.
//!
//! Either way the plan carries the evolved schema's canonical DSL — the
//! exact text journalled as a `jrnschema` record and embedded in
//! checkpoints, so recovery and replicas replay the same epoch.
//!
//! [`recheck_new_element`]: crate::evolution::recheck_new_element

use std::fmt;

use bschema_directory::DirectoryInstance;

use crate::consistency::ConsistencyChecker;
use crate::evolution::{self, Evolution, EvolutionError};
use crate::legality::report::LegalityReport;
use crate::legality::LegalityChecker;
use crate::schema::dsl::{parse_schema, print_schema};
use crate::schema::{DirectorySchema, ForbidKind, RelKind};

/// Why a proposal could not become a plan.
#[derive(Debug)]
pub enum PlanError {
    /// The payload parses as neither a step list nor a schema document.
    Parse(String),
    /// A step failed to apply to the current schema (missing class,
    /// duplicate declaration, …).
    Step {
        /// The offending step, as written.
        step: String,
        /// Why it failed.
        message: String,
    },
    /// The evolved schema is inconsistent; payload is the ◇∅ proof.
    Inconsistent(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Parse(msg) => write!(f, "proposal does not parse: {msg}"),
            PlanError::Step { step, message } => write!(f, "step {step:?}: {message}"),
            PlanError::Inconsistent(proof) => {
                write!(f, "evolved schema would be inconsistent:\n{proof}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A checked, stageable evolution proposal.
#[derive(Debug, Clone)]
pub struct EvolutionPlan {
    /// The steps, in application order. Empty for a DSL-form proposal
    /// (no step decomposition — the recheck is a full §3 pass).
    pub steps: Vec<Evolution>,
    /// The evolved schema the cutover swaps in.
    pub target: DirectorySchema,
    /// Canonical DSL of `target` — the journalled/checkpointed form.
    pub dsl: String,
    /// Steps that widen the bounds (no recheck, Definition 2.7).
    pub relaxing: usize,
    /// Steps that tighten them (targeted recheck required).
    pub restricting: usize,
}

impl EvolutionPlan {
    /// Whether the cutover can skip every instance recheck: all steps
    /// are provably relaxing. A DSL-form proposal (no steps) never
    /// qualifies — without a decomposition nothing is provable.
    pub fn is_relaxing_only(&self) -> bool {
        !self.steps.is_empty() && self.restricting == 0
    }

    /// The cutover gate: tests the instance against the *new* elements
    /// only (one [`recheck_new_element`] per restricting step), or a
    /// full §3 pass for a DSL-form proposal. Run it against an `Arc`
    /// snapshot off the write path first, and again under the write
    /// mutex only if commits landed since the snapshot.
    ///
    /// [`recheck_new_element`]: crate::evolution::recheck_new_element
    pub fn recheck(&self, dir: &DirectoryInstance) -> LegalityReport {
        if self.is_relaxing_only() {
            return LegalityReport::default();
        }
        if self.steps.is_empty() {
            return LegalityChecker::new(&self.target).check(dir);
        }
        let mut violations = Vec::new();
        for step in self.steps.iter().filter(|s| !s.is_relaxing()) {
            let report = evolution::recheck_new_element(&self.target, step, dir);
            violations.extend(report.violations().iter().cloned());
        }
        LegalityReport::from_violations(violations)
    }

    /// One-line classification for status output, e.g. `3 steps (2
    /// relaxing, 1 restricting)` or `schema document`.
    pub fn describe(&self) -> String {
        if self.steps.is_empty() {
            "schema document (full recheck)".to_owned()
        } else {
            format!(
                "{} step{} ({} relaxing, {} restricting)",
                self.steps.len(),
                if self.steps.len() == 1 { "" } else { "s" },
                self.relaxing,
                self.restricting
            )
        }
    }
}

/// The step-line verbs — a payload whose every meaningful line starts
/// with one of these is a step-form proposal.
const STEP_VERBS: &[&str] = &[
    "require-attr",
    "allow-attr",
    "require-class",
    "require-rel",
    "forbid-rel",
    "add-class",
    "add-aux",
    "allow-aux",
];

fn meaningful_lines(payload: &str) -> impl Iterator<Item = &str> {
    payload
        .lines()
        .map(|l| match l.find('#') {
            Some(pos) => l[..pos].trim(),
            None => l.trim(),
        })
        .filter(|l| !l.is_empty())
}

/// Whether `payload` is a step-form proposal (vs a schema document).
pub fn is_step_form(payload: &str) -> bool {
    let mut any = false;
    for line in meaningful_lines(payload) {
        let verb = line.split_whitespace().next().unwrap_or("");
        if !STEP_VERBS.contains(&verb) {
            return false;
        }
        any = true;
    }
    any
}

/// Parses one evolution step from pre-split words — the grammar shared
/// by `bschema evolve` arguments and `SCHEMA PROPOSE` step lines.
pub fn parse_step_words(words: &[&str]) -> Result<Evolution, String> {
    let rel_kind = |w: &str| match w {
        "ch" | "child" => Ok(RelKind::Child),
        "de" | "desc" | "descendant" => Ok(RelKind::Descendant),
        "pa" | "parent" => Ok(RelKind::Parent),
        "an" | "anc" | "ancestor" => Ok(RelKind::Ancestor),
        other => Err(format!("unknown relationship kind {other:?}")),
    };
    match words {
        ["require-attr", class, attr] => Ok(Evolution::RequireAttribute {
            class: (*class).to_owned(),
            attribute: (*attr).to_owned(),
        }),
        ["allow-attr", class, attr] => Ok(Evolution::AllowAttribute {
            class: (*class).to_owned(),
            attribute: (*attr).to_owned(),
        }),
        ["require-class", class] => Ok(Evolution::RequireClass { class: (*class).to_owned() }),
        ["require-rel", src, kind, tgt] => Ok(Evolution::RequireRel {
            source: (*src).to_owned(),
            kind: rel_kind(kind)?,
            target: (*tgt).to_owned(),
        }),
        ["forbid-rel", upper, kind, lower] => Ok(Evolution::ForbidRel {
            upper: (*upper).to_owned(),
            kind: match *kind {
                "ch" | "child" => ForbidKind::Child,
                "de" | "desc" | "descendant" => ForbidKind::Descendant,
                other => return Err(format!("forbidden kind must be ch|de, got {other:?}")),
            },
            lower: (*lower).to_owned(),
        }),
        ["add-class", name] => {
            Ok(Evolution::AddCoreClass { name: (*name).to_owned(), parent: "top".to_owned() })
        }
        ["add-class", name, parent] => {
            Ok(Evolution::AddCoreClass { name: (*name).to_owned(), parent: (*parent).to_owned() })
        }
        ["add-aux", name] => Ok(Evolution::AddAuxiliaryClass { name: (*name).to_owned() }),
        ["allow-aux", core, aux] => Ok(Evolution::AllowAuxiliaryFor {
            core: (*core).to_owned(),
            auxiliary: (*aux).to_owned(),
        }),
        _ => Err("unknown evolution step".to_owned()),
    }
}

/// Parses one step line (whitespace-separated words, `#` comments).
pub fn parse_step_line(line: &str) -> Result<Evolution, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    parse_step_words(&words)
}

/// Parses an operator proposal against the current schema into a
/// checked [`EvolutionPlan`]: step-form payloads fold over `current`,
/// DSL-form payloads parse as a whole document; either way the evolved
/// schema must pass the Figures 6–7 consistency closure. No instance is
/// consulted here — [`EvolutionPlan::recheck`] is the instance gate.
pub fn parse_proposal(
    current: &DirectorySchema,
    payload: &str,
) -> Result<EvolutionPlan, PlanError> {
    if meaningful_lines(payload).next().is_none() {
        // An empty document would otherwise parse as the bare-`top`
        // schema — a proposal to wipe every bound. Refuse it.
        return Err(PlanError::Parse("proposal is empty".to_owned()));
    }
    let (steps, target) = if is_step_form(payload) {
        let mut steps = Vec::new();
        let mut schema = current.clone();
        for line in meaningful_lines(payload) {
            let step = parse_step_line(line)
                .map_err(|message| PlanError::Step { step: line.to_owned(), message })?;
            schema = evolution::apply(&schema, &step).map_err(|e| match e {
                EvolutionError::Schema(err) => {
                    PlanError::Step { step: line.to_owned(), message: err.to_string() }
                }
                other => PlanError::Step { step: line.to_owned(), message: other.to_string() },
            })?;
            steps.push(step);
        }
        if steps.is_empty() {
            return Err(PlanError::Parse("proposal is empty".to_owned()));
        }
        (steps, schema)
    } else {
        let parsed = parse_schema(payload)
            .map_err(|e| PlanError::Parse(format!("not a step list, and as schema DSL: {e}")))?;
        (Vec::new(), parsed.schema)
    };
    let verdict = ConsistencyChecker::new(&target).check();
    if !verdict.is_consistent() {
        return Err(PlanError::Inconsistent(verdict.explain_inconsistency().unwrap_or_default()));
    }
    let relaxing = steps.iter().filter(|s| s.is_relaxing()).count();
    let restricting = steps.len() - relaxing;
    let dsl = print_schema(&target, None);
    Ok(EvolutionPlan { steps, target, dsl, relaxing, restricting })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::schema_hash;
    use crate::paper::{white_pages_instance, white_pages_schema};

    #[test]
    fn step_form_folds_and_classifies() {
        let schema = white_pages_schema();
        let payload = "\
# widen, then tighten
allow-attr person homePage
add-aux pgpUser
allow-aux person pgpUser
require-attr researcher name
";
        assert!(is_step_form(payload));
        let plan = parse_proposal(&schema, payload).expect("plan parses");
        assert_eq!(plan.steps.len(), 4);
        assert_eq!(plan.relaxing, 3);
        assert_eq!(plan.restricting, 1);
        assert!(!plan.is_relaxing_only());
        // The canonical DSL reparses to the same schema.
        let reparsed = parse_schema(&plan.dsl).expect("canonical DSL parses");
        assert_eq!(schema_hash(&reparsed.schema), schema_hash(&plan.target));

        let (dir, _) = white_pages_instance();
        assert!(plan.recheck(&dir).is_legal(), "every researcher already has a name");
    }

    #[test]
    fn relaxing_only_plans_skip_the_recheck() {
        let schema = white_pages_schema();
        let plan = parse_proposal(&schema, "allow-attr person homePage\n").unwrap();
        assert!(plan.is_relaxing_only());
        let (dir, _) = white_pages_instance();
        assert!(plan.recheck(&dir).is_legal());
    }

    #[test]
    fn restricting_violations_name_the_offenders() {
        let schema = white_pages_schema();
        let (dir, ids) = white_pages_instance();
        let plan = parse_proposal(&schema, "require-attr researcher mail\n").unwrap();
        let report = plan.recheck(&dir);
        assert!(!report.is_legal());
        assert!(report.violations().iter().any(|v| v.entry() == Some(ids.suciu)));
    }

    #[test]
    fn dsl_form_takes_the_full_recheck_path() {
        let schema = white_pages_schema();
        let dsl = print_schema(&schema, None);
        assert!(!is_step_form(&dsl));
        let plan = parse_proposal(&schema, &dsl).expect("own DSL reparses");
        assert!(plan.steps.is_empty());
        assert!(!plan.is_relaxing_only());
        let (dir, _) = white_pages_instance();
        assert!(plan.recheck(&dir).is_legal());
    }

    #[test]
    fn bad_proposals_are_refused_with_the_offending_step() {
        let schema = white_pages_schema();
        match parse_proposal(&schema, "require-attr nosuch mail\n") {
            Err(PlanError::Step { step, .. }) => assert!(step.contains("nosuch")),
            other => panic!("expected a step error, got {other:?}"),
        }
        assert!(matches!(parse_proposal(&schema, ""), Err(PlanError::Parse(_))));
        assert!(matches!(
            parse_proposal(&schema, "not a proposal at all"),
            Err(PlanError::Parse(_))
        ));
        // An inconsistent tighten is caught at plan time, before any
        // instance is consulted.
        let err = parse_proposal(&schema, "require-rel person de person\n").unwrap_err();
        assert!(matches!(err, PlanError::Inconsistent(_)), "{err}");
    }
}
