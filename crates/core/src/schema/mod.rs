//! The directory bounding-schema `S = (A, H, S)` of Definition 2.5:
//! attribute schema + class schema + structure schema, with a string-friendly
//! builder and a plain-text DSL ([`dsl`]).

pub mod attribute;
pub mod class;
pub mod dsl;
pub mod structure;

pub use attribute::AttributeSchema;
pub use class::{ClassId, ClassKind, ClassSchema, ClassSchemaError};
pub use structure::{ForbidKind, ForbiddenRel, RelKind, RequiredRel, StructureSchema};

use std::fmt;

/// Errors from schema construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Class-table error (duplicate / unknown / wrong kind).
    Class(ClassSchemaError),
    /// A structure-schema element referenced a non-core class; Definition
    /// 2.4 restricts `Cr` and the relationship endpoints to `Cc`.
    StructureOnAuxiliary {
        /// The offending auxiliary class.
        class: String,
    },
}

impl From<ClassSchemaError> for SchemaError {
    fn from(e: ClassSchemaError) -> Self {
        SchemaError::Class(e)
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Class(e) => write!(f, "{e}"),
            SchemaError::StructureOnAuxiliary { class } => write!(
                f,
                "structure schema elements must reference core classes, but {class:?} is auxiliary"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A complete bounding-schema.
#[derive(Debug, Clone)]
pub struct DirectorySchema {
    name: Option<String>,
    classes: ClassSchema,
    attributes: AttributeSchema,
    structure: StructureSchema,
}

impl Default for DirectorySchema {
    fn default() -> Self {
        DirectorySchema {
            name: None,
            classes: ClassSchema::new(),
            attributes: AttributeSchema::new(),
            structure: StructureSchema::new(),
        }
    }
}

impl DirectorySchema {
    /// An empty schema (just `top`, no constraints).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a string-friendly builder.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { schema: DirectorySchema::new() }
    }

    /// Optional human-readable schema name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The class schema `H`.
    pub fn classes(&self) -> &ClassSchema {
        &self.classes
    }

    /// The attribute schema `A`.
    pub fn attributes(&self) -> &AttributeSchema {
        &self.attributes
    }

    /// The structure schema `S`.
    pub fn structure(&self) -> &StructureSchema {
        &self.structure
    }

    /// A copy of this schema with `Cr = ∅` — every required class
    /// dropped, all other components untouched.
    ///
    /// This is the *shard-local* view of a schema: of the Definition 2.4
    /// triple `(Cr, Er, Ef)`, only `◇c` quantifies over the whole
    /// instance; every required/forbidden relationship is witnessed
    /// inside a single top-level subtree (the Figure 5 Δ-queries are
    /// subtree-local, Theorem 4.1). A shard holding complete top-level
    /// subtrees can therefore check `(∅, Er, Ef)` locally while the
    /// shard router enforces `Cr` with global per-class counts.
    pub fn without_required_classes(&self) -> DirectorySchema {
        let mut schema = self.clone();
        schema.structure.clear_required_classes();
        schema
    }

    /// A canonical, order-stable textual rendering of the whole schema:
    /// every class in id order with its kind, parent, allowed
    /// auxiliaries, and attribute constraints (already sorted inside the
    /// attribute schema), then uniqueness declarations and the structure
    /// triple. Unlike `Debug` — whose `HashMap` iteration order varies
    /// between otherwise identical schemas — two equal constructions
    /// render identically, which makes this the substrate for the
    /// checkpoint schema hash.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if let Some(name) = &self.name {
            let _ = writeln!(out, "schema {name}");
        }
        for id in self.classes.classes() {
            let kind = if self.classes.is_core(id) { "core" } else { "auxiliary" };
            let parent = self.classes.parent(id).map_or("-", |p| self.classes.name(p));
            let _ = write!(out, "class {} kind={kind} parent={parent}", self.classes.name(id));
            for aux in self.classes.allowed_auxiliaries(id) {
                let _ = write!(out, " aux={}", self.classes.name(*aux));
            }
            for attr in self.attributes.required(id) {
                let _ = write!(out, " req={attr}");
            }
            for attr in self.attributes.allowed(id) {
                let _ = write!(out, " opt={attr}");
            }
            if self.attributes.is_extensible(id) {
                let _ = write!(out, " extensible");
            }
            out.push('\n');
        }
        for attr in self.attributes.unique_attributes() {
            let _ = writeln!(out, "unique {attr}");
        }
        for class in self.structure.required_classes() {
            let _ = writeln!(out, "required-class {}", self.classes.name(class));
        }
        for rel in self.structure.required_rels() {
            let _ = writeln!(out, "require {}", self.display_required(rel));
        }
        for rel in self.structure.forbidden_rels() {
            let _ = writeln!(out, "forbid {}", self.display_forbidden(rel));
        }
        out
    }

    /// Total element count `|S|` across all three components — the schema
    /// size used in complexity accounting.
    pub fn size(&self) -> usize {
        self.classes.len()
            + self.classes.classes().map(|c| self.attributes.allowed_count(c)).sum::<usize>()
            + self.structure.len()
    }

    /// Renders a required relationship in paper-style notation, e.g.
    /// `orgGroup →de person`.
    pub fn display_required(&self, rel: &RequiredRel) -> String {
        format!("{} →{} {}", self.classes.name(rel.source), rel.kind, self.classes.name(rel.target))
    }

    /// Reconstructs a builder holding a copy of this schema, so elements can
    /// be added (schema evolution, benchmark extensions). Classes keep
    /// their declaration order, so `ClassId`s of the rebuilt schema match.
    pub fn to_builder(&self) -> SchemaBuilder {
        let mut builder = DirectorySchema::builder();
        if let Some(name) = self.name() {
            builder = builder.named(name);
        }
        let classes = &self.classes;
        for c in classes.classes() {
            let result = match (classes.is_core(c), classes.parent(c)) {
                (true, Some(parent)) => builder.core_class(classes.name(c), classes.name(parent)),
                (true, None) => Ok(builder), // top
                (false, _) => builder.auxiliary(classes.name(c)),
            };
            builder = result.expect("source schema is well-formed");
        }
        for core in classes.core_classes() {
            for &aux in classes.allowed_auxiliaries(core) {
                builder = builder
                    .allow_aux(classes.name(core), classes.name(aux))
                    .expect("source schema is well-formed");
            }
        }
        for c in classes.classes() {
            let required: Vec<&str> = self.attributes.required(c).collect();
            let allowed: Vec<&str> = self.attributes.allowed(c).collect();
            builder = builder
                .require_attrs(classes.name(c), required)
                .and_then(|b| b.allow_attrs(classes.name(c), allowed))
                .expect("source schema is well-formed");
        }
        for class in self.structure.required_classes() {
            builder =
                builder.require_class(classes.name(class)).expect("source schema is well-formed");
        }
        for rel in self.structure.required_rels() {
            builder = builder
                .require_rel(classes.name(rel.source), rel.kind, classes.name(rel.target))
                .expect("source schema is well-formed");
        }
        for rel in self.structure.forbidden_rels() {
            builder = builder
                .forbid_rel(classes.name(rel.upper), rel.kind, classes.name(rel.lower))
                .expect("source schema is well-formed");
        }
        builder = builder.unique_attrs(self.attributes.unique_attributes());
        for class in self.attributes.extensible_classes() {
            builder =
                builder.extensible(classes.name(class)).expect("source schema is well-formed");
        }
        builder
    }

    /// Renders a forbidden relationship, e.g. `person ↛ch top`.
    pub fn display_forbidden(&self, rel: &ForbiddenRel) -> String {
        format!("{} ↛{} {}", self.classes.name(rel.upper), rel.kind, self.classes.name(rel.lower))
    }
}

/// String-based builder for [`DirectorySchema`].
///
/// ```
/// use bschema_core::schema::{DirectorySchema, RelKind, ForbidKind};
///
/// let schema = DirectorySchema::builder()
///     .core_class("orgGroup", "top").unwrap()
///     .core_class("orgUnit", "orgGroup").unwrap()
///     .core_class("person", "top").unwrap()
///     .auxiliary("online").unwrap()
///     .allow_aux("person", "online").unwrap()
///     .require_attrs("person", ["name", "uid"]).unwrap()
///     .allow_attrs("person", ["cellularPhone"]).unwrap()
///     .require_class("orgUnit").unwrap()
///     .require_rel("orgGroup", RelKind::Descendant, "person").unwrap()
///     .forbid_rel("person", ForbidKind::Child, "top").unwrap()
///     .build();
/// assert_eq!(schema.structure().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    schema: DirectorySchema,
}

impl SchemaBuilder {
    /// Names the schema.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.schema.name = Some(name.into());
        self
    }

    /// Declares a core class under `parent` (use `"top"` for the root).
    pub fn core_class(mut self, name: &str, parent: &str) -> Result<Self, SchemaError> {
        let parent = self.schema.classes.resolve(parent)?;
        self.schema.classes.add_core(name, parent)?;
        Ok(self)
    }

    /// Declares an auxiliary class.
    pub fn auxiliary(mut self, name: &str) -> Result<Self, SchemaError> {
        self.schema.classes.add_auxiliary(name)?;
        Ok(self)
    }

    /// Permits auxiliary `aux` on entries of core class `core`.
    pub fn allow_aux(mut self, core: &str, aux: &str) -> Result<Self, SchemaError> {
        let core = self.schema.classes.resolve(core)?;
        let aux = self.schema.classes.resolve(aux)?;
        self.schema.classes.allow_auxiliary(core, aux)?;
        Ok(self)
    }

    /// Adds required attributes `ρ(class) ∪= attrs`.
    pub fn require_attrs<'a>(
        mut self,
        class: &str,
        attrs: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self, SchemaError> {
        let class = self.schema.classes.resolve(class)?;
        for attr in attrs {
            self.schema.attributes.require(class, attr);
        }
        Ok(self)
    }

    /// Adds allowed attributes `α(class) ∪= attrs`.
    pub fn allow_attrs<'a>(
        mut self,
        class: &str,
        attrs: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self, SchemaError> {
        let class = self.schema.classes.resolve(class)?;
        for attr in attrs {
            self.schema.attributes.allow(class, attr);
        }
        Ok(self)
    }

    /// Marks a class extensible (§6.2 `extensibleObject`): its members may
    /// hold any attribute.
    pub fn extensible(mut self, class: &str) -> Result<Self, SchemaError> {
        let id = self.schema.classes.resolve(class)?;
        self.schema.attributes.mark_extensible(id);
        Ok(self)
    }

    /// Declares directory-wide key attributes (§6.1): values must be unique
    /// across all entries.
    pub fn unique_attrs<'a>(mut self, attrs: impl IntoIterator<Item = &'a str>) -> Self {
        for attr in attrs {
            self.schema.attributes.declare_unique(attr);
        }
        self
    }

    fn resolve_core(&self, name: &str) -> Result<ClassId, SchemaError> {
        let id = self.schema.classes.resolve(name)?;
        if !self.schema.classes.is_core(id) {
            return Err(SchemaError::StructureOnAuxiliary { class: name.to_owned() });
        }
        Ok(id)
    }

    /// Adds `◇class` to `Cr`.
    pub fn require_class(mut self, class: &str) -> Result<Self, SchemaError> {
        let id = self.resolve_core(class)?;
        self.schema.structure.require_class(id);
        Ok(self)
    }

    /// Adds `(source, kind, target)` to `Er`.
    pub fn require_rel(
        mut self,
        source: &str,
        kind: RelKind,
        target: &str,
    ) -> Result<Self, SchemaError> {
        let source = self.resolve_core(source)?;
        let target = self.resolve_core(target)?;
        self.schema.structure.require_rel(source, kind, target);
        Ok(self)
    }

    /// Adds `(upper, kind, lower)` to `Ef`.
    pub fn forbid_rel(
        mut self,
        upper: &str,
        kind: ForbidKind,
        lower: &str,
    ) -> Result<Self, SchemaError> {
        let upper = self.resolve_core(upper)?;
        let lower = self.resolve_core(lower)?;
        self.schema.structure.forbid_rel(upper, kind, lower);
        Ok(self)
    }

    /// Finishes construction.
    pub fn build(self) -> DirectorySchema {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_end_to_end() {
        let s = DirectorySchema::builder()
            .named("test")
            .core_class("person", "top")
            .unwrap()
            .auxiliary("online")
            .unwrap()
            .allow_aux("person", "online")
            .unwrap()
            .require_attrs("person", ["uid"])
            .unwrap()
            .require_class("person")
            .unwrap()
            .forbid_rel("person", ForbidKind::Child, "top")
            .unwrap()
            .build();
        assert_eq!(s.name(), Some("test"));
        let person = s.classes().resolve("person").unwrap();
        assert!(s.attributes().is_required(person, "uid"));
        assert!(s.structure().is_class_required(person));
        assert!(s.size() > 0);
    }

    #[test]
    fn structure_rejects_auxiliary_classes() {
        let b = DirectorySchema::builder().auxiliary("online").unwrap();
        assert!(matches!(
            b.clone().require_class("online"),
            Err(SchemaError::StructureOnAuxiliary { .. })
        ));
        assert!(matches!(
            b.clone().require_rel("online", RelKind::Child, "top"),
            Err(SchemaError::StructureOnAuxiliary { .. })
        ));
        assert!(matches!(
            b.forbid_rel("top", ForbidKind::Child, "online"),
            Err(SchemaError::StructureOnAuxiliary { .. })
        ));
    }

    #[test]
    fn unknown_class_errors() {
        let b = DirectorySchema::builder();
        assert!(matches!(
            b.clone().core_class("x", "nosuch"),
            Err(SchemaError::Class(ClassSchemaError::UnknownClass(_)))
        ));
        assert!(matches!(
            b.require_attrs("nosuch", ["uid"]),
            Err(SchemaError::Class(ClassSchemaError::UnknownClass(_)))
        ));
    }

    #[test]
    fn display_notation() {
        let s = DirectorySchema::builder()
            .core_class("orgGroup", "top")
            .unwrap()
            .core_class("person", "top")
            .unwrap()
            .require_rel("orgGroup", RelKind::Descendant, "person")
            .unwrap()
            .forbid_rel("person", ForbidKind::Child, "top")
            .unwrap()
            .build();
        assert_eq!(s.display_required(&s.structure().required_rels()[0]), "orgGroup →de person");
        assert_eq!(s.display_forbidden(&s.structure().forbidden_rels()[0]), "person ↛ch top");
    }
}
