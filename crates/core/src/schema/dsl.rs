//! A plain-text DSL for bounding-schemas: parse and pretty-print.
//!
//! Bounding-schemas are administrative artefacts; operators need to read,
//! diff and version them. The format is line-oriented:
//!
//! ```text
//! schema "white pages"
//!
//! attribute uid : directoryString single
//! attribute name : directoryString
//!
//! class orgGroup extends top
//!   aux online
//! class orgUnit extends orgGroup
//! class person extends top
//!   aux online
//!   require name uid
//!   allow cellularPhone
//!
//! auxiliary online
//!   allow mail uri
//!
//! require-class orgUnit
//! require orgGroup descendant person
//! forbid person child top
//! ```
//!
//! Indented lines (`aux` / `require` / `allow`) attach to the preceding
//! `class` or `auxiliary` declaration. `#` starts a comment.

use std::fmt::Write as _;

use bschema_directory::{AttributeDef, AttributeRegistry, Syntax};

use super::{ClassId, DirectorySchema, ForbidKind, RelKind, SchemaError};

/// A parsed schema document: the bounding-schema plus the attribute
/// namespace its `attribute` lines declare.
#[derive(Debug, Clone)]
pub struct ParsedSchema {
    /// The bounding-schema.
    pub schema: DirectorySchema,
    /// Attribute definitions (`objectClass` plus every `attribute` line).
    pub registry: AttributeRegistry,
}

/// Errors from [`parse_schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

fn err(line: usize, message: impl Into<String>) -> DslError {
    DslError { line, message: message.into() }
}

fn schema_err(line: usize, e: SchemaError) -> DslError {
    err(line, e.to_string())
}

fn rel_kind(word: &str) -> Option<RelKind> {
    match word {
        "child" | "ch" => Some(RelKind::Child),
        "descendant" | "de" | "desc" => Some(RelKind::Descendant),
        "parent" | "pa" => Some(RelKind::Parent),
        "ancestor" | "an" | "anc" => Some(RelKind::Ancestor),
        _ => None,
    }
}

fn forbid_kind(word: &str) -> Option<ForbidKind> {
    match word {
        "child" | "ch" => Some(ForbidKind::Child),
        "descendant" | "de" | "desc" => Some(ForbidKind::Descendant),
        _ => None,
    }
}

/// Parses a schema document.
///
/// Parsing is two-pass so properties may reference classes declared later in
/// the document (`aux online` before `auxiliary online`): the first pass
/// registers all class, auxiliary and attribute declarations; the second
/// attaches properties and structure elements.
pub fn parse_schema(text: &str) -> Result<ParsedSchema, DslError> {
    let mut builder = DirectorySchema::builder();
    let mut registry = AttributeRegistry::new();
    /// The declaration an indented property line attaches to.
    enum Context {
        None,
        Class(String),
    }

    struct Line<'a> {
        line_no: usize,
        indented: bool,
        words: Vec<&'a str>,
        raw: &'a str,
    }

    let mut lines: Vec<Line> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if line.trim().is_empty() {
            continue;
        }
        lines.push(Line {
            line_no: i + 1,
            indented: line.starts_with(' ') || line.starts_with('\t'),
            words: line.split_whitespace().collect(),
            raw: line,
        });
    }

    // ----- pass 1: declarations -----
    for l in &lines {
        if l.indented {
            continue;
        }
        let line_no = l.line_no;
        match l.words[0] {
            "schema" => {
                let name = l.raw.trim_start()["schema".len()..].trim().trim_matches('"');
                builder = builder.named(name);
            }
            "attribute" => {
                // attribute <name> : <syntax> [single]
                let rest: Vec<&str> = l.words[1..].iter().copied().filter(|w| *w != ":").collect();
                let (name, syntax_word) = match rest.as_slice() {
                    [name, syntax, ..] => (*name, *syntax),
                    _ => {
                        return Err(err(
                            line_no,
                            "attribute line needs `attribute <name> : <syntax>`",
                        ))
                    }
                };
                let syntax = Syntax::by_name(syntax_word)
                    .ok_or_else(|| err(line_no, format!("unknown syntax {syntax_word:?}")))?;
                let mut def = AttributeDef::new(name, syntax);
                if rest.get(2) == Some(&"single") {
                    def = def.single_valued();
                }
                registry.register(def).map_err(|e| err(line_no, e.to_string()))?;
            }
            "class" => {
                let (name, parent) = match l.words.as_slice() {
                    ["class", name] => (*name, "top"),
                    ["class", name, "extends", parent] => (*name, *parent),
                    _ => {
                        return Err(err(
                            line_no,
                            "class line needs `class <name> [extends <parent>]`",
                        ))
                    }
                };
                if !name.eq_ignore_ascii_case("top") {
                    builder =
                        builder.core_class(name, parent).map_err(|e| schema_err(line_no, e))?;
                }
            }
            "auxiliary" => {
                let name =
                    l.words.get(1).ok_or_else(|| err(line_no, "auxiliary line needs a name"))?;
                builder = builder.auxiliary(name).map_err(|e| schema_err(line_no, e))?;
            }
            "require-class" | "require" | "forbid" => {}
            "unique" => {
                if l.words.len() < 2 {
                    return Err(err(line_no, "unique line needs at least one attribute"));
                }
                builder = builder.unique_attrs(l.words[1..].iter().copied());
            }
            other => return Err(err(line_no, format!("unknown directive {other:?}"))),
        }
    }

    // ----- pass 2: properties and structure elements -----
    let mut context = Context::None;
    for l in &lines {
        let line_no = l.line_no;
        let words = &l.words;

        if l.indented {
            let Context::Class(ref class) = context else {
                return Err(err(line_no, "indented property with no preceding class declaration"));
            };
            match words[0] {
                "aux" => {
                    for aux in &words[1..] {
                        builder =
                            builder.allow_aux(class, aux).map_err(|e| schema_err(line_no, e))?;
                    }
                }
                "require" => {
                    builder = builder
                        .require_attrs(class, words[1..].iter().copied())
                        .map_err(|e| schema_err(line_no, e))?;
                }
                "allow" => {
                    builder = builder
                        .allow_attrs(class, words[1..].iter().copied())
                        .map_err(|e| schema_err(line_no, e))?;
                }
                "extensible" => {
                    builder = builder.extensible(class).map_err(|e| schema_err(line_no, e))?;
                }
                other => return Err(err(line_no, format!("unknown property {other:?}"))),
            }
            continue;
        }

        match words[0] {
            "schema" | "attribute" | "unique" => {
                context = Context::None; // handled in pass 1
            }
            "class" | "auxiliary" => {
                // Shape validated in pass 1.
                context = Context::Class(words[1].to_owned());
            }
            "require-class" => {
                let name =
                    words.get(1).ok_or_else(|| err(line_no, "require-class needs a class name"))?;
                builder = builder.require_class(name).map_err(|e| schema_err(line_no, e))?;
                context = Context::None;
            }
            "require" => {
                let (src, kind, tgt) = match words.as_slice() {
                    ["require", src, kind, tgt] => (*src, *kind, *tgt),
                    _ => {
                        return Err(err(
                            line_no,
                            "require line needs `require <src> <kind> <target>`",
                        ))
                    }
                };
                let kind = rel_kind(kind)
                    .ok_or_else(|| err(line_no, format!("unknown relationship kind {kind:?}")))?;
                builder =
                    builder.require_rel(src, kind, tgt).map_err(|e| schema_err(line_no, e))?;
                context = Context::None;
            }
            "forbid" => {
                let (upper, kind, lower) = match words.as_slice() {
                    ["forbid", upper, kind, lower] => (*upper, *kind, *lower),
                    _ => {
                        return Err(err(
                            line_no,
                            "forbid line needs `forbid <upper> <kind> <lower>`",
                        ))
                    }
                };
                let kind = forbid_kind(kind).ok_or_else(|| {
                    err(
                        line_no,
                        format!("forbidden kind must be child or descendant, got {kind:?}"),
                    )
                })?;
                builder =
                    builder.forbid_rel(upper, kind, lower).map_err(|e| schema_err(line_no, e))?;
                context = Context::None;
            }
            other => return Err(err(line_no, format!("unknown directive {other:?}"))),
        }
    }

    Ok(ParsedSchema { schema: builder.build(), registry })
}

/// Pretty-prints a schema (and optionally its attribute registry) in the DSL
/// format; `parse_schema` of the output reproduces the schema.
pub fn print_schema(schema: &DirectorySchema, registry: Option<&AttributeRegistry>) -> String {
    let mut out = String::new();
    if let Some(name) = schema.name() {
        let _ = writeln!(out, "schema \"{name}\"\n");
    }
    if let Some(reg) = registry {
        for def in reg.iter() {
            if def.key() == bschema_directory::OBJECT_CLASS {
                continue;
            }
            let single = if def.is_single_valued() { " single" } else { "" };
            let _ = writeln!(out, "attribute {} : {}{}", def.name(), def.syntax().name(), single);
        }
        out.push('\n');
    }

    let classes = schema.classes();
    let print_class_body = |out: &mut String, c: ClassId| {
        if schema.attributes().is_extensible(c) {
            let _ = writeln!(out, "  extensible");
        }
        let auxes = classes.allowed_auxiliaries(c);
        if !auxes.is_empty() {
            let names: Vec<&str> = auxes.iter().map(|&a| classes.name(a)).collect();
            let _ = writeln!(out, "  aux {}", names.join(" "));
        }
        let required: Vec<&str> = schema.attributes().required(c).collect();
        if !required.is_empty() {
            let _ = writeln!(out, "  require {}", required.join(" "));
        }
        let allowed: Vec<&str> = schema
            .attributes()
            .allowed(c)
            .filter(|a| !schema.attributes().is_required(c, a))
            .collect();
        if !allowed.is_empty() {
            let _ = writeln!(out, "  allow {}", allowed.join(" "));
        }
    };

    let uniques: Vec<&str> = schema.attributes().unique_attributes().collect();
    if !uniques.is_empty() {
        let _ = writeln!(out, "unique {}\n", uniques.join(" "));
    }

    // Core classes in declaration order guarantees parents print first.
    for c in classes.core_classes() {
        if c == classes.top() {
            // `top` is implicit, but print its attribute rules if any.
            let has_body = classes.allowed_auxiliaries(c).len()
                + schema.attributes().allowed_count(c)
                + usize::from(schema.attributes().is_extensible(c))
                > 0;
            if has_body {
                let _ = writeln!(out, "class top");
                print_class_body(&mut out, c);
            }
            continue;
        }
        let parent = classes.parent(c).expect("non-top core class has a parent");
        let _ = writeln!(out, "class {} extends {}", classes.name(c), classes.name(parent));
        print_class_body(&mut out, c);
    }
    for c in classes.auxiliary_classes() {
        let _ = writeln!(out, "auxiliary {}", classes.name(c));
        print_class_body(&mut out, c);
    }

    let structure = schema.structure();
    if !structure.is_empty() {
        out.push('\n');
    }
    for c in structure.required_classes() {
        let _ = writeln!(out, "require-class {}", classes.name(c));
    }
    for rel in structure.required_rels() {
        let kind = match rel.kind {
            RelKind::Child => "child",
            RelKind::Descendant => "descendant",
            RelKind::Parent => "parent",
            RelKind::Ancestor => "ancestor",
        };
        let _ = writeln!(
            out,
            "require {} {} {}",
            classes.name(rel.source),
            kind,
            classes.name(rel.target)
        );
    }
    for rel in structure.forbidden_rels() {
        let kind = match rel.kind {
            ForbidKind::Child => "child",
            ForbidKind::Descendant => "descendant",
        };
        let _ = writeln!(
            out,
            "forbid {} {} {}",
            classes.name(rel.upper),
            kind,
            classes.name(rel.lower)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const WHITE_PAGES: &str = r#"
schema "white pages"

# attribute namespace
attribute uid : directoryString single
attribute name : directoryString
attribute mail : ia5String
attribute cellularPhone : telephoneNumber

class orgGroup extends top
  aux online
class organization extends orgGroup
class orgUnit extends orgGroup
class person extends top
  aux online
  require name uid
  allow cellularPhone mail
class staffMember extends person
  aux manager secretary consultant

auxiliary online
  allow mail
auxiliary manager
auxiliary secretary
auxiliary consultant

require-class orgUnit
require orgGroup child orgUnit
require orgGroup descendant person
forbid person child top
"#;

    #[test]
    fn parse_white_pages() {
        let parsed = parse_schema(WHITE_PAGES).unwrap();
        let s = &parsed.schema;
        assert_eq!(s.name(), Some("white pages"));
        let classes = s.classes();
        let person = classes.resolve("person").unwrap();
        let org_group = classes.resolve("orgGroup").unwrap();
        assert!(classes.is_subclass(classes.resolve("organization").unwrap(), org_group));
        assert!(s.attributes().is_required(person, "uid"));
        assert!(s.attributes().is_allowed(person, "cellularPhone"));
        assert!(!s.attributes().is_allowed(org_group, "cellularPhone"));
        assert_eq!(s.structure().required_rels().len(), 2);
        assert_eq!(s.structure().forbidden_rels().len(), 1);
        assert!(parsed.registry.get("uid").unwrap().is_single_valued());
        let online = classes.resolve("online").unwrap();
        assert!(s.attributes().is_allowed(online, "mail"));
    }

    #[test]
    fn roundtrip_print_parse() {
        let parsed = parse_schema(WHITE_PAGES).unwrap();
        let printed = print_schema(&parsed.schema, Some(&parsed.registry));
        let reparsed =
            parse_schema(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Structural equality via a second print.
        let printed2 = print_schema(&reparsed.schema, Some(&reparsed.registry));
        assert_eq!(printed, printed2);
        assert_eq!(reparsed.schema.size(), parsed.schema.size());
    }

    #[test]
    fn comments_and_blanks() {
        let parsed = parse_schema("# nothing but comments\n\n# more\n").unwrap();
        assert_eq!(parsed.schema.classes().len(), 1); // just top
    }

    #[test]
    fn error_reporting_has_line_numbers() {
        let e = parse_schema("class a extends top\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_schema("  aux online\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("no preceding class"));
        let e = parse_schema("attribute x : nosuchsyntax\n").unwrap_err();
        assert!(e.message.contains("unknown syntax"));
        let e = parse_schema("require a b\n").unwrap_err();
        assert!(e.message.contains("require line needs"));
        let e = parse_schema("class a extends nowhere\n").unwrap_err();
        assert!(e.message.contains("unknown class"));
    }

    #[test]
    fn forbid_rejects_upward_kinds() {
        let text = "class a extends top\nclass b extends top\nforbid a parent b\n";
        let e = parse_schema(text).unwrap_err();
        assert!(e.message.contains("child or descendant"));
    }

    #[test]
    fn extensible_property_roundtrips() {
        let text = "class bag extends top\n  extensible\nclass person extends top\n  require uid\n";
        let parsed = parse_schema(text).unwrap();
        let bag = parsed.schema.classes().resolve("bag").unwrap();
        let person = parsed.schema.classes().resolve("person").unwrap();
        assert!(parsed.schema.attributes().is_extensible(bag));
        assert!(!parsed.schema.attributes().is_extensible(person));
        assert!(parsed.schema.attributes().is_allowed(bag, "whatever"));
        let printed = print_schema(&parsed.schema, None);
        assert!(printed.contains("  extensible"), "{printed}");
        let reparsed = parse_schema(&printed).unwrap();
        let bag2 = reparsed.schema.classes().resolve("bag").unwrap();
        assert!(reparsed.schema.attributes().is_extensible(bag2));
    }

    #[test]
    fn unique_directive_roundtrips() {
        let text = "class person extends top\nunique uid mail\n";
        let parsed = parse_schema(text).unwrap();
        assert!(parsed.schema.attributes().is_unique("uid"));
        assert!(parsed.schema.attributes().is_unique("MAIL"));
        assert!(!parsed.schema.attributes().is_unique("name"));
        let printed = print_schema(&parsed.schema, None);
        assert!(printed.contains("unique mail uid"), "{printed}");
        let reparsed = parse_schema(&printed).unwrap();
        assert!(reparsed.schema.attributes().is_unique("uid"));
        // Empty unique line is rejected.
        assert!(parse_schema("unique\n").is_err());
    }

    #[test]
    fn kind_abbreviations() {
        let text = "class a extends top\nclass b extends top\nrequire a ch b\nrequire a de b\nrequire a pa b\nrequire a an b\nforbid a ch b\n";
        let parsed = parse_schema(text).unwrap();
        assert_eq!(parsed.schema.structure().required_rels().len(), 4);
        assert_eq!(parsed.schema.structure().forbidden_rels().len(), 1);
    }
}
