//! The structure schema `S = (Cr, Er, Ef)` of Definition 2.4.
//!
//! * `Cr` — required object classes: `◇c` demands at least one entry whose
//!   classes include `c`.
//! * `Er ⊆ Cc × {ch, de, pa, an} × Cc` — required structural relationships:
//!   the triple `(ci, k, cj)` demands every `ci` entry have a *k*-related
//!   entry belonging to `cj` (a child / descendant / parent / ancestor,
//!   per Definition 2.6).
//! * `Ef ⊆ Cc × {ch, de} × Cc` — forbidden structural relationships: the
//!   triple `(ci, k, cj)` forbids any `ci` entry from having a `cj` child /
//!   descendant.

use std::collections::BTreeSet;
use std::fmt;

use super::class::ClassId;

/// Direction/kind of a required structural relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelKind {
    /// `(ci, ch, cj)`: every `ci` entry has a child in `cj`
    /// (paper notation `ci → cj`).
    Child,
    /// `(ci, de, cj)`: every `ci` entry has a proper descendant in `cj`
    /// (`ci ⇒⇒ cj`).
    Descendant,
    /// `(ci, pa, cj)`: every `ci` entry has a parent in `cj`
    /// (`cj ← ci`).
    Parent,
    /// `(ci, an, cj)`: every `ci` entry has a proper ancestor in `cj`
    /// (`cj ⇐⇐ ci`).
    Ancestor,
}

impl RelKind {
    /// All four kinds, for table-driven tests and benches.
    pub const ALL: [RelKind; 4] =
        [RelKind::Child, RelKind::Descendant, RelKind::Parent, RelKind::Ancestor];

    /// Short mnemonic matching the paper's `{ch, de, pa, an}`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RelKind::Child => "ch",
            RelKind::Descendant => "de",
            RelKind::Parent => "pa",
            RelKind::Ancestor => "an",
        }
    }
}

impl fmt::Display for RelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Kind of a forbidden structural relationship (`Ef` only admits downward
/// forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ForbidKind {
    /// `(ci, ch, cj)`: no `ci` entry has a `cj` child (`ci ↛ cj`).
    Child,
    /// `(ci, de, cj)`: no `ci` entry has a `cj` descendant (`ci ↛↛ cj`).
    Descendant,
}

impl ForbidKind {
    /// Both kinds.
    pub const ALL: [ForbidKind; 2] = [ForbidKind::Child, ForbidKind::Descendant];

    /// Short mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ForbidKind::Child => "ch",
            ForbidKind::Descendant => "de",
        }
    }
}

impl fmt::Display for ForbidKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One required structural relationship `(source, kind, target) ∈ Er`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequiredRel {
    /// `ci` — the class whose members carry the obligation.
    pub source: ClassId,
    /// The relationship direction.
    pub kind: RelKind,
    /// `cj` — the class the related entry must belong to.
    pub target: ClassId,
}

/// One forbidden structural relationship `(upper, kind, lower) ∈ Ef`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ForbiddenRel {
    /// `ci` — the (would-be) parent/ancestor class.
    pub upper: ClassId,
    /// Child or descendant.
    pub kind: ForbidKind,
    /// `cj` — the (would-be) child/descendant class.
    pub lower: ClassId,
}

/// The structure schema triple.
#[derive(Debug, Clone, Default)]
pub struct StructureSchema {
    required_classes: BTreeSet<ClassId>,
    required: Vec<RequiredRel>,
    forbidden: Vec<ForbiddenRel>,
}

impl StructureSchema {
    /// An empty structure schema (no structural constraints).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `◇class` to `Cr`.
    pub fn require_class(&mut self, class: ClassId) {
        self.required_classes.insert(class);
    }

    /// Adds a required relationship to `Er` (idempotent).
    pub fn require_rel(&mut self, source: ClassId, kind: RelKind, target: ClassId) {
        let rel = RequiredRel { source, kind, target };
        if !self.required.contains(&rel) {
            self.required.push(rel);
        }
    }

    /// Adds a forbidden relationship to `Ef` (idempotent).
    pub fn forbid_rel(&mut self, upper: ClassId, kind: ForbidKind, lower: ClassId) {
        let rel = ForbiddenRel { upper, kind, lower };
        if !self.forbidden.contains(&rel) {
            self.forbidden.push(rel);
        }
    }

    /// Empties `Cr`, leaving `Er`/`Ef` untouched. Used to derive the
    /// shard-local view of a schema: `◇c` is the only instance-global
    /// element of the triple, so per-shard checkers drop it and the
    /// shard router enforces it with global per-class counts.
    pub(crate) fn clear_required_classes(&mut self) {
        self.required_classes.clear();
    }

    /// `Cr`, sorted.
    pub fn required_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.required_classes.iter().copied()
    }

    /// Whether `◇class ∈ Cr`.
    pub fn is_class_required(&self, class: ClassId) -> bool {
        self.required_classes.contains(&class)
    }

    /// `Er`, in insertion order.
    pub fn required_rels(&self) -> &[RequiredRel] {
        &self.required
    }

    /// `Ef`, in insertion order.
    pub fn forbidden_rels(&self) -> &[ForbiddenRel] {
        &self.forbidden
    }

    /// `|S|` — total number of structure-schema elements, as used in the
    /// Theorem 3.1 bound.
    pub fn len(&self) -> usize {
        self.required_classes.len() + self.required.len() + self.forbidden.len()
    }

    /// True when no structural constraints exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ClassId = ClassId(1);
    const B: ClassId = ClassId(2);

    #[test]
    fn build_and_inspect() {
        let mut s = StructureSchema::new();
        s.require_class(A);
        s.require_rel(A, RelKind::Descendant, B);
        s.forbid_rel(B, ForbidKind::Child, A);
        assert!(s.is_class_required(A));
        assert!(!s.is_class_required(B));
        assert_eq!(s.required_rels().len(), 1);
        assert_eq!(s.forbidden_rels().len(), 1);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(
            s.required_rels()[0],
            RequiredRel { source: A, kind: RelKind::Descendant, target: B }
        );
    }

    #[test]
    fn idempotent_insertion() {
        let mut s = StructureSchema::new();
        s.require_rel(A, RelKind::Child, B);
        s.require_rel(A, RelKind::Child, B);
        s.forbid_rel(A, ForbidKind::Descendant, B);
        s.forbid_rel(A, ForbidKind::Descendant, B);
        s.require_class(A);
        s.require_class(A);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn kind_mnemonics() {
        assert_eq!(RelKind::Child.to_string(), "ch");
        assert_eq!(RelKind::Descendant.to_string(), "de");
        assert_eq!(RelKind::Parent.to_string(), "pa");
        assert_eq!(RelKind::Ancestor.to_string(), "an");
        assert_eq!(ForbidKind::Child.to_string(), "ch");
        assert_eq!(ForbidKind::Descendant.to_string(), "de");
        assert_eq!(RelKind::ALL.len(), 4);
        assert_eq!(ForbidKind::ALL.len(), 2);
    }
}
