//! The attribute schema `A = (C, A, ρ, α)` of Definition 2.2.
//!
//! Per object class, `ρ(c)` gives the attributes every member entry *must*
//! hold a value for (the lower bound) and `α(c)` the attributes a member
//! *may* hold (the upper bound), with `ρ(c) ⊆ α(c)` enforced structurally:
//! requiring an attribute also allows it.

use std::collections::{BTreeSet, HashMap};

use super::class::ClassId;

/// Per-class required (`ρ`) and allowed (`α`) attribute sets.
///
/// Attribute names are stored lowercased (LDAP attribute names are
/// case-insensitive). `objectClass` is implicitly allowed for every class:
/// Definition 2.1 makes it part of every entry, so listing it in each `α(c)`
/// would be noise.
#[derive(Debug, Clone, Default)]
pub struct AttributeSchema {
    required: HashMap<ClassId, BTreeSet<String>>,
    allowed: HashMap<ClassId, BTreeSet<String>>,
    /// Attributes whose values must be unique across the whole instance —
    /// the paper's §6.1 key notion: "any notion of a key in an LDAP
    /// directory must be unique across all entries in the directory
    /// instance, not just within a single object class".
    unique: BTreeSet<String>,
    /// Classes whose members may hold *any* attribute — §6.2's
    /// "extensible object that allows all possible attributes" (LDAPv3
    /// `extensibleObject`). For these, `α(c) = 𝒜`.
    extensible: BTreeSet<ClassId>,
}

impl AttributeSchema {
    /// An empty attribute schema: nothing required, nothing (explicitly)
    /// allowed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `attr` to `ρ(class)` (and hence to `α(class)`).
    pub fn require(&mut self, class: ClassId, attr: &str) {
        let key = attr.to_ascii_lowercase();
        self.allowed.entry(class).or_default().insert(key.clone());
        self.required.entry(class).or_default().insert(key);
    }

    /// Adds `attr` to `α(class)` only.
    pub fn allow(&mut self, class: ClassId, attr: &str) {
        self.allowed.entry(class).or_default().insert(attr.to_ascii_lowercase());
    }

    /// `ρ(class)` — required attribute keys, sorted.
    pub fn required(&self, class: ClassId) -> impl Iterator<Item = &str> {
        self.required.get(&class).into_iter().flatten().map(String::as_str)
    }

    /// `α(class)` — allowed attribute keys, sorted (includes required ones;
    /// excludes the implicit `objectClass`).
    pub fn allowed(&self, class: ClassId) -> impl Iterator<Item = &str> {
        self.allowed.get(&class).into_iter().flatten().map(String::as_str)
    }

    /// Whether `attr` is required for `class`.
    pub fn is_required(&self, class: ClassId, attr: &str) -> bool {
        let key = attr.to_ascii_lowercase();
        self.required.get(&class).is_some_and(|s| s.contains(&key))
    }

    /// Whether `attr` is allowed for `class` (`objectClass` always is, and
    /// extensible classes allow everything).
    pub fn is_allowed(&self, class: ClassId, attr: &str) -> bool {
        if self.extensible.contains(&class) {
            return true;
        }
        let key = attr.to_ascii_lowercase();
        key == bschema_directory::OBJECT_CLASS
            || self.allowed.get(&class).is_some_and(|s| s.contains(&key))
    }

    /// Marks `class` extensible: its members may hold any attribute
    /// (`α(class) = 𝒜`, the §6.2 `extensibleObject` notion).
    pub fn mark_extensible(&mut self, class: ClassId) {
        self.extensible.insert(class);
    }

    /// Whether `class` allows all attributes.
    pub fn is_extensible(&self, class: ClassId) -> bool {
        self.extensible.contains(&class)
    }

    /// All extensible classes.
    pub fn extensible_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.extensible.iter().copied()
    }

    /// `|α(class)|` — appears in the paper's content-check complexity bound.
    pub fn allowed_count(&self, class: ClassId) -> usize {
        self.allowed.get(&class).map_or(0, BTreeSet::len)
    }

    /// Every attribute key mentioned anywhere in the schema (the schema's
    /// finite `A ⊆ 𝒜`).
    pub fn mentioned_attributes(&self) -> BTreeSet<&str> {
        self.allowed.values().flatten().map(String::as_str).collect()
    }

    /// Classes that have at least one required or allowed attribute.
    pub fn classes_with_attributes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.allowed.keys().copied()
    }

    /// Declares `attr` a directory-wide key (§6.1): no two entries may
    /// share a value for it.
    pub fn declare_unique(&mut self, attr: &str) {
        self.unique.insert(attr.to_ascii_lowercase());
    }

    /// Whether `attr` is a directory-wide key.
    pub fn is_unique(&self, attr: &str) -> bool {
        self.unique.contains(&attr.to_ascii_lowercase())
    }

    /// All declared keys, sorted.
    pub fn unique_attributes(&self) -> impl Iterator<Item = &str> {
        self.unique.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERSON: ClassId = ClassId(1);
    const ORG: ClassId = ClassId(2);

    #[test]
    fn require_implies_allow() {
        let mut a = AttributeSchema::new();
        a.require(PERSON, "name");
        a.require(PERSON, "uid");
        assert!(a.is_required(PERSON, "name"));
        assert!(a.is_allowed(PERSON, "name"));
        assert_eq!(a.required(PERSON).collect::<Vec<_>>(), ["name", "uid"]);
        // ρ(c) ⊆ α(c) by construction.
        for attr in a.required(PERSON) {
            assert!(a.is_allowed(PERSON, attr));
        }
    }

    #[test]
    fn allow_does_not_require() {
        let mut a = AttributeSchema::new();
        a.allow(PERSON, "cellularPhone");
        assert!(a.is_allowed(PERSON, "cellularPhone"));
        assert!(!a.is_required(PERSON, "cellularPhone"));
    }

    #[test]
    fn names_fold_case() {
        let mut a = AttributeSchema::new();
        a.require(PERSON, "TelephoneNumber");
        assert!(a.is_required(PERSON, "telephonenumber"));
        assert!(a.is_allowed(PERSON, "TELEPHONENUMBER"));
    }

    #[test]
    fn object_class_always_allowed() {
        let a = AttributeSchema::new();
        assert!(a.is_allowed(PERSON, "objectClass"));
        assert!(a.is_allowed(ORG, "objectclass"));
    }

    #[test]
    fn extensible_classes_allow_everything() {
        let mut a = AttributeSchema::new();
        assert!(!a.is_allowed(PERSON, "anything"));
        a.mark_extensible(PERSON);
        assert!(a.is_extensible(PERSON));
        assert!(a.is_allowed(PERSON, "anything"));
        assert!(a.is_allowed(PERSON, "somethingElse"));
        // Requirements still apply independently.
        a.require(PERSON, "uid");
        assert!(a.is_required(PERSON, "uid"));
        // Other classes unaffected.
        assert!(!a.is_extensible(ORG));
        assert!(!a.is_allowed(ORG, "anything"));
        assert_eq!(a.extensible_classes().collect::<Vec<_>>(), [PERSON]);
    }

    #[test]
    fn per_class_isolation() {
        let mut a = AttributeSchema::new();
        a.require(PERSON, "uid");
        a.allow(ORG, "o");
        assert!(!a.is_allowed(ORG, "uid"));
        assert!(!a.is_allowed(PERSON, "o"));
        assert_eq!(a.allowed_count(PERSON), 1);
        assert_eq!(a.allowed_count(ClassId(99)), 0);
        let mentioned = a.mentioned_attributes();
        assert!(mentioned.contains("uid") && mentioned.contains("o"));
    }
}
