//! The class schema `H = (C, E, Aux)` of Definition 2.3.
//!
//! Core object classes form a single-inheritance tree rooted at `top`;
//! auxiliary classes attach to core classes via the `Aux` map. The tree
//! induces two derived relations the rest of the system consumes:
//!
//! * `ci ⇒ cj` (subclass, reflexive-transitive): every entry belonging to
//!   `ci` must also belong to `cj`;
//! * `ci ⇏ cj` (exclusion): `ci` and `cj` are incomparable core classes, so
//!   no entry may belong to both (single inheritance).

use std::collections::HashMap;
use std::fmt;

/// Compact handle to a class within one schema (index into its class table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Raw index, for side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Core (structural) vs auxiliary object class — the paper's `Cc` / `Cx`
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// Member of the single-inheritance tree.
    Core,
    /// Attachable to entries whose core class allows it.
    Auxiliary,
}

/// Errors from class-schema construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassSchemaError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// The referenced class is not declared.
    UnknownClass(String),
    /// A core class was used where an auxiliary was expected, or vice versa.
    WrongKind {
        /// The offending class.
        class: String,
        /// What the operation expected.
        expected: ClassKind,
    },
}

impl fmt::Display for ClassSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassSchemaError::DuplicateClass(c) => write!(f, "class {c:?} declared twice"),
            ClassSchemaError::UnknownClass(c) => write!(f, "unknown class {c:?}"),
            ClassSchemaError::WrongKind { class, expected } => {
                let expected = match expected {
                    ClassKind::Core => "a core class",
                    ClassKind::Auxiliary => "an auxiliary class",
                };
                write!(f, "class {class:?} is not {expected}")
            }
        }
    }
}

impl std::error::Error for ClassSchemaError {}

/// The class schema: core-class tree plus auxiliary associations.
#[derive(Debug, Clone)]
pub struct ClassSchema {
    /// Display names; index = `ClassId`.
    names: Vec<String>,
    /// lowercase name → id.
    by_key: HashMap<String, ClassId>,
    kinds: Vec<ClassKind>,
    /// Parent in the core tree (`None` for `top` and for auxiliaries).
    parents: Vec<Option<ClassId>>,
    /// Depth in the core tree (`0` for `top`; unused for auxiliaries).
    depths: Vec<u32>,
    /// `Aux(c)` per core class.
    aux: Vec<Vec<ClassId>>,
    top: ClassId,
}

impl Default for ClassSchema {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassSchema {
    /// A schema containing only `top`.
    pub fn new() -> Self {
        let mut s = ClassSchema {
            names: Vec::new(),
            by_key: HashMap::new(),
            kinds: Vec::new(),
            parents: Vec::new(),
            depths: Vec::new(),
            aux: Vec::new(),
            top: ClassId(0),
        };
        let top = s.insert("top", ClassKind::Core, None, 0).expect("fresh schema accepts top");
        s.top = top;
        s
    }

    fn insert(
        &mut self,
        name: &str,
        kind: ClassKind,
        parent: Option<ClassId>,
        depth: u32,
    ) -> Result<ClassId, ClassSchemaError> {
        let key = name.to_ascii_lowercase();
        if self.by_key.contains_key(&key) {
            return Err(ClassSchemaError::DuplicateClass(name.to_owned()));
        }
        let id = ClassId(u32::try_from(self.names.len()).expect("class count fits u32"));
        self.names.push(name.to_owned());
        self.by_key.insert(key, id);
        self.kinds.push(kind);
        self.parents.push(parent);
        self.depths.push(depth);
        self.aux.push(Vec::new());
        Ok(id)
    }

    /// The root core class `top`.
    pub fn top(&self) -> ClassId {
        self.top
    }

    /// Declares a core class under `parent` (which must be core).
    pub fn add_core(&mut self, name: &str, parent: ClassId) -> Result<ClassId, ClassSchemaError> {
        self.check_kind(parent, ClassKind::Core)?;
        let depth = self.depths[parent.index()] + 1;
        self.insert(name, ClassKind::Core, Some(parent), depth)
    }

    /// Declares a core class whose parent is `top`.
    pub fn add_core_under_top(&mut self, name: &str) -> Result<ClassId, ClassSchemaError> {
        self.add_core(name, self.top)
    }

    /// Declares an auxiliary class.
    pub fn add_auxiliary(&mut self, name: &str) -> Result<ClassId, ClassSchemaError> {
        self.insert(name, ClassKind::Auxiliary, None, 0)
    }

    /// Permits entries of core class `core` to also carry auxiliary `aux` —
    /// extends `Aux(core)`.
    pub fn allow_auxiliary(&mut self, core: ClassId, aux: ClassId) -> Result<(), ClassSchemaError> {
        self.check_kind(core, ClassKind::Core)?;
        self.check_kind(aux, ClassKind::Auxiliary)?;
        if !self.aux[core.index()].contains(&aux) {
            self.aux[core.index()].push(aux);
        }
        Ok(())
    }

    fn check_kind(&self, class: ClassId, expected: ClassKind) -> Result<(), ClassSchemaError> {
        if self.kinds[class.index()] != expected {
            return Err(ClassSchemaError::WrongKind {
                class: self.name(class).to_owned(),
                expected,
            });
        }
        Ok(())
    }

    /// Resolves a (case-insensitive) name.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.by_key.get(&name.to_ascii_lowercase()).copied()
    }

    /// Resolves a name, erroring when absent.
    pub fn resolve(&self, name: &str) -> Result<ClassId, ClassSchemaError> {
        self.lookup(name).ok_or_else(|| ClassSchemaError::UnknownClass(name.to_owned()))
    }

    /// Display name of `id`.
    pub fn name(&self, id: ClassId) -> &str {
        &self.names[id.index()]
    }

    /// Core or auxiliary?
    pub fn kind(&self, id: ClassId) -> ClassKind {
        self.kinds[id.index()]
    }

    /// True for core classes.
    pub fn is_core(&self, id: ClassId) -> bool {
        self.kinds[id.index()] == ClassKind::Core
    }

    /// The parent of a core class (`None` for `top` and auxiliaries).
    pub fn parent(&self, id: ClassId) -> Option<ClassId> {
        self.parents[id.index()]
    }

    /// Depth of a core class in the tree (`top` = 0).
    pub fn depth(&self, id: ClassId) -> u32 {
        self.depths[id.index()]
    }

    /// Maximum depth of the core tree — the paper's `depth(H)`.
    pub fn tree_depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// `Aux(core)`: the auxiliaries allowed for a core class.
    pub fn allowed_auxiliaries(&self, core: ClassId) -> &[ClassId] {
        &self.aux[core.index()]
    }

    /// Largest `|Aux(c)|` over all core classes — appears in the paper's
    /// content-check complexity bound.
    pub fn max_aux(&self) -> usize {
        self.aux.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// All class ids, in declaration order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.names.len() as u32).map(ClassId)
    }

    /// All core class ids.
    pub fn core_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.classes().filter(|&c| self.is_core(c))
    }

    /// All auxiliary class ids.
    pub fn auxiliary_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.classes().filter(|&c| !self.is_core(c))
    }

    /// Number of declared classes (core + auxiliary).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never true: `top` always exists.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    // ----- derived relations -----

    /// `sub ⇒ sup` (reflexive-transitive subclass among core classes):
    /// every `sub` entry must also belong to `sup`.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        if !self.is_core(sub) || !self.is_core(sup) {
            return sub == sup;
        }
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.parents[c.index()];
        }
        false
    }

    /// `a ⇏ b`: incomparable core classes, forbidden from co-occurring.
    pub fn are_exclusive(&self, a: ClassId, b: ClassId) -> bool {
        self.is_core(a) && self.is_core(b) && !self.is_subclass(a, b) && !self.is_subclass(b, a)
    }

    /// `c` and its proper superclasses, nearest first, ending at `top`.
    pub fn superclass_chain(&self, c: ClassId) -> Vec<ClassId> {
        let mut out = Vec::with_capacity(self.depths[c.index()] as usize + 1);
        let mut cur = Some(c);
        while let Some(x) = cur {
            out.push(x);
            cur = self.parents[x.index()];
        }
        out
    }

    /// Whether auxiliary `aux` is allowed alongside core class `core`
    /// *or any of its superclasses* are irrelevant — `Aux` is looked up per
    /// core class exactly as Definition 2.3 states.
    pub fn aux_allowed(&self, core: ClassId, aux: ClassId) -> bool {
        self.aux[core.index()].contains(&aux)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 2 class schema.
    pub(crate) fn figure2() -> (ClassSchema, HashMap<&'static str, ClassId>) {
        let mut s = ClassSchema::new();
        let top = s.top();
        let org_group = s.add_core("orgGroup", top).unwrap();
        let organization = s.add_core("organization", org_group).unwrap();
        let org_unit = s.add_core("orgUnit", org_group).unwrap();
        let person = s.add_core("person", top).unwrap();
        let staff = s.add_core("staffMember", person).unwrap();
        let researcher = s.add_core("researcher", person).unwrap();
        let online = s.add_auxiliary("online").unwrap();
        let manager = s.add_auxiliary("manager").unwrap();
        let secretary = s.add_auxiliary("secretary").unwrap();
        let consultant = s.add_auxiliary("consultant").unwrap();
        let faculty = s.add_auxiliary("facultyMember").unwrap();
        s.allow_auxiliary(org_group, online).unwrap();
        s.allow_auxiliary(person, online).unwrap();
        for a in [manager, secretary, consultant] {
            s.allow_auxiliary(staff, a).unwrap();
        }
        for a in [manager, consultant, faculty] {
            s.allow_auxiliary(researcher, a).unwrap();
        }
        let mut names = HashMap::new();
        names.insert("top", top);
        names.insert("orgGroup", org_group);
        names.insert("organization", organization);
        names.insert("orgUnit", org_unit);
        names.insert("person", person);
        names.insert("staffMember", staff);
        names.insert("researcher", researcher);
        names.insert("online", online);
        names.insert("facultyMember", faculty);
        (s, names)
    }

    #[test]
    fn figure2_subclass_relations() {
        let (s, n) = figure2();
        // organization ⇒ orgGroup (paper's example).
        assert!(s.is_subclass(n["organization"], n["orgGroup"]));
        assert!(s.is_subclass(n["organization"], n["top"]));
        assert!(s.is_subclass(n["researcher"], n["person"]));
        assert!(!s.is_subclass(n["orgGroup"], n["organization"]));
        // Reflexive.
        assert!(s.is_subclass(n["person"], n["person"]));
    }

    #[test]
    fn figure2_exclusions() {
        let (s, n) = figure2();
        // organization ⇏ person (paper's example).
        assert!(s.are_exclusive(n["organization"], n["person"]));
        assert!(s.are_exclusive(n["staffMember"], n["researcher"]));
        assert!(!s.are_exclusive(n["person"], n["researcher"]));
        assert!(!s.are_exclusive(n["top"], n["person"])); // comparable
                                                          // Auxiliaries are never exclusive.
        assert!(!s.are_exclusive(n["online"], n["person"]));
    }

    #[test]
    fn figure2_aux_associations() {
        let (s, n) = figure2();
        assert!(s.aux_allowed(n["person"], n["online"]));
        assert!(s.aux_allowed(n["researcher"], n["facultyMember"]));
        assert!(!s.aux_allowed(n["person"], n["facultyMember"]));
        assert!(!s.aux_allowed(n["orgUnit"], n["online"])); // Aux is per-class, not inherited
        assert_eq!(s.max_aux(), 3);
    }

    #[test]
    fn chains_and_depths() {
        let (s, n) = figure2();
        assert_eq!(
            s.superclass_chain(n["researcher"]),
            vec![n["researcher"], n["person"], n["top"]]
        );
        assert_eq!(s.depth(n["top"]), 0);
        assert_eq!(s.depth(n["researcher"]), 2);
        assert_eq!(s.tree_depth(), 2);
        assert_eq!(s.superclass_chain(n["top"]), vec![n["top"]]);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let (s, n) = figure2();
        assert_eq!(s.lookup("ORGGROUP"), Some(n["orgGroup"]));
        assert_eq!(s.lookup("nosuch"), None);
        assert!(matches!(s.resolve("nosuch"), Err(ClassSchemaError::UnknownClass(_))));
        assert_eq!(s.name(n["orgGroup"]), "orgGroup");
    }

    #[test]
    fn duplicate_and_kind_errors() {
        let mut s = ClassSchema::new();
        let top = s.top();
        let a = s.add_core("a", top).unwrap();
        assert!(matches!(s.add_core("A", top), Err(ClassSchemaError::DuplicateClass(_))));
        let x = s.add_auxiliary("x").unwrap();
        assert!(matches!(s.add_core("b", x), Err(ClassSchemaError::WrongKind { .. })));
        assert!(matches!(s.allow_auxiliary(x, x), Err(ClassSchemaError::WrongKind { .. })));
        assert!(matches!(s.allow_auxiliary(a, a), Err(ClassSchemaError::WrongKind { .. })));
        // allow_auxiliary is idempotent.
        s.allow_auxiliary(a, x).unwrap();
        s.allow_auxiliary(a, x).unwrap();
        assert_eq!(s.allowed_auxiliaries(a), [x]);
    }

    #[test]
    fn class_iterators() {
        let (s, _) = figure2();
        assert_eq!(s.len(), 12);
        assert_eq!(s.core_classes().count(), 7);
        assert_eq!(s.auxiliary_classes().count(), 5);
    }
}
