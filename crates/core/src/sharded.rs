//! [`ShardedDirectory`]: the write path partitioned on Theorem 4.1
//! subtree boundaries.
//!
//! The paper's modularity theorem normalises every transaction into
//! independent subtree insertions and deletions, and the Figure 5
//! Δ-queries that certify them are *subtree-local*: a constraint on an
//! entry only inspects the entry's own subtree (children, descendants,
//! parents, ancestors all stay inside the top-level subtree the entry
//! lives in). The one exception is `◇c ∈ Cr`, which demands at least one
//! `c` entry *somewhere* in the instance.
//!
//! That split is the sharding contract:
//!
//! * Entries are routed by the **root RDN of their DN** — every entry of
//!   a top-level subtree, and hence every constraint that mentions it,
//!   lands on one shard. Each shard runs a full [`ManagedDirectory`]
//!   over the schema *minus `Cr`*
//!   ([`DirectorySchema::without_required_classes`]), with its own
//!   write-ahead journal (`op=<seq>,shard=<k>,cn=journal` records).
//! * `◇c` is enforced here, with a global ledger counting live entries
//!   per required class. The count mirrors the Figure 5 query
//!   `(objectClass=c)` exactly: entries list all their classes
//!   explicitly (the checker reports `MissingSuperclass` otherwise), so
//!   "count of entries whose class list contains `c`" and "the `◇c`
//!   query is non-empty" agree on every legal instance.
//!
//! Single-shard transactions lock one shard and never contend.
//! Cross-shard transactions run a 2-phase apply: *prepare* snapshots
//! and applies every involved shard (journal `begin` staged before the
//! mutation, carrying a global id + peer count), *commit* stages the
//! per-shard commit records. Any failure or panic rolls every prepared
//! shard back to its snapshot. A crash between the phases leaves commit
//! records on a strict subset of the peers; [`ShardedDirectory::recover`]
//! reconciles by keeping a global transaction only when its commit is
//! intact in **all** peer journals, so recovery converges to the same
//! state the live rollback produced.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use bschema_directory::ldif::LdifRecord;
use bschema_directory::{DirectoryInstance, Dn, Entry, EntryId, Rdn};
use bschema_obs::Probe;

use crate::checkpoint::{
    checkpoint_path, recover_with_checkpoint, truncate_journal, write_checkpoint, Checkpoint,
};
use crate::consistency::ConsistencyChecker;
use crate::journal::{Journal, JournalWriter, RecoveryReport};
use crate::legality::report::Violation;
use crate::legality::{LegalityChecker, LegalityReport};
use crate::managed::{inconsistency_error, ManagedDirectory, ManagedError};
use crate::schema::DirectorySchema;
use crate::updates::{transaction_from_ldif, LdifTxError, Mod, Transaction};

/// Durability callback for one shard's journal: invoked with each staged
/// record batch at the write-ahead points (begin records before the
/// mutation, commit records after it). The callee appends and syncs;
/// an error from the *begin* flush aborts the transaction before any
/// mutation, an error from the *commit* flush is reported but the
/// transaction stands (matching the single-engine service's
/// commit-flush discipline).
pub type JournalSink = Box<dyn FnMut(&str) -> std::io::Result<()> + Send>;

/// Errors from [`ShardedDirectory::apply_ldif`].
#[derive(Debug)]
pub enum ShardedError {
    /// The LDIF records could not be decoded into a transaction against
    /// the current state (unknown delete target, unresolvable parent).
    Tx(LdifTxError),
    /// The engine rejected or rolled back the transaction.
    Managed(ManagedError),
    /// A MODIFY named an entry that does not exist on its shard.
    NoSuchEntry {
        /// The target DN as given.
        dn: String,
    },
}

impl ShardedError {
    /// Stable machine-readable code, aligned with [`ManagedError::code`]
    /// and the wire server's `ERR` token ("invalid-tx" for LDIF-decode
    /// failures, exactly what the unsharded service reports for them).
    pub fn code(&self) -> &'static str {
        match self {
            ShardedError::Tx(_) => "invalid-tx",
            ShardedError::Managed(e) => e.code(),
            ShardedError::NoSuchEntry { .. } => "no-such-entry",
        }
    }
}

impl fmt::Display for ShardedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardedError::Tx(e) => write!(f, "invalid transaction: {e}"),
            ShardedError::Managed(e) => e.fmt(f),
            ShardedError::NoSuchEntry { dn } => write!(f, "no entry named {dn}"),
        }
    }
}

impl std::error::Error for ShardedError {}

impl From<LdifTxError> for ShardedError {
    fn from(e: LdifTxError) -> Self {
        ShardedError::Tx(e)
    }
}

impl From<ManagedError> for ShardedError {
    fn from(e: ManagedError) -> Self {
        ShardedError::Managed(e)
    }
}

/// Receipt for an applied sharded transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedTxOutcome {
    /// The shards the transaction touched, ascending.
    pub shards: Vec<usize>,
    /// The global transaction id, when the apply was cross-shard.
    pub gid: Option<u64>,
    /// Total LDIF records applied across all shards.
    pub ops: usize,
}

/// The entry as it would look after `mods` — the dry-run the `◇c`
/// ledger admission needs before anything is journalled or applied.
fn simulate_mods(entry: &Entry, mods: &[Mod]) -> Entry {
    let mut simulated = entry.clone();
    for m in mods {
        match m {
            Mod::Add { attribute, value } => {
                simulated.add_value(attribute, value.clone());
            }
            Mod::DeleteValue { attribute, value } => {
                simulated.remove_value(attribute, value);
            }
            Mod::DeleteAttribute { attribute } => {
                simulated.remove_attribute(attribute);
            }
            Mod::Replace { attribute, values } => {
                simulated.set_values(attribute, values.iter().cloned());
            }
        }
    }
    simulated
}

/// FNV-1a over the normalised (lowercased, whitespace-canonical) root
/// RDN. Stable across runs and platforms, so shard layouts are
/// reproducible and journals recover onto the same partition.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The shard owning the top-level subtree rooted at `rdn`.
pub fn shard_of_root_rdn(rdn: &Rdn, shards: usize) -> usize {
    let normalized = Dn::from_rdns(vec![rdn.clone()]).to_normalized_string();
    (fnv1a(&normalized) % shards.max(1) as u64) as usize
}

/// Splits `dir` into `shards` disjoint instances, each holding the
/// top-level subtrees its shard owns (grafted in forest order, so the
/// split is deterministic). Unnamed roots route to shard 0.
pub fn partition(
    dir: &DirectoryInstance,
    shards: usize,
) -> Result<Vec<DirectoryInstance>, ManagedError> {
    let mut bases: Vec<DirectoryInstance> =
        (0..shards.max(1)).map(|_| DirectoryInstance::new(dir.registry().clone())).collect();
    for root in dir.forest().roots() {
        let k = match dir.rdn(root) {
            Some(rdn) => shard_of_root_rdn(rdn, shards),
            None => 0,
        };
        bases[k]
            .graft_subtree(dir, root)
            .map_err(|e| ManagedError::Internal(format!("partitioning root {root}: {e}")))?;
    }
    for base in &mut bases {
        base.prepare();
    }
    Ok(bases)
}

/// Merges shard instances back into one canonical instance: top-level
/// subtrees are grafted in sorted normalised-root-RDN order, so any two
/// partitions of the same forest — including the degenerate 1-"shard"
/// partition of an unsharded directory — rebuild byte-identical
/// [`canonical_bytes`](DirectoryInstance::canonical_bytes). This is the
/// equality the differential oracle checks.
pub fn canonical_merge<'a>(
    parts: impl IntoIterator<Item = &'a DirectoryInstance>,
) -> Result<DirectoryInstance, ManagedError> {
    let parts: Vec<&DirectoryInstance> = parts.into_iter().collect();
    let registry = match parts.first() {
        Some(part) => part.registry().clone(),
        None => return Ok(DirectoryInstance::new(bschema_directory::AttributeRegistry::default())),
    };
    let mut roots: Vec<(String, usize, bschema_directory::EntryId)> = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        for root in part.forest().roots() {
            let key = match part.rdn(root) {
                Some(rdn) => Dn::from_rdns(vec![rdn.clone()]).to_normalized_string(),
                None => String::new(),
            };
            roots.push((key, i, root));
        }
    }
    // Stable sort on (name, part) keeps forest order for any equal keys.
    roots.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    let mut merged = DirectoryInstance::new(registry);
    for (_, i, root) in roots {
        merged
            .graft_subtree(parts[i], root)
            .map_err(|e| ManagedError::Internal(format!("merging shard {i} root {root}: {e}")))?;
    }
    merged.prepare();
    Ok(merged)
}

/// §6.1 keys are directory-wide uniqueness constraints — the one other
/// instance-global element besides `◇c`, and one the per-shard checkers
/// cannot see across shards. The sharded engine does not support them;
/// refusing up front keeps the sharded≡unsharded equivalence honest.
fn reject_global_keys(schema: &DirectorySchema) -> Result<(), ManagedError> {
    if let Some(attr) = schema.attributes().unique_attributes().next() {
        return Err(ManagedError::Internal(format!(
            "schema declares key attribute {attr:?}: directory-wide keys are not subtree-local, \
             so this schema cannot be sharded"
        )));
    }
    Ok(())
}

/// Names of the schema's required classes (`Cr`), the ledger's keys.
fn required_class_names(schema: &DirectorySchema) -> Vec<String> {
    schema.structure().required_classes().map(|c| schema.classes().name(c).to_owned()).collect()
}

/// Counts live entries per required class across `parts`.
fn count_required(required: &[String], parts: &[&DirectoryInstance]) -> BTreeMap<String, i64> {
    let mut counts: BTreeMap<String, i64> = required.iter().map(|name| (name.clone(), 0)).collect();
    for part in parts {
        for (_, entry) in part.iter() {
            for name in required {
                if entry.has_class(name) {
                    *counts.get_mut(name).expect("ledger key") += 1;
                }
            }
        }
    }
    counts
}

/// Accumulates a transaction's net effect on the `◇c` ledger under the
/// given `Cr` key set: +1 per required class listed by an inserted
/// entry, −1 per required class listed by a deleted one. Deletes name
/// exactly one existing entry each (the leaf-only discipline rejects
/// anything else later, with no mutation), so summing per record is
/// exact.
fn ledger_delta(
    required: &[String],
    dir: &DirectoryInstance,
    records: &[LdifRecord],
    delta: &mut BTreeMap<String, i64>,
) {
    if required.is_empty() {
        return;
    }
    for rec in records {
        let is_delete =
            rec.entry.first_value("changetype").is_some_and(|c| c.eq_ignore_ascii_case("delete"));
        if is_delete {
            if let Some(id) = dir.lookup_dn(&rec.dn) {
                if let Some(entry) = dir.entry(id) {
                    for name in required {
                        if entry.has_class(name) {
                            *delta.entry(name.clone()).or_insert(0) -= 1;
                        }
                    }
                }
            }
        } else {
            for name in required {
                if rec.entry.has_class(name) {
                    *delta.entry(name.clone()).or_insert(0) += 1;
                }
            }
        }
    }
}

/// The full schema a recovered sharded directory converges to. Every
/// cutover journals an identical full-schema record on all shards under
/// one `gid`, so after cross-shard reconciliation the newest surviving
/// schema record (max `gid`, any journal) names the final schema; with
/// no surviving record, a checkpoint's embedded schema covers cutovers
/// the truncated journals no longer show (every checkpoint of a
/// campaign snapshots the same epoch, so any shard's will do); with
/// neither, the boot schema stands.
fn final_full_schema(
    boot: &DirectorySchema,
    journals: &[Journal],
    commits: &BTreeMap<u64, u64>,
    checkpoints: &[Option<Checkpoint>],
) -> Result<DirectorySchema, ManagedError> {
    let mut best: Option<(u64, &crate::journal::JournalSchema)> = None;
    for journal in journals {
        for jtx in &journal.txs {
            let (Some(schema), true) = (&jtx.schema, jtx.committed) else { continue };
            let intact = match (jtx.gid, jtx.peers) {
                (Some(gid), Some(peers)) => commits.get(&gid).copied().unwrap_or(0) >= peers,
                _ => true,
            };
            let rank = jtx.gid.unwrap_or(0);
            if intact && best.is_none_or(|(prev, _)| rank >= prev) {
                best = Some((rank, schema));
            }
        }
    }
    if let Some((_, schema)) = best {
        return schema.full_schema().map_err(ManagedError::Recovery);
    }
    for ckpt in checkpoints.iter().flatten() {
        if let Some(full) = ckpt.embedded_full_schema() {
            return Ok(full);
        }
    }
    Ok(boot.clone())
}

/// One shard: a managed directory over the `Cr`-stripped schema, its
/// journal writer, and an optional durability sink.
struct ShardState {
    managed: ManagedDirectory,
    journal: JournalWriter,
    sink: Option<JournalSink>,
}

impl ShardState {
    /// Write-ahead point: flushes staged journal records through the
    /// sink. Without a sink the records stay pending (callers drain via
    /// [`ShardedDirectory::take_pending`]).
    fn persist_pending(&mut self) -> std::io::Result<()> {
        if let Some(sink) = &mut self.sink {
            if self.journal.has_pending() {
                let text = self.journal.take_pending();
                sink(&text)?;
            }
        }
        Ok(())
    }
}

/// One schema generation: the full bounding-schema, its `Cr`-stripped
/// per-shard projection, and the `◇c` ledger's key set. All three swap
/// together — atomically, under every shard lock — when
/// [`ShardedDirectory::swap_schema`] cuts over to an evolved schema.
struct SchemaEpoch {
    schema: DirectorySchema,
    local: DirectorySchema,
    /// `Cr` class names, the ledger's key set.
    required: Vec<String>,
}

impl SchemaEpoch {
    fn new(schema: DirectorySchema) -> Self {
        let local = schema.without_required_classes();
        let required = required_class_names(&schema);
        SchemaEpoch { schema, local, required }
    }
}

/// A directory sharded on top-level subtrees, safe to share across
/// threads (`&self` write API): each shard sits behind its own lock, so
/// single-shard transactions on different shards commit concurrently.
pub struct ShardedDirectory {
    /// The current schema generation. Lock order: epoch before any
    /// shard lock (writers hold the epoch write lock across the whole
    /// cutover; the data path takes a brief read and releases it before
    /// or while acquiring shard locks in ascending order).
    epoch: RwLock<SchemaEpoch>,
    slots: Vec<Mutex<ShardState>>,
    /// Live-entry count per required class — the global `◇c` ledger.
    /// Locked only while the involved shard locks are already held
    /// (shards-then-ledger order), and only for short critical sections.
    counts: Mutex<BTreeMap<String, i64>>,
    next_gid: AtomicU64,
    probe: Option<Arc<dyn Probe + Send + Sync>>,
}

impl fmt::Debug for ShardedDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let required = self.epoch.read().unwrap_or_else(|e| e.into_inner()).required.clone();
        f.debug_struct("ShardedDirectory")
            .field("shards", &self.slots.len())
            .field("required", &required)
            .finish_non_exhaustive()
    }
}

impl ShardedDirectory {
    /// Partitions `dir` into `shards` shards after verifying schema
    /// consistency and whole-instance legality, exactly like
    /// [`ManagedDirectory::with_instance`].
    pub fn with_instance(
        schema: DirectorySchema,
        mut dir: DirectoryInstance,
        shards: usize,
    ) -> Result<Self, ManagedError> {
        let result = ConsistencyChecker::new(&schema).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result));
        }
        reject_global_keys(&schema)?;
        dir.prepare();
        let report = LegalityChecker::new(&schema).check(&dir);
        if !report.is_legal() {
            return Err(ManagedError::IllegalInstance(report));
        }
        let bases = partition(&dir, shards)?;
        Self::from_parts(schema, bases)
    }

    /// Rebuilds a sharded directory from per-shard bases and journals:
    /// global transactions are first reconciled (a `gid` counts as
    /// committed only when a commit record for it is intact in all
    /// `peers` journals — a torn 2-phase commit is discarded everywhere),
    /// then each shard replays through [`ManagedDirectory::recover`].
    pub fn recover(
        schema: DirectorySchema,
        bases: Vec<DirectoryInstance>,
        journals: &[Journal],
    ) -> Result<(Self, Vec<RecoveryReport>), ManagedError> {
        if bases.len() != journals.len() {
            return Err(ManagedError::Recovery(format!(
                "{} shard bases but {} journals",
                bases.len(),
                journals.len()
            )));
        }
        let result = ConsistencyChecker::new(&schema).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result));
        }
        reject_global_keys(&schema)?;
        // Reconciliation: count intact commits per gid across all shards.
        let mut commits: BTreeMap<u64, u64> = BTreeMap::new();
        for journal in journals {
            for jtx in &journal.txs {
                if jtx.committed {
                    if let Some(gid) = jtx.gid {
                        *commits.entry(gid).or_insert(0) += 1;
                    }
                }
            }
        }
        // The journals may carry committed schema cutovers; the epoch
        // the recovered directory lands on is the newest surviving one.
        let final_schema = final_full_schema(&schema, journals, &commits, &[])?;
        reject_global_keys(&final_schema)?;
        let local_schema = schema.without_required_classes();
        let mut slots = Vec::with_capacity(bases.len());
        let mut reports = Vec::with_capacity(bases.len());
        let mut next_gid = 0u64;
        for (k, (base, journal)) in bases.into_iter().zip(journals).enumerate() {
            let mut reconciled = journal.clone();
            for jtx in &mut reconciled.txs {
                if let (Some(gid), Some(peers)) = (jtx.gid, jtx.peers) {
                    next_gid = next_gid.max(gid + 1);
                    if commits.get(&gid).copied().unwrap_or(0) < peers {
                        jtx.committed = false;
                    }
                }
            }
            let (managed, report) =
                ManagedDirectory::recover(local_schema.clone(), base, &reconciled)
                    .map_err(|e| ManagedError::Recovery(format!("shard {k}: {e}")))?;
            // Resume after the *original* journal so record sequence
            // numbers keep advancing past any discarded tail.
            let journal_writer = JournalWriter::resume_after(journal).with_shard(k);
            slots.push(Mutex::new(ShardState { managed, journal: journal_writer, sink: None }));
            reports.push(report);
        }
        let epoch = SchemaEpoch::new(final_schema);
        let counts = {
            let mut counts = count_required(&epoch.required, &[]);
            for slot in &slots {
                let state = slot.lock().unwrap_or_else(|e| e.into_inner());
                for (name, n) in count_required(&epoch.required, &[state.managed.instance()]) {
                    *counts.get_mut(&name).expect("ledger key") += n;
                }
            }
            counts
        };
        let sharded = ShardedDirectory {
            epoch: RwLock::new(epoch),
            slots,
            counts: Mutex::new(counts),
            next_gid: AtomicU64::new(next_gid),
            probe: None,
        };
        Ok((sharded, reports))
    }

    /// Checkpoint-aware recovery: like [`recover`](Self::recover), but
    /// each shard may bring a checkpoint file's text whose snapshot
    /// absorbs the truncated part of its journal. Cross-shard (`gid`)
    /// reconciliation runs over the *visible* journals only — sound
    /// because a checkpoint campaign writes every shard's checkpoint
    /// before truncating any journal, so a global transaction's commit
    /// records are either all still in journals or all covered by
    /// checkpoints (and then skipped by the `first_seq >= ckpt.seq`
    /// replay rule before the reconciled commit flag is consulted).
    pub fn recover_with_checkpoints(
        schema: DirectorySchema,
        bases: Vec<DirectoryInstance>,
        checkpoints: &[Option<String>],
        journals: &[Journal],
    ) -> Result<(Self, Vec<RecoveryReport>), ManagedError> {
        if bases.len() != journals.len() || checkpoints.len() != journals.len() {
            return Err(ManagedError::Recovery(format!(
                "{} shard bases, {} checkpoints, {} journals",
                bases.len(),
                checkpoints.len(),
                journals.len()
            )));
        }
        let result = ConsistencyChecker::new(&schema).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result));
        }
        reject_global_keys(&schema)?;
        let mut commits: BTreeMap<u64, u64> = BTreeMap::new();
        for journal in journals {
            for jtx in &journal.txs {
                if jtx.committed {
                    if let Some(gid) = jtx.gid {
                        *commits.entry(gid).or_insert(0) += 1;
                    }
                }
            }
        }
        // Decode the checkpoints once: schema derivation consults their
        // embedded schemas when no journal still shows a cutover record.
        let decoded: Vec<Option<Checkpoint>> = checkpoints
            .iter()
            .map(|text| text.as_deref().and_then(|t| Checkpoint::decode(t).ok()))
            .collect();
        let final_schema = final_full_schema(&schema, journals, &commits, &decoded)?;
        reject_global_keys(&final_schema)?;
        let local_schema = schema.without_required_classes();
        let mut slots = Vec::with_capacity(bases.len());
        let mut reports = Vec::with_capacity(bases.len());
        let mut next_gid = 0u64;
        for (k, (base, journal)) in bases.into_iter().zip(journals).enumerate() {
            let mut reconciled = journal.clone();
            for jtx in &mut reconciled.txs {
                if let (Some(gid), Some(peers)) = (jtx.gid, jtx.peers) {
                    next_gid = next_gid.max(gid + 1);
                    if commits.get(&gid).copied().unwrap_or(0) < peers {
                        jtx.committed = false;
                    }
                }
            }
            let recovery = recover_with_checkpoint(
                local_schema.clone(),
                base,
                checkpoints[k].as_deref(),
                &reconciled,
            )
            .map_err(|e| ManagedError::Recovery(format!("shard {k}: {e}")))?;
            slots.push(Mutex::new(ShardState {
                managed: recovery.managed,
                journal: recovery.writer.with_shard(k),
                sink: None,
            }));
            reports.push(recovery.report);
        }
        let epoch = SchemaEpoch::new(final_schema);
        let counts = {
            let mut counts = count_required(&epoch.required, &[]);
            for slot in &slots {
                let state = slot.lock().unwrap_or_else(|e| e.into_inner());
                for (name, n) in count_required(&epoch.required, &[state.managed.instance()]) {
                    *counts.get_mut(&name).expect("ledger key") += n;
                }
            }
            counts
        };
        let sharded = ShardedDirectory {
            epoch: RwLock::new(epoch),
            slots,
            counts: Mutex::new(counts),
            next_gid: AtomicU64::new(next_gid),
            probe: None,
        };
        Ok((sharded, reports))
    }

    /// Snapshots every shard at one quiescent point: all shard locks are
    /// taken (ascending — the global lock order) before any capture, so
    /// a cross-shard transaction is in every returned checkpoint or in
    /// none. Each checkpoint covers its shard's full journal (seq =
    /// the writer's cursor, the tail after truncation is empty) and is
    /// hashed against the *shard-local* schema — the one
    /// [`recover_with_checkpoints`](Self::recover_with_checkpoints)
    /// verifies against.
    pub fn checkpoint_all(&self) -> Vec<Checkpoint> {
        let epoch = self.epoch.read().unwrap_or_else(|e| e.into_inner());
        let full_dsl = crate::schema::dsl::print_schema(&epoch.schema, None);
        let guards: Vec<MutexGuard<'_, ShardState>> =
            self.slots.iter().map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner())).collect();
        guards
            .iter()
            .enumerate()
            .map(|(k, state)| {
                let mut ckpt = Checkpoint::capture(
                    state.managed.instance(),
                    &epoch.local,
                    state.journal.records_emitted(),
                    state.journal.next_tx(),
                    Some(k as u64),
                );
                // The hash stays shard-local; the embedded document is
                // the *full* schema so recovery can rebuild the epoch
                // (and `Cr`) once the journal prefix is truncated away.
                ckpt.schema_dsl = Some(full_dsl.clone());
                ckpt
            })
            .collect()
    }

    /// Runs a full checkpoint campaign to disk: under all shard locks
    /// (held for the whole campaign, so no commit can slip between a
    /// capture and its truncation), every shard's pending journal text
    /// is flushed, its checkpoint written atomically next to `paths[k]`
    /// (see [`checkpoint_path`]), and — only after **every** shard's
    /// checkpoint landed — each journal file truncated to empty. The
    /// write-all-then-truncate-all order is what keeps cross-shard
    /// reconciliation sound on recovery: a `gid`'s commit records are
    /// either all still in journals or all covered by checkpoints.
    /// Returns the covered sequence number per shard.
    pub fn checkpoint_and_truncate(
        &self,
        paths: &[std::path::PathBuf],
        probe: &dyn Probe,
    ) -> std::io::Result<Vec<u64>> {
        assert_eq!(paths.len(), self.slots.len(), "one journal path per shard");
        let epoch = self.epoch.read().unwrap_or_else(|e| e.into_inner());
        let full_dsl = crate::schema::dsl::print_schema(&epoch.schema, None);
        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            self.slots.iter().map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner())).collect();
        let mut seqs = Vec::with_capacity(guards.len());
        for (k, state) in guards.iter_mut().enumerate() {
            state.persist_pending()?;
            let mut ckpt = Checkpoint::capture(
                state.managed.instance(),
                &epoch.local,
                state.journal.records_emitted(),
                state.journal.next_tx(),
                Some(k as u64),
            );
            ckpt.schema_dsl = Some(full_dsl.clone());
            write_checkpoint(&checkpoint_path(&paths[k]), &ckpt.encode(), probe)?;
            seqs.push(ckpt.seq);
        }
        for path in paths {
            truncate_journal(path, probe)?;
        }
        Ok(seqs)
    }

    /// Assembles shards from already-partitioned, already-validated
    /// bases (callers: [`with_instance`](Self::with_instance) and tests).
    fn from_parts(
        schema: DirectorySchema,
        bases: Vec<DirectoryInstance>,
    ) -> Result<Self, ManagedError> {
        let epoch = SchemaEpoch::new(schema);
        let refs: Vec<&DirectoryInstance> = bases.iter().collect();
        let counts = count_required(&epoch.required, &refs);
        let mut slots = Vec::with_capacity(bases.len());
        for (k, base) in bases.into_iter().enumerate() {
            let managed = ManagedDirectory::with_instance(epoch.local.clone(), base)?;
            slots.push(Mutex::new(ShardState {
                managed,
                journal: JournalWriter::new().with_shard(k),
                sink: None,
            }));
        }
        Ok(ShardedDirectory {
            epoch: RwLock::new(epoch),
            slots,
            counts: Mutex::new(counts),
            next_gid: AtomicU64::new(0),
            probe: None,
        })
    }

    /// Installs `probe` on the router and every shard engine.
    pub fn with_probe(mut self, probe: Arc<dyn Probe + Send + Sync>) -> Self {
        for slot in &mut self.slots {
            let state = slot.get_mut().unwrap_or_else(|e| e.into_inner());
            state.managed.swap_probe(Some(probe.clone()));
        }
        self.probe = Some(probe);
        self
    }

    /// Installs the durability sink for shard `k`'s journal.
    pub fn set_sink(&self, k: usize, sink: JournalSink) {
        self.lock_slot(k).sink = Some(sink);
    }

    /// Drains shard `k`'s staged journal records (sink-less flows only:
    /// with a sink installed the write-ahead points drain the buffer).
    pub fn take_pending(&self, k: usize) -> String {
        self.lock_slot(k).journal.take_pending()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The full bounding-schema (with `Cr`) of the current epoch.
    /// Returned by value: the epoch can be swapped out from under a
    /// borrow by [`swap_schema`](Self::swap_schema).
    pub fn schema(&self) -> DirectorySchema {
        self.epoch.read().unwrap_or_else(|e| e.into_inner()).schema.clone()
    }

    /// The per-shard schema (`Cr` stripped) of the current epoch.
    pub fn local_schema(&self) -> DirectorySchema {
        self.epoch.read().unwrap_or_else(|e| e.into_inner()).local.clone()
    }

    /// The current epoch's `Cr` class names.
    fn required(&self) -> Vec<String> {
        self.epoch.read().unwrap_or_else(|e| e.into_inner()).required.clone()
    }

    /// Total entry count across shards.
    pub fn len(&self) -> usize {
        (0..self.slots.len()).map(|k| self.lock_slot(k).managed.len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whole-directory §3 legality: every shard legal under the local
    /// schema, plus a positive ledger count for every `◇c ∈ Cr`.
    pub fn is_legal(&self) -> bool {
        let required = self.required();
        let counts_ok = {
            let counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
            required.iter().all(|name| counts.get(name).copied().unwrap_or(0) > 0)
        };
        counts_ok && (0..self.slots.len()).all(|k| self.lock_slot(k).managed.is_legal())
    }

    /// A clone of shard `k`'s current instance.
    pub fn shard_instance(&self, k: usize) -> DirectoryInstance {
        self.lock_slot(k).managed.instance().clone()
    }

    /// Entry count of shard `k` alone.
    pub fn shard_len(&self, k: usize) -> usize {
        self.lock_slot(k).managed.len()
    }

    /// Shard `k`'s journal growth: `(records_emitted, bytes_emitted)`
    /// from its [`JournalWriter`] — the per-shard signals a health
    /// check compares against repair/compaction thresholds.
    pub fn journal_stats(&self, k: usize) -> (u64, u64) {
        let slot = self.lock_slot(k);
        (slot.journal.records_emitted(), slot.journal.bytes_emitted())
    }

    /// A snapshot of the `◇c` ledger: committed entry count per
    /// required class. Empty when the schema has no `Cr`.
    pub fn ledger(&self) -> BTreeMap<String, i64> {
        self.counts.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The canonical merge of all shards (see [`canonical_merge`]),
    /// taken under a consistent cut (all shard locks held).
    pub fn merged_instance(&self) -> Result<DirectoryInstance, ManagedError> {
        let guards: Vec<MutexGuard<'_, ShardState>> =
            (0..self.slots.len()).map(|k| self.lock_slot(k)).collect();
        canonical_merge(guards.iter().map(|g| g.managed.instance()))
    }

    /// The shard owning `dn`'s top-level subtree.
    pub fn shard_of_dn(&self, dn: &Dn) -> usize {
        match dn.rdns().last() {
            Some(root) => shard_of_root_rdn(root, self.slots.len()),
            None => 0,
        }
    }

    fn lock_slot(&self, k: usize) -> MutexGuard<'_, ShardState> {
        self.slots[k].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn probe(&self) -> &dyn Probe {
        match &self.probe {
            Some(p) => p.as_ref(),
            None => bschema_obs::noop(),
        }
    }

    /// Applies one LDIF transaction: records are routed per shard by
    /// root RDN, decoded into per-shard transactions, vetted against
    /// the `◇c` ledger, and applied — one locked shard on the fast
    /// path, a 2-phase apply across all involved shards otherwise.
    pub fn apply_ldif(&self, records: Vec<LdifRecord>) -> Result<ShardedTxOutcome, ShardedError> {
        // Pin this transaction's `Cr` view before taking shard locks
        // (the epoch-before-shards lock order): a concurrent cutover
        // holds every shard lock, so the epoch cannot change while this
        // transaction's shard locks are held.
        let required = self.required();
        let n = self.slots.len();
        let ops = records.len();
        let mut groups: Vec<Vec<LdifRecord>> = (0..n).map(|_| Vec::new()).collect();
        for rec in records {
            let k = self.shard_of_dn(&rec.dn);
            groups[k].push(rec);
        }
        let mut involved: Vec<usize> = (0..n).filter(|&k| !groups[k].is_empty()).collect();
        if involved.is_empty() {
            // An empty transaction is a legal no-op in the unsharded
            // engine; route it through shard 0 for an identical verdict.
            involved.push(0);
        }
        // Lock the involved shards in ascending index order (the global
        // lock order) and hold them through the apply.
        let mut guards: Vec<(usize, MutexGuard<'_, ShardState>)> =
            involved.iter().map(|&k| (k, self.lock_slot(k))).collect();

        // Decode and pre-normalise every shard's sub-transaction before
        // touching anything, so structural errors surface with the same
        // invalid-tx verdict (and zero mutation) as the unsharded path.
        let mut subtxs: Vec<Transaction> = Vec::with_capacity(guards.len());
        let mut delta: BTreeMap<String, i64> = BTreeMap::new();
        for (k, guard) in &guards {
            let group = std::mem::take(&mut groups[*k]);
            ledger_delta(&required, guard.managed.instance(), &group, &mut delta);
            let tx = transaction_from_ldif(guard.managed.instance(), group)?;
            tx.normalize(guard.managed.instance()).map_err(ManagedError::Transaction)?;
            subtxs.push(tx);
        }

        // `◇c` admission: reject any transaction that would empty a
        // required class, then pre-deduct the negative side so racing
        // transactions on other shards see the reservation.
        self.reserve(&delta)?;

        let outcome = if guards.len() == 1 {
            self.apply_single(&mut guards[0], &subtxs[0], ops)
        } else {
            self.apply_cross(&mut guards, &subtxs, ops)
        };
        match outcome {
            Ok(receipt) => {
                self.settle(&delta);
                Ok(receipt)
            }
            Err(e) => {
                self.unreserve(&delta);
                Err(e)
            }
        }
    }

    /// Applies an LDAP Modify to the entry named `dn`. A Modify targets
    /// exactly one DN, and the target's top-level subtree pins it — and
    /// every structural consequence (Theorem 4.1 locality) — to one
    /// shard, so this is always a single-shard operation: the shard is
    /// locked, the mod list is journalled as one `modify` transaction
    /// (`begin`, one record per [`Mod`], `commit`), and applied through
    /// the shard engine's checked modify path. A modification can move
    /// the entry in or out of a required class via its `objectClass`
    /// values, so the `◇c` ledger sees the simulated class delta before
    /// admission, exactly like insert/delete routing.
    pub fn modify_dn(&self, dn: &Dn, mods: &[Mod]) -> Result<ShardedTxOutcome, ShardedError> {
        let required = self.required();
        let k = self.shard_of_dn(dn);
        let mut guard = (k, self.lock_slot(k));
        let target = guard
            .1
            .managed
            .instance()
            .lookup_dn(dn)
            .ok_or_else(|| ShardedError::NoSuchEntry { dn: dn.to_string() })?;
        let mut delta: BTreeMap<String, i64> = BTreeMap::new();
        if !required.is_empty() {
            let entry = guard.1.managed.instance().entry(target).expect("looked-up entry exists");
            let simulated = simulate_mods(entry, mods);
            for name in &required {
                match (entry.has_class(name), simulated.has_class(name)) {
                    (true, false) => *delta.entry(name.clone()).or_insert(0) -= 1,
                    (false, true) => *delta.entry(name.clone()).or_insert(0) += 1,
                    _ => {}
                }
            }
        }
        self.reserve(&delta)?;
        let outcome = self.apply_modify(&mut guard, target, mods);
        match outcome {
            Ok(receipt) => {
                self.settle(&delta);
                Ok(receipt)
            }
            Err(e) => {
                self.unreserve(&delta);
                Err(e)
            }
        }
    }

    /// The journaled single-shard modify apply, mirroring
    /// [`apply_single`](Self::apply_single)'s write-ahead discipline.
    fn apply_modify(
        &self,
        guard: &mut (usize, MutexGuard<'_, ShardState>),
        target: EntryId,
        mods: &[Mod],
    ) -> Result<ShardedTxOutcome, ShardedError> {
        let (k, state) = guard;
        let tx_id = state.journal.begin_modify(target, mods);
        state
            .persist_pending()
            .map_err(|e| ManagedError::Internal(format!("shard {k} journal begin flush: {e}")))?;
        state.managed.modify_entry(target, mods)?;
        state.journal.commit(tx_id);
        let _ = state.persist_pending();
        Ok(ShardedTxOutcome { shards: vec![*k], gid: None, ops: mods.len() })
    }

    /// Atomically cuts every shard over to the evolved `target` schema.
    /// `dsl` is the target's full-schema document, journalled verbatim.
    ///
    /// The caller is responsible for §3 legality of the live instance
    /// under `target` (the evolution plane rechecks before calling);
    /// this method owns the mechanics: under the epoch write lock and
    /// every shard lock (ascending — no transaction can interleave), a
    /// schema record carrying one global id is staged and flushed on
    /// every shard (write-ahead, `jrnlocal` so replay strips `Cr`),
    /// each shard engine swaps to the `Cr`-stripped target, the `◇c`
    /// ledger is re-derived from scratch under the new `Cr` key set,
    /// the epoch is published, and every shard's commit record lands.
    /// A crash between the phases tears the cutover; recovery's
    /// all-peers reconciliation then discards it on every shard, so
    /// the directory converges to the pre-cutover epoch.
    pub fn swap_schema(&self, target: DirectorySchema, dsl: &str) -> Result<(), ShardedError> {
        self.swap_inner(target, dsl, None::<fn(&DirectoryInstance) -> Result<(), ShardedError>>)
    }

    /// [`swap_schema`](Self::swap_schema) with a pre-cutover validation
    /// hook: `validate` runs against the canonical merge of all shards
    /// while every shard lock is held — no transaction can commit
    /// between the validation and the epoch swap, which is exactly the
    /// window the §6.2 incremental recheck must close. An `Err` aborts
    /// the cutover with nothing journalled and nothing swapped.
    pub fn swap_schema_validated(
        &self,
        target: DirectorySchema,
        dsl: &str,
        validate: impl FnOnce(&DirectoryInstance) -> Result<(), ShardedError>,
    ) -> Result<(), ShardedError> {
        self.swap_inner(target, dsl, Some(validate))
    }

    fn swap_inner<F>(
        &self,
        target: DirectorySchema,
        dsl: &str,
        validate: Option<F>,
    ) -> Result<(), ShardedError>
    where
        F: FnOnce(&DirectoryInstance) -> Result<(), ShardedError>,
    {
        let result = ConsistencyChecker::new(&target).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result).into());
        }
        reject_global_keys(&target).map_err(ShardedError::Managed)?;
        let probe = self.probe();
        let mut epoch = self.epoch.write().unwrap_or_else(|e| e.into_inner());
        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            (0..self.slots.len()).map(|k| self.lock_slot(k)).collect();
        // Validation runs under every shard lock, against the same
        // frozen state the swap will publish.
        if let Some(validate) = validate {
            let merged = canonical_merge(guards.iter().map(|g| g.managed.instance()))?;
            validate(&merged)?;
        }
        let gid = self.next_gid.fetch_add(1, Ordering::Relaxed);
        let peers = guards.len() as u64;
        // Phase 1: write-ahead the schema record on every shard. A
        // flush error aborts with only uncommitted records staged —
        // recovery discards them and the old epoch stands.
        let mut tx_ids = Vec::with_capacity(guards.len());
        for (k, state) in guards.iter_mut().enumerate() {
            probe.add_labeled("sharded.schema.prepare", &format!("shard{k}"), 1);
            let tx_id = state.journal.begin_schema(dsl, true, Some((gid, peers)));
            state.persist_pending().map_err(|e| {
                ShardedError::Managed(ManagedError::Internal(format!(
                    "shard {k} journal begin flush: {e}"
                )))
            })?;
            tx_ids.push(tx_id);
        }
        // Fault/probe site between epoch prepare (schema records
        // write-ahead on every shard) and the swap: a panic here leaves
        // uncommitted schema records — recovery discards them and the
        // old epoch stands, so a retried cutover succeeds cleanly.
        probe.add("schema.cutover", 1);
        // Swap every shard engine onto the Cr-stripped target. The
        // target was consistency-checked above, so per-shard refusal is
        // unreachable; if it ever fires, fail before any engine moved.
        let local = target.without_required_classes();
        for state in guards.iter_mut() {
            state.managed.set_schema(local.clone()).map_err(ShardedError::Managed)?;
        }
        // Re-derive the `◇c` ledger under the new `Cr` key set.
        let required = required_class_names(&target);
        let mut counts = count_required(&required, &[]);
        for state in guards.iter() {
            for (name, n) in count_required(&required, &[state.managed.instance()]) {
                *counts.get_mut(&name).expect("ledger key") += n;
            }
        }
        *self.counts.lock().unwrap_or_else(|e| e.into_inner()) = counts;
        *epoch = SchemaEpoch { schema: target, local, required };
        // Phase 2: commit records. A torn flush here is repaired at
        // recovery by the all-peers reconciliation rule.
        for (i, state) in guards.iter_mut().enumerate() {
            state.journal.commit(tx_ids[i]);
            let _ = state.persist_pending();
        }
        Ok(())
    }

    /// Admission check + negative-side reservation, one short ledger
    /// critical section (taken with the involved shard locks held, per
    /// the shards-then-ledger order).
    fn reserve(&self, delta: &BTreeMap<String, i64>) -> Result<(), ShardedError> {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        let mut missing: Vec<Violation> = Vec::new();
        for (name, net) in delta {
            let count = counts.get(name).copied().unwrap_or(0);
            if count + net <= 0 {
                missing.push(Violation::MissingRequiredClass { class: name.clone() });
            }
        }
        if !missing.is_empty() {
            return Err(ManagedError::RolledBack(LegalityReport::from_violations(missing)).into());
        }
        for (name, net) in delta {
            if *net < 0 {
                *counts.entry(name.clone()).or_insert(0) += net;
            }
        }
        Ok(())
    }

    /// Adds the positive side of a committed transaction's delta.
    fn settle(&self, delta: &BTreeMap<String, i64>) {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        for (name, net) in delta {
            if *net > 0 {
                *counts.entry(name.clone()).or_insert(0) += net;
            }
        }
    }

    /// Returns a failed transaction's negative-side reservation.
    fn unreserve(&self, delta: &BTreeMap<String, i64>) {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        for (name, net) in delta {
            if *net < 0 {
                *counts.entry(name.clone()).or_insert(0) -= net;
            }
        }
    }

    /// Fast path: one shard, the ordinary journaled apply.
    fn apply_single(
        &self,
        guard: &mut (usize, MutexGuard<'_, ShardState>),
        tx: &Transaction,
        ops: usize,
    ) -> Result<ShardedTxOutcome, ShardedError> {
        let (k, state) = guard;
        let tx_id = state.journal.begin(tx);
        state
            .persist_pending()
            .map_err(|e| ManagedError::Internal(format!("shard {k} journal begin flush: {e}")))?;
        state.managed.apply(tx)?;
        state.journal.commit(tx_id);
        // A commit-flush error cannot un-apply the transaction; recovery
        // replays it from the begin records' absence of a commit as an
        // abort, so surface it loudly but keep the verdict.
        let _ = state.persist_pending();
        Ok(ShardedTxOutcome { shards: vec![*k], gid: None, ops })
    }

    /// Cross-shard 2-phase apply. Prepare: per shard, snapshot the
    /// engine, stage+flush `begin` records carrying (gid, peers), and
    /// run the shard's guarded apply. Commit: stage+flush every shard's
    /// commit record. Any error or panic — including ones injected at
    /// the `sharded.*` probe sites — restores every prepared shard's
    /// snapshot, so the live state is all-or-nothing; a torn commit
    /// flush is repaired at recovery by the all-peers reconciliation.
    fn apply_cross(
        &self,
        guards: &mut [(usize, MutexGuard<'_, ShardState>)],
        subtxs: &[Transaction],
        ops: usize,
    ) -> Result<ShardedTxOutcome, ShardedError> {
        let probe = self.probe();
        let gid = self.next_gid.fetch_add(1, Ordering::Relaxed);
        let peers = guards.len() as u64;
        let shards: Vec<usize> = guards.iter().map(|(k, _)| *k).collect();

        let mut snapshots: Vec<ManagedDirectory> = Vec::with_capacity(guards.len());
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<(), ShardedError> {
            // Phase 1: prepare every shard.
            let mut tx_ids = Vec::with_capacity(guards.len());
            for (i, (k, state)) in guards.iter_mut().enumerate() {
                probe.add_labeled("sharded.prepare", &format!("shard{k}"), 1);
                snapshots.push(state.managed.clone());
                let tx_id = state.journal.begin_global(&subtxs[i], gid, peers);
                state.persist_pending().map_err(|e| {
                    ManagedError::Internal(format!("shard {k} journal begin flush: {e}"))
                })?;
                state.managed.apply(&subtxs[i])?;
                tx_ids.push(tx_id);
            }
            probe.add("sharded.prepared", 1);
            // Phase 2: commit every shard.
            for (i, (k, state)) in guards.iter_mut().enumerate() {
                probe.add_labeled("sharded.commit", &format!("shard{k}"), 1);
                state.journal.commit(tx_ids[i]);
                let _ = state.persist_pending();
            }
            Ok(())
        }));
        match attempt {
            Ok(Ok(())) => Ok(ShardedTxOutcome { shards, gid: Some(gid), ops }),
            Ok(Err(e)) => {
                self.rollback_prepared(guards, snapshots);
                Err(e)
            }
            Err(payload) => {
                self.rollback_prepared(guards, snapshots);
                let reason = crate::managed::panic_reason(payload.as_ref());
                Err(ManagedError::Panicked { reason }.into())
            }
        }
    }

    /// Restores every prepared shard's snapshot. The `sharded.rollback`
    /// probe site is itself a chaos target, so it is panic-guarded: an
    /// injected panic here must not abort the restore.
    fn rollback_prepared(
        &self,
        guards: &mut [(usize, MutexGuard<'_, ShardState>)],
        snapshots: Vec<ManagedDirectory>,
    ) {
        let probe = self.probe();
        let _ = catch_unwind(AssertUnwindSafe(|| probe.add("sharded.rollback", 1)));
        for ((_, state), snapshot) in guards.iter_mut().zip(snapshots) {
            state.managed = snapshot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{white_pages_instance, white_pages_schema};
    use bschema_directory::ldif::parse_ldif;

    fn records(text: &str) -> Vec<LdifRecord> {
        parse_ldif(text).expect("ldif")
    }

    fn sharded(n: usize) -> ShardedDirectory {
        let (dir, _) = white_pages_instance();
        ShardedDirectory::with_instance(white_pages_schema(), dir, n).expect("legal seed")
    }

    /// A root-RDN value `orgN` that hashes to `target` under `shards`.
    fn name_on_shard(target: usize, shards: usize) -> String {
        (0..1024)
            .map(|i| format!("org{i}"))
            .find(|name| shard_of_root_rdn(&Rdn::single("o", name.clone()), shards) == target)
            .expect("some name hashes to every shard")
    }

    fn two_names_on_distinct_shards(shards: usize) -> (String, String) {
        let first = name_on_shard(0, shards);
        let second = name_on_shard(1, shards);
        (first, second)
    }

    /// A legal three-entry organization subtree rooted at `o=<name>`.
    fn org_ldif(name: &str) -> String {
        format!(
            "dn: o={name}\nobjectClass: organization\nobjectClass: orgGroup\nobjectClass: online\nobjectClass: top\no: {name}\nuri: https://{name}.example\n\ndn: ou=u,o={name}\nobjectClass: orgUnit\nobjectClass: orgGroup\nobjectClass: top\nou: u\n\ndn: uid=p,ou=u,o={name}\nobjectClass: person\nobjectClass: top\nuid: p\nname: p\n"
        )
    }

    #[test]
    fn partition_and_merge_are_inverse_for_any_shard_count() {
        let (dir, _) = white_pages_instance();
        let canonical =
            canonical_merge(partition(&dir, 1).expect("partition").iter()).expect("merge");
        for n in [1usize, 2, 4, 8] {
            let parts = partition(&dir, n).expect("partition");
            let merged = canonical_merge(parts.iter()).expect("merge");
            assert_eq!(
                merged.canonical_bytes(),
                canonical.canonical_bytes(),
                "partition/merge at {n} shards is not canonical"
            );
        }
    }

    #[test]
    fn routing_is_stable_and_groups_whole_subtrees() {
        let sharded = sharded(4);
        let root = Dn::parse("o=att").expect("dn");
        let deep = Dn::parse("uid=suciu,ou=databases,ou=attLabs,o=att").expect("dn");
        assert_eq!(sharded.shard_of_dn(&root), sharded.shard_of_dn(&deep));
        // Case and spacing differences in the root RDN do not reroute.
        let shouty = Dn::parse("uid=x,O=ATT").expect("dn");
        assert_eq!(sharded.shard_of_dn(&root), sharded.shard_of_dn(&shouty));
    }

    #[test]
    fn single_shard_apply_matches_unsharded_and_updates_ledger() {
        let sharded = sharded(4);
        let before = sharded.len();
        let outcome = sharded
            .apply_ldif(records(
                "dn: uid=newbie,ou=databases,ou=attLabs,o=att\nobjectClass: researcher\nobjectClass: person\nobjectClass: top\nuid: newbie\nname: newbie\n",
            ))
            .expect("legal insert");
        assert_eq!(outcome.shards.len(), 1);
        assert_eq!(outcome.gid, None);
        assert_eq!(sharded.len(), before + 1);
        assert!(sharded.is_legal());
    }

    #[test]
    fn emptying_a_required_class_is_rolled_back_with_the_unsharded_code() {
        let (dir, _) = white_pages_instance();
        // Unsharded verdict for deleting the only organization's leaf
        // chain is "rolled-back"; the sharded ledger must agree when a
        // delete would empty ◇organization. Delete every person, then
        // every unit, then the org — the org delete is the ◇ breaker,
        // but earlier deletes already violate local required rels, so
        // build a minimal two-record case instead: delete a leaf person
        // that is the only `de person` witness? Simpler: check the
        // ledger path directly with a delete of the lone organization
        // subtree bottom-up in one transaction.
        let sharded = ShardedDirectory::with_instance(white_pages_schema(), dir.clone(), 2)
            .expect("legal seed");
        let mut text = String::new();
        // Bottom-up whole-subtree delete of o=att: every entry listed
        // leaf-first so the leaf-only discipline is satisfied and the
        // verdict is the ◇-class rollback, not invalid-tx.
        let mut dns: Vec<(usize, String)> = Vec::new();
        for (id, _) in dir.iter() {
            let dn = dir.dn(id).expect("dn");
            dns.push((dn.rdns().len(), dn.to_string()));
        }
        dns.sort_by_key(|d| std::cmp::Reverse(d.0));
        for (_, dn) in &dns {
            text.push_str(&format!("dn: {dn}\nchangetype: delete\n\n"));
        }
        let err = sharded.apply_ldif(records(&text)).expect_err("must roll back");
        assert_eq!(err.code(), "rolled-back", "{err}");
        // Nothing changed, ledger included.
        assert_eq!(sharded.len(), dir.len());
        assert!(sharded.is_legal());
    }

    #[test]
    fn cross_shard_apply_is_atomic_under_a_failing_shard() {
        let sharded = sharded(8);
        let before = sharded.merged_instance().expect("merge").canonical_bytes();
        // Two new top-level orgs on provably different shards in one
        // transaction; the second is illegal (an organization with an
        // organization child is forbidden by Ef, and it lacks the
        // required person descendant).
        let (good, bad) = two_names_on_distinct_shards(8);
        let text = format!(
            "dn: o={good}\nobjectClass: organization\nobjectClass: orgGroup\nobjectClass: online\nobjectClass: top\no: {good}\nuri: https://good.example\n\ndn: ou=grp,o={good}\nobjectClass: orgUnit\nobjectClass: orgGroup\nobjectClass: top\nou: grp\n\ndn: uid=p,ou=grp,o={good}\nobjectClass: person\nobjectClass: top\nuid: p\nname: p\n\ndn: o={bad}\nobjectClass: organization\nobjectClass: orgGroup\nobjectClass: online\nobjectClass: top\no: {bad}\nuri: https://bad.example\n\ndn: o=worse,o={bad}\nobjectClass: organization\nobjectClass: orgGroup\nobjectClass: online\nobjectClass: top\no: worse\nuri: https://worse.example\n"
        );
        let err = sharded.apply_ldif(records(&text)).expect_err("one shard must fail");
        assert_eq!(err.code(), "rolled-back", "{err}");
        let after = sharded.merged_instance().expect("merge").canonical_bytes();
        assert_eq!(before, after, "failed cross-shard tx left residue");
        assert!(sharded.is_legal());
    }

    #[test]
    fn torn_cross_shard_commit_reconciles_to_the_rolled_back_state() {
        // Drive a 2-phase apply that panics after shard A's commit was
        // flushed but before shard B's: live state rolls back; recovery
        // from the two journals must agree with the rollback.
        use bschema_faults::FaultPlan;

        let (dir, _) = white_pages_instance();
        let schema = white_pages_schema();
        let bases = partition(&dir, 2).expect("partition");
        let sharded = ShardedDirectory::with_instance(schema.clone(), dir.clone(), 2)
            .expect("legal seed")
            .with_probe(Arc::new(FaultPlan::fail_at_site("sharded.commit.shard1", 0)));

        let (name0, name1) = two_names_on_distinct_shards(2);
        let text = format!("{}\n{}", org_ldif(&name0), org_ldif(&name1));

        bschema_faults::silence_injected_panics();
        let err = sharded.apply_ldif(records(&text)).expect_err("injected panic");
        assert_eq!(err.code(), "panicked", "{err}");

        let live = sharded.merged_instance().expect("merge").canonical_bytes();
        let seeded = canonical_merge(partition(&dir, 1).expect("partition").iter()).expect("merge");
        assert_eq!(live, seeded.canonical_bytes(), "rollback incomplete");

        // Shard 0's journal holds a committed half of the global tx;
        // shard 1's only the begin records. Reconciled recovery must
        // discard the tx on both shards.
        let journals =
            [Journal::parse(&sharded.take_pending(0)), Journal::parse(&sharded.take_pending(1))];
        let has_commit = |j: &Journal| j.txs.iter().any(|t| t.committed && t.gid.is_some());
        assert!(has_commit(&journals[0]) ^ has_commit(&journals[1]), "expected a torn commit");
        let (recovered, reports) =
            ShardedDirectory::recover(schema, bases, &journals).expect("recover");
        assert_eq!(reports.iter().map(|r| r.replayed).sum::<usize>(), 0);
        assert_eq!(reports.iter().map(|r| r.discarded).sum::<usize>(), 2);
        let recovered_bytes = recovered.merged_instance().expect("merge").canonical_bytes();
        assert_eq!(recovered_bytes, live, "recovery disagrees with live rollback");
        assert!(recovered.is_legal());
    }

    #[test]
    fn committed_cross_shard_tx_survives_recovery() {
        let (dir, _) = white_pages_instance();
        let schema = white_pages_schema();
        let bases = partition(&dir, 2).expect("partition");
        let sharded = ShardedDirectory::with_instance(schema.clone(), dir, 2).expect("legal seed");
        let (name0, name1) = two_names_on_distinct_shards(2);
        let text = format!("{}\n{}", org_ldif(&name0), org_ldif(&name1));
        let outcome = sharded.apply_ldif(records(&text)).expect("legal cross-shard tx");
        assert_eq!(outcome.shards, vec![0, 1]);
        assert!(outcome.gid.is_some());

        let live = sharded.merged_instance().expect("merge").canonical_bytes();
        let journals =
            [Journal::parse(&sharded.take_pending(0)), Journal::parse(&sharded.take_pending(1))];
        let (recovered, reports) =
            ShardedDirectory::recover(schema, bases, &journals).expect("recover");
        assert_eq!(reports.iter().map(|r| r.replayed).sum::<usize>(), 2);
        assert_eq!(
            recovered.merged_instance().expect("merge").canonical_bytes(),
            live,
            "committed cross-shard tx lost in recovery"
        );
    }

    #[test]
    fn single_shard_modify_routes_journals_and_recovers() {
        let (dir, _) = white_pages_instance();
        let schema = white_pages_schema();
        let bases = partition(&dir, 2).expect("partition");
        let sharded = ShardedDirectory::with_instance(schema.clone(), dir, 2).expect("legal seed");
        let name = name_on_shard(0, 2);
        sharded.apply_ldif(records(&org_ldif(&name))).expect("subtree inserts");

        let dn = Dn::parse(&format!("uid=p,ou=u,o={name}")).expect("dn");
        let mods = [
            Mod::Add { attribute: "title".into(), value: "tester".into() },
            Mod::Replace { attribute: "name".into(), values: vec!["p. tester".into()] },
        ];
        let outcome = sharded.modify_dn(&dn, &mods).expect("modify applies");
        assert_eq!(outcome.shards, vec![0]);
        assert_eq!(outcome.gid, None);
        let after = sharded.shard_instance(0);
        let id = after.lookup_dn(&dn).expect("entry still there");
        assert_eq!(after.entry(id).expect("entry").values("title"), ["tester"]);
        assert_eq!(after.entry(id).expect("entry").values("name"), ["p. tester"]);

        // The modify is journalled: recovery replays it.
        let live = sharded.merged_instance().expect("merge").canonical_bytes();
        let journals =
            [Journal::parse(&sharded.take_pending(0)), Journal::parse(&sharded.take_pending(1))];
        assert!(
            journals[0].committed().any(|tx| tx.modify.is_some()),
            "modify tx missing from shard 0 journal"
        );
        let (recovered, _) = ShardedDirectory::recover(schema, bases, &journals).expect("recover");
        assert_eq!(recovered.merged_instance().expect("merge").canonical_bytes(), live);
    }

    #[test]
    fn modify_respects_the_required_class_ledger() {
        let sharded = sharded(2);
        // o=att is the only organization; a modify dropping its class
        // would empty ◇organization — refused at admission, before any
        // journal record or mutation.
        let dn = Dn::parse("o=att").expect("dn");
        let err = sharded
            .modify_dn(
                &dn,
                &[Mod::DeleteValue {
                    attribute: "objectClass".into(),
                    value: "organization".into(),
                }],
            )
            .expect_err("must not empty a required class");
        assert_eq!(err.code(), "rolled-back", "{err}");
        let k = sharded.shard_of_dn(&dn);
        assert_eq!(sharded.take_pending(k), "", "refused modify must not journal");

        // Unknown targets report no-such-entry.
        let ghost = Dn::parse("o=nowhere").expect("dn");
        let err = sharded
            .modify_dn(&ghost, &[Mod::DeleteAttribute { attribute: "description".into() }])
            .expect_err("ghost target");
        assert_eq!(err.code(), "no-such-entry");
    }

    #[test]
    fn checkpointed_sharded_recovery_matches_live_state() {
        let (dir, _) = white_pages_instance();
        let schema = white_pages_schema();
        let bases = partition(&dir, 2).expect("partition");
        let sharded = ShardedDirectory::with_instance(schema.clone(), dir, 2).expect("legal seed");

        // History before the checkpoint: one committed cross-shard tx.
        let (name0, name1) = two_names_on_distinct_shards(2);
        let text = format!("{}\n{}", org_ldif(&name0), org_ldif(&name1));
        sharded.apply_ldif(records(&text)).expect("cross-shard tx");
        let hist: Vec<String> = (0..2).map(|k| sharded.take_pending(k)).collect();

        let ckpts = sharded.checkpoint_all();
        assert_eq!(ckpts.len(), 2);
        let ckpt_texts: Vec<Option<String>> = ckpts.iter().map(|c| Some(c.encode())).collect();

        // Tail after the checkpoint: a fresh subtree and a modify.
        let extra = (0..2048)
            .map(|i| format!("x{i}"))
            .find(|n| shard_of_root_rdn(&Rdn::single("o", n.clone()), 2) == 1)
            .expect("some name hashes to shard 1");
        sharded.apply_ldif(records(&org_ldif(&extra))).expect("tail insert");
        let dn = Dn::parse(&format!("uid=p,ou=u,o={name0}")).expect("dn");
        sharded
            .modify_dn(&dn, &[Mod::Add { attribute: "title".into(), value: "tail".into() }])
            .expect("tail modify");
        let tails: Vec<String> = (0..2).map(|k| sharded.take_pending(k)).collect();
        let live = sharded.merged_instance().expect("merge").canonical_bytes();

        // Steady state: checkpoint + short tail per shard.
        let journals = [Journal::parse(&tails[0]), Journal::parse(&tails[1])];
        for (k, journal) in journals.iter().enumerate() {
            assert_eq!(journal.start_seq, ckpts[k].seq, "tail must start at the checkpoint");
        }
        let (recovered, reports) = ShardedDirectory::recover_with_checkpoints(
            schema.clone(),
            bases.clone(),
            &ckpt_texts,
            &journals,
        )
        .expect("checkpoint + tail recovers");
        assert_eq!(reports.iter().map(|r| r.replayed).sum::<usize>(), 2);
        assert_eq!(recovered.merged_instance().expect("merge").canonical_bytes(), live);

        // Crash before truncation: checkpoint + full journal. The
        // replay rule must not double-apply the checkpointed prefix.
        let fulls = [format!("{}{}", hist[0], tails[0]), format!("{}{}", hist[1], tails[1])];
        let journals = [Journal::parse(&fulls[0]), Journal::parse(&fulls[1])];
        let (recovered, reports) = ShardedDirectory::recover_with_checkpoints(
            schema.clone(),
            bases.clone(),
            &ckpt_texts,
            &journals,
        )
        .expect("checkpoint + full journal recovers");
        assert_eq!(reports.iter().map(|r| r.replayed).sum::<usize>(), 2);
        assert_eq!(recovered.merged_instance().expect("merge").canonical_bytes(), live);

        // No checkpoints at all: plain full replay still converges.
        let no_ckpts = vec![None, None];
        let (recovered, _) =
            ShardedDirectory::recover_with_checkpoints(schema, bases, &no_ckpts, &journals)
                .expect("full replay recovers");
        assert_eq!(recovered.merged_instance().expect("merge").canonical_bytes(), live);
    }

    /// The white-pages schema evolved by one relaxing step, plus its
    /// canonical DSL document.
    fn relaxed_schema() -> (DirectorySchema, String) {
        let step = crate::evolution::Evolution::AllowAttribute {
            class: "person".into(),
            attribute: "nickname".into(),
        };
        let target = crate::evolution::apply(&white_pages_schema(), &step).expect("relaxing step");
        let dsl = crate::schema::dsl::print_schema(&target, None);
        (target, dsl)
    }

    #[test]
    fn schema_swap_is_journalled_on_every_shard_and_recovers() {
        let (dir, _) = white_pages_instance();
        let schema = white_pages_schema();
        let bases = partition(&dir, 2).expect("partition");
        let sharded = ShardedDirectory::with_instance(schema.clone(), dir, 2).expect("legal seed");

        let (target, dsl) = relaxed_schema();
        sharded.swap_schema(target.clone(), &dsl).expect("relaxing cutover");
        assert_eq!(
            crate::schema::dsl::print_schema(&sharded.schema(), None),
            dsl,
            "live epoch must be the evolved schema"
        );
        // A write only legal under the evolved schema now commits.
        sharded
            .apply_ldif(records(
                "dn: uid=nick,ou=databases,ou=attLabs,o=att\nobjectClass: person\nobjectClass: top\nuid: nick\nname: nick\nnickname: nn\n",
            ))
            .expect("evolved-schema insert");
        assert!(sharded.is_legal());

        // Recovery from the boot schema replays the cutover and the
        // post-cutover write, converging on the evolved epoch.
        let live = sharded.merged_instance().expect("merge").canonical_bytes();
        let journals =
            [Journal::parse(&sharded.take_pending(0)), Journal::parse(&sharded.take_pending(1))];
        for (k, journal) in journals.iter().enumerate() {
            assert!(
                journal.txs.iter().any(|tx| tx.committed && tx.schema.is_some()),
                "shard {k} journal is missing the schema record"
            );
        }
        let (recovered, _) =
            ShardedDirectory::recover(schema, bases, &journals).expect("recover across cutover");
        assert_eq!(crate::schema::dsl::print_schema(&recovered.schema(), None), dsl);
        assert_eq!(recovered.merged_instance().expect("merge").canonical_bytes(), live);
        assert!(recovered.is_legal());
    }

    #[test]
    fn torn_schema_swap_reconciles_to_the_old_epoch() {
        let (dir, _) = white_pages_instance();
        let schema = white_pages_schema();
        let bases = partition(&dir, 2).expect("partition");
        let sharded = ShardedDirectory::with_instance(schema.clone(), dir, 2).expect("legal seed");
        let (target, dsl) = relaxed_schema();
        sharded.swap_schema(target, &dsl).expect("cutover");

        // Simulate a crash between the commit flushes: shard 1 keeps
        // only its begin+schema records (strip the trailing commit
        // paragraph). The all-peers rule must discard the cutover on
        // both shards.
        let full = sharded.take_pending(1);
        let cut = full.rfind("\ndn: op=").expect("commit record present");
        let torn = &full[..cut + 1];
        let journals = [Journal::parse(&sharded.take_pending(0)), Journal::parse(torn)];
        assert!(journals[0].txs.iter().any(|tx| tx.committed && tx.schema.is_some()));
        assert!(!journals[1].txs.iter().any(|tx| tx.committed && tx.schema.is_some()));
        let (recovered, _) =
            ShardedDirectory::recover(schema.clone(), bases, &journals).expect("recover");
        assert_eq!(
            crate::schema::dsl::print_schema(&recovered.schema(), None),
            crate::schema::dsl::print_schema(&schema, None),
            "a torn cutover must roll back to the boot epoch"
        );
    }

    #[test]
    fn checkpoints_after_a_swap_embed_and_restore_the_evolved_epoch() {
        let (dir, _) = white_pages_instance();
        let schema = white_pages_schema();
        let bases = partition(&dir, 2).expect("partition");
        let sharded = ShardedDirectory::with_instance(schema.clone(), dir, 2).expect("legal seed");
        let (target, dsl) = relaxed_schema();
        sharded.swap_schema(target, &dsl).expect("cutover");
        for k in 0..2 {
            let _ = sharded.take_pending(k);
        }

        // Checkpoints taken after the cutover embed the full evolved
        // schema; recovery from them (journals truncated, boot schema
        // pre-evolution) must land on the evolved epoch.
        let ckpts = sharded.checkpoint_all();
        let ckpt_texts: Vec<Option<String>> = ckpts.iter().map(|c| Some(c.encode())).collect();
        let empties = [Journal::parse(""), Journal::parse("")];
        let (recovered, _) =
            ShardedDirectory::recover_with_checkpoints(schema, bases, &ckpt_texts, &empties)
                .expect("checkpointed recovery across cutover");
        assert_eq!(crate::schema::dsl::print_schema(&recovered.schema(), None), dsl);
        assert_eq!(
            recovered.merged_instance().expect("merge").canonical_bytes(),
            sharded.merged_instance().expect("merge").canonical_bytes()
        );
    }
}
