//! Write-ahead transaction journal with LDIF-compatible serialization.
//!
//! Theorem 4.1's atomicity contract only survives a *process* crash if
//! the transaction boundary is durable: a directory that dies between
//! mutation and verdict must come back on the committed prefix of its
//! history, not on a half-applied state no checker ever certified. The
//! journal records every transaction write-ahead — a `begin` record,
//! one record per operation, then a `commit` record once (and only
//! once) the incremental check accepted the result — and
//! [`ManagedDirectory::recover`] replays exactly the committed
//! transactions, re-validating each through the normal apply path and
//! discarding uncommitted tails.
//!
//! ## Format
//!
//! The journal is a valid LDIF document (RFC 2849 subset, same parser
//! as directory content), so standard tooling can inspect it. Each
//! record carries a synthetic DN `op=<seq>,cn=journal` (`<seq>` is a
//! global record sequence number) and describes itself with reserved
//! `jrn*` attributes:
//!
//! ```ldif
//! dn: op=0,cn=journal
//! jrntype: begin
//! jrntx: 0
//! jrndone: 0
//!
//! dn: op=1,cn=journal
//! objectClass: person
//! objectClass: top
//! jrnop: 0
//! jrnparent: existing:4
//! jrntx: 0
//! jrntype: insert
//! uid: zoe
//! jrndone: 1
//!
//! dn: op=2,cn=journal
//! jrntx: 0
//! jrntype: commit
//! jrndone: 2
//! ```
//!
//! `jrnparent` is `root`, `existing:<slot>` (an [`EntryId`] index), or
//! `new:<op>` (the entry created by an earlier op of the same
//! transaction); `jrntarget` names the deleted slot. `jrndone: <seq>`
//! is always the record's **last** line, so a record cut anywhere by a
//! crash is detectably incomplete. The `jrn` attribute prefix is
//! reserved: payload attributes starting with `jrn` are not journalled
//! faithfully.
//!
//! ## Recovery semantics
//!
//! [`Journal::parse`] never fails: it reads records up to the first
//! malformed, incomplete, or out-of-sequence one and treats everything
//! from there as the torn tail of a crash (`truncated`, with the
//! dropped record count). A transaction is replayed iff its `commit`
//! record survived intact; `begin`/op records without a commit are
//! discarded — exactly the "committed prefix" the chaos suite asserts.

use std::fmt::Write as _;

use bschema_directory::ldif::{parse_ldif, write_record, LdifRecord};
use bschema_directory::{DirectoryInstance, Dn, Entry, EntryId};

use crate::managed::{ManagedDirectory, ManagedError};
use crate::schema::DirectorySchema;
use crate::updates::{Mod, NodeRef, Transaction, TxOp};

/// DN suffix shared by every journal record.
pub const JOURNAL_DN_SUFFIX: &str = "cn=journal";

/// The journal file for shard `shard` of a sharded directory whose
/// unsharded journal would live at `base`: `<base>.shard<k>`. Keeping
/// the per-shard files siblings of the unsharded path means `serve
/// --shards N` and plain `serve` can point at the same `--journal`
/// argument.
pub fn shard_journal_path(base: &std::path::Path, shard: usize) -> std::path::PathBuf {
    let name = base
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "journal".to_owned());
    base.with_file_name(format!("{name}.shard{shard}"))
}

/// An LDAP Modify journalled as its own transaction: `begin`, one
/// `modify` record per [`Mod`] (all addressing the same slot), then
/// `commit`. Recovery applies the whole mod list in one
/// [`ManagedDirectory::modify_entry`] call so intermediate states are
/// never checked — only the certified end state.
#[derive(Debug, Clone)]
pub struct JournalModify {
    /// The modified entry's slot.
    pub target: EntryId,
    /// The modifications, in record order.
    pub mods: Vec<Mod>,
}

/// A schema evolution journalled as its own transaction: `begin`, one
/// `schema` record carrying the complete evolved schema as escaped DSL
/// text, then `commit`. Recovery swaps the engine's schema (after the
/// usual Figures 6–7 consistency closure) instead of mutating entries —
/// the paper's §6.2 "no modifications to existing directory entries"
/// claim, made durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSchema {
    /// The complete evolved schema, as schema-DSL text. Always the
    /// *full* schema (required classes included), even in a shard
    /// journal — see [`JournalSchema::local`].
    pub dsl: String,
    /// Whether the engine that journalled this record runs under the
    /// localised schema (required classes stripped — a Theorem 4.1
    /// shard engine). Replay must apply `without_required_classes()`
    /// before swapping; the full DSL is still recorded so sharded
    /// recovery can re-derive the global schema and its ◇c ledger.
    pub local: bool,
}

impl JournalSchema {
    /// Parses the recorded DSL into the full evolved schema (required
    /// classes included).
    pub fn full_schema(&self) -> Result<DirectorySchema, String> {
        crate::schema::dsl::parse_schema(&self.dsl)
            .map(|parsed| parsed.schema)
            .map_err(|e| format!("journalled schema does not parse: {e}"))
    }

    /// The schema the journalling *engine* must swap to on replay: the
    /// full schema, or its localised form (`without_required_classes`)
    /// when the record came from a shard engine.
    pub fn engine_schema(&self) -> Result<DirectorySchema, String> {
        let full = self.full_schema()?;
        Ok(if self.local { full.without_required_classes() } else { full })
    }
}

/// One transaction as read back from a journal.
#[derive(Debug, Clone)]
pub struct JournalTx {
    /// The transaction id from its `begin` record.
    pub id: u64,
    /// The journal sequence number of this transaction's `begin` record.
    /// Checkpoint recovery replays exactly the committed transactions
    /// with `first_seq >= checkpoint.seq`.
    pub first_seq: u64,
    /// The modify payload when this transaction journalled an LDAP
    /// Modify instead of insert/delete ops (the two never mix).
    pub modify: Option<JournalModify>,
    /// The schema payload when this transaction journalled a schema
    /// evolution cutover (never mixes with ops or modify).
    pub schema: Option<JournalSchema>,
    /// Global transaction id stamped by a sharded 2-phase apply
    /// (`jrngid`), shared by every participating shard's journal.
    /// `None` for ordinary single-engine transactions.
    pub gid: Option<u64>,
    /// Number of shards participating in the global transaction
    /// (`jrnpeers`). A cross-shard transaction only counts as committed
    /// if a commit record for its `gid` is intact in all `peers`
    /// journals — the reconciliation `ShardedDirectory::recover` runs.
    pub peers: Option<u64>,
    /// The recorded operations, in op order.
    pub ops: Vec<TxOp>,
    /// Whether an intact `commit` record was found.
    pub committed: bool,
}

impl JournalTx {
    /// Rebuilds the replayable [`Transaction`]. Op indices are positions
    /// in `ops`, so `new:<op>` parent references resolve as in the
    /// original.
    pub fn to_transaction(&self) -> Transaction {
        let mut tx = Transaction::new();
        for op in &self.ops {
            match op {
                TxOp::Insert { parent: None, rdn: None, entry } => {
                    tx.insert_root(entry.clone());
                }
                TxOp::Insert { parent: None, rdn: Some(rdn), entry } => {
                    tx.insert_root_named(rdn.clone(), entry.clone());
                }
                TxOp::Insert { parent: Some(NodeRef::Existing(id)), rdn: None, entry } => {
                    tx.insert_under(*id, entry.clone());
                }
                TxOp::Insert { parent: Some(NodeRef::Existing(id)), rdn: Some(rdn), entry } => {
                    tx.insert_under_named(*id, rdn.clone(), entry.clone());
                }
                TxOp::Insert { parent: Some(NodeRef::New(j)), rdn: None, entry } => {
                    tx.insert_under_new(*j, entry.clone());
                }
                TxOp::Insert { parent: Some(NodeRef::New(j)), rdn: Some(rdn), entry } => {
                    tx.insert_under_new_named(*j, rdn.clone(), entry.clone());
                }
                TxOp::Delete { target } => tx.delete(*target),
            }
        }
        tx
    }
}

/// A parsed journal: the recoverable transaction history plus crash
/// diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Transactions in journal order (committed and uncommitted).
    pub txs: Vec<JournalTx>,
    /// Records discarded as a torn/corrupt tail.
    pub dropped_records: usize,
    /// Byte length of the intact prefix of the parsed text: everything
    /// beyond this offset is crash damage. A writer resuming on the same
    /// file should truncate it to this length first.
    pub intact_len: usize,
    /// Whether reading stopped at a malformed, incomplete, or
    /// out-of-sequence record (structural crash damage). An uncommitted
    /// final transaction alone does not set this — aborted transactions
    /// are normal journal content.
    pub truncated: bool,
    /// The shard index qualifying every record DN
    /// (`op=<seq>,shard=<k>,cn=journal`), when this is a shard journal.
    /// Mixed-shard files are treated as crash damage.
    pub shard: Option<u64>,
    /// The sequence number of the first record. `0` for a full journal;
    /// a truncated journal (the tail left behind by a checkpoint) starts
    /// at the checkpointed sequence.
    pub start_seq: u64,
    /// One past the highest intact record sequence number (where a
    /// resumed writer continues).
    next_seq: u64,
    /// One past the highest transaction id seen.
    next_tx: u64,
}

/// Summary statistics of a parsed journal — what `recover --verify`
/// reports without touching the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalStats {
    /// Intact records in the parse.
    pub records: u64,
    /// Transactions with an intact `commit` record.
    pub committed: usize,
    /// Transactions without one (aborted, or cut by a crash).
    pub uncommitted: usize,
    /// Records discarded as a torn/corrupt tail.
    pub dropped_records: usize,
    /// Whether structural crash damage was found.
    pub truncated: bool,
    /// Sequence number of the first record (non-zero after truncation).
    pub start_seq: u64,
    /// One past the highest intact record sequence number.
    pub next_seq: u64,
    /// Byte length of the intact prefix.
    pub intact_len: usize,
    /// Shard qualifier, for per-shard journals.
    pub shard: Option<u64>,
}

/// A fully decoded journal record, before transaction grouping.
struct ParsedRecord {
    seq: u64,
    kind: String,
    tx: u64,
    gid: Option<u64>,
    peers: Option<u64>,
    shard: Option<u64>,
    op: Option<usize>,
    parent: Option<String>,
    rdn: Option<String>,
    target: Option<usize>,
    mod_kind: Option<String>,
    mod_attr: Option<String>,
    mod_values: Vec<String>,
    schema_dsl: Option<String>,
    schema_local: bool,
    payload: Entry,
}

/// Flattens multi-line schema-DSL text into a single LDIF value
/// (`\` → `\\`, newline → `\n`). Blank DSL lines are significant to the
/// schema grammar, so a per-line encoding would not round-trip.
pub(crate) fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_text`].
pub(crate) fn unescape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn parse_u64(s: &str) -> Option<u64> {
    s.trim().parse().ok()
}

/// Decodes a record DN `op=<seq>[,shard=<k>],cn=journal` into the
/// sequence number and optional shard qualifier. `None` means the DN is
/// not a journal record DN.
fn decode_record_dn(dn: &str) -> Option<(u64, Option<u64>)> {
    let rest = dn.strip_prefix("op=")?;
    let (seq, rest) = rest.split_once(',')?;
    let seq = parse_u64(seq)?;
    if rest == JOURNAL_DN_SUFFIX {
        return Some((seq, None));
    }
    let shard = rest.strip_suffix(&format!(",{JOURNAL_DN_SUFFIX}"))?.strip_prefix("shard=")?;
    Some((seq, Some(parse_u64(shard)?)))
}

/// Decodes one LDIF record into a journal record; `None` means the
/// record is not an intact journal record (torn tail, foreign content).
/// With `expected_seq` the record must carry exactly that sequence
/// number; without (the journal's first record) any sequence is
/// accepted — that is what lets a truncated journal start mid-history.
fn decode_record(rec: &LdifRecord, expected_seq: Option<u64>) -> Option<ParsedRecord> {
    let (seq, shard) = decode_record_dn(&rec.dn.to_string())?;
    if expected_seq.is_some_and(|expected| expected != seq) {
        return None;
    }
    // jrndone is written last; its absence (or a mismatched sequence)
    // marks a record cut short by a crash.
    if parse_u64(rec.entry.first_value("jrndone")?)? != seq {
        return None;
    }
    let kind = rec.entry.first_value("jrntype")?.to_owned();
    let tx = parse_u64(rec.entry.first_value("jrntx")?)?;
    let gid = rec.entry.first_value("jrngid").and_then(parse_u64);
    let peers = rec.entry.first_value("jrnpeers").and_then(parse_u64);
    let op = match rec.entry.first_value("jrnop") {
        Some(v) => Some(parse_u64(v)? as usize),
        None => None,
    };
    let parent = rec.entry.first_value("jrnparent").map(str::to_owned);
    let rdn = rec.entry.first_value("jrnrdn").map(str::to_owned);
    let target = match rec.entry.first_value("jrntarget") {
        Some(v) => Some(parse_u64(v)? as usize),
        None => None,
    };
    let mod_kind = rec.entry.first_value("jrnmod").map(str::to_owned);
    let mod_attr = rec.entry.first_value("jrnattr").map(str::to_owned);
    let mod_values = rec.entry.values("jrnval").to_vec();
    let schema_dsl = rec.entry.first_value("jrnschema").map(unescape_text);
    let schema_local = rec.entry.first_value("jrnlocal").is_some();
    let mut payload = rec.entry.clone();
    for attr in [
        "jrntype",
        "jrntx",
        "jrngid",
        "jrnpeers",
        "jrnop",
        "jrnparent",
        "jrnrdn",
        "jrntarget",
        "jrnmod",
        "jrnattr",
        "jrnval",
        "jrnschema",
        "jrnlocal",
        "jrndone",
    ] {
        payload.remove_attribute(attr);
    }
    Some(ParsedRecord {
        seq,
        kind,
        tx,
        gid,
        peers,
        shard,
        op,
        parent,
        rdn,
        target,
        mod_kind,
        mod_attr,
        mod_values,
        schema_dsl,
        schema_local,
        payload,
    })
}

/// Reconstructs a [`Mod`] from a `modify` record's fields.
fn decode_mod(kind: &str, attr: Option<&str>, values: &[String]) -> Option<Mod> {
    let attribute = attr?.to_owned();
    let single = || (values.len() == 1).then(|| values[0].clone());
    match kind {
        "add" => Some(Mod::Add { attribute, value: single()? }),
        "delete-value" => Some(Mod::DeleteValue { attribute, value: single()? }),
        "delete-attribute" if values.is_empty() => Some(Mod::DeleteAttribute { attribute }),
        "replace" => Some(Mod::Replace { attribute, values: values.to_vec() }),
        _ => None,
    }
}

fn decode_parent(spec: &str) -> Option<Option<NodeRef>> {
    if spec == "root" {
        return Some(None);
    }
    if let Some(idx) = spec.strip_prefix("existing:") {
        return Some(Some(NodeRef::Existing(EntryId::from_index(parse_u64(idx)? as usize))));
    }
    if let Some(op) = spec.strip_prefix("new:") {
        return Some(Some(NodeRef::New(parse_u64(op)? as usize)));
    }
    None
}

impl Journal {
    /// An empty journal (no history).
    pub fn empty() -> Self {
        Journal::default()
    }

    /// Parses journal text, tolerating any crash truncation: reading
    /// stops at the first record that is malformed, incomplete, or out
    /// of sequence, and everything from there on counts as dropped.
    /// Never fails — a hopelessly corrupt file is simply an empty
    /// journal with `truncated` set.
    pub fn parse(text: &str) -> Self {
        // Split into paragraphs ourselves so one torn record does not
        // poison the parse of everything before it. Each paragraph keeps
        // the byte offset just past it (separator included) so intact_len
        // can report how much of the file survived.
        let mut paragraphs: Vec<(String, usize)> = Vec::new();
        let mut current = String::new();
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            offset += line.len();
            let body = line.strip_suffix('\n').unwrap_or(line);
            let body = body.strip_suffix('\r').unwrap_or(body);
            if body.trim().is_empty() {
                if !current.is_empty() {
                    paragraphs.push((std::mem::take(&mut current), offset));
                }
            } else {
                current.push_str(body);
                current.push('\n');
            }
        }
        if !current.is_empty() {
            paragraphs.push((current, offset));
        }

        let mut journal = Journal::empty();
        let mut open: Option<JournalTx> = None;
        let mut intact = 0usize;
        let mut first = true;
        'records: for (paragraph, end) in &paragraphs {
            let expected = if first { None } else { Some(journal.next_seq) };
            let decoded = match parse_ldif(paragraph) {
                Ok(records) if records.len() == 1 => decode_record(&records[0], expected),
                _ => None,
            };
            let Some(record) = decoded else {
                journal.truncated = true;
                break 'records;
            };
            // A shard journal carries one shard qualifier throughout; a
            // record from another shard (or the unsharded form) is
            // foreign content, i.e. damage. The first record also fixes
            // the starting sequence — non-zero for the tail a checkpoint
            // truncation leaves behind.
            if first {
                journal.shard = record.shard;
                journal.start_seq = record.seq;
                journal.next_seq = record.seq;
                first = false;
            } else if journal.shard != record.shard {
                journal.truncated = true;
                break 'records;
            }
            match record.kind.as_str() {
                "begin" => {
                    if let Some(tx) = open.take() {
                        // begin without commit: the previous transaction
                        // aborted (rolled back, or crashed before its
                        // verdict) — keep it, uncommitted. Not structural
                        // damage; aborted txs are normal journal content.
                        journal.txs.push(tx);
                    }
                    open = Some(JournalTx {
                        id: record.tx,
                        first_seq: record.seq,
                        modify: None,
                        schema: None,
                        gid: record.gid,
                        peers: record.peers,
                        ops: Vec::new(),
                        committed: false,
                    });
                }
                "schema" => {
                    // A schema cutover is a one-record transaction; it
                    // never mixes with ops, modify, or another schema
                    // record.
                    let valid = matches!(&open, Some(tx) if tx.id == record.tx
                        && tx.ops.is_empty()
                        && tx.modify.is_none()
                        && tx.schema.is_none());
                    let (Some(dsl), true) = (record.schema_dsl, valid) else {
                        journal.truncated = true;
                        break 'records;
                    };
                    let tx = open.as_mut().expect("valid implies an open tx");
                    tx.schema = Some(JournalSchema { dsl, local: record.schema_local });
                }
                "modify" => {
                    // Modify records never mix with insert/delete ops,
                    // share one target per transaction, and are
                    // op-indexed like any other record.
                    let next_op =
                        open.as_ref().map(|tx| tx.modify.as_ref().map_or(0, |m| m.mods.len()));
                    let valid = matches!(&open, Some(tx) if tx.id == record.tx
                        && tx.ops.is_empty()
                        && tx.schema.is_none())
                        && record.op == next_op;
                    let decoded_mod = record.mod_kind.as_deref().and_then(|k| {
                        decode_mod(k, record.mod_attr.as_deref(), &record.mod_values)
                    });
                    let (Some(target), Some(m), true) = (record.target, decoded_mod, valid) else {
                        journal.truncated = true;
                        break 'records;
                    };
                    let target = EntryId::from_index(target);
                    let tx = open.as_mut().expect("valid implies an open tx");
                    match tx.modify.as_mut() {
                        None => tx.modify = Some(JournalModify { target, mods: vec![m] }),
                        Some(existing) if existing.target == target => existing.mods.push(m),
                        Some(_) => {
                            journal.truncated = true;
                            break 'records;
                        }
                    }
                }
                "insert" | "delete" => {
                    let valid = matches!(&open, Some(tx) if tx.id == record.tx
                        && tx.modify.is_none()
                        && tx.schema.is_none())
                        && record.op == open.as_ref().map(|tx| tx.ops.len());
                    if !valid {
                        journal.truncated = true;
                        break 'records;
                    }
                    let op = if record.kind == "insert" {
                        let Some(parent) = record.parent.as_deref().and_then(decode_parent) else {
                            journal.truncated = true;
                            break 'records;
                        };
                        let rdn = match record.rdn.as_deref() {
                            None => None,
                            // An RDN is serialised as a one-component DN.
                            Some(s) => match Dn::parse(s).ok().and_then(|dn| dn.rdn().cloned()) {
                                Some(rdn) => Some(rdn),
                                None => {
                                    journal.truncated = true;
                                    break 'records;
                                }
                            },
                        };
                        TxOp::Insert { parent, rdn, entry: record.payload }
                    } else {
                        let Some(target) = record.target else {
                            journal.truncated = true;
                            break 'records;
                        };
                        TxOp::Delete { target: EntryId::from_index(target) }
                    };
                    if let Some(tx) = open.as_mut() {
                        tx.ops.push(op);
                    }
                }
                "commit" => match open.take() {
                    Some(mut tx) if tx.id == record.tx => {
                        tx.committed = true;
                        journal.txs.push(tx);
                    }
                    _ => {
                        journal.truncated = true;
                        break 'records;
                    }
                },
                _ => {
                    journal.truncated = true;
                    break 'records;
                }
            }
            journal.next_tx = journal.next_tx.max(record.tx + 1);
            journal.next_seq += 1;
            journal.intact_len = *end;
            intact += 1;
        }
        if let Some(tx) = open.take() {
            // Journal ends without a commit: an aborted final transaction
            // or a crash before the verdict — either way, uncommitted.
            journal.txs.push(tx);
        }
        journal.dropped_records = paragraphs.len() - intact;
        journal
    }

    /// Transactions with an intact commit record, in order.
    pub fn committed(&self) -> impl Iterator<Item = &JournalTx> {
        self.txs.iter().filter(|tx| tx.committed)
    }

    /// One past the highest intact record sequence number — where a
    /// resumed writer (or a replication cursor) continues.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// One past the highest transaction id seen — where a resumed
    /// writer continues numbering transactions.
    pub fn next_tx(&self) -> u64 {
        self.next_tx
    }

    /// Summary statistics, for diagnostics that must not mutate the
    /// journal (`recover --verify`).
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            records: self.next_seq - self.start_seq,
            committed: self.committed().count(),
            uncommitted: self.txs.iter().filter(|tx| !tx.committed).count(),
            dropped_records: self.dropped_records,
            truncated: self.truncated,
            start_seq: self.start_seq,
            next_seq: self.next_seq,
            intact_len: self.intact_len,
            shard: self.shard,
        }
    }
}

/// Serialises transactions into write-ahead journal records.
///
/// The writer only builds text; durability is the caller's job. The
/// WAL discipline is: call [`begin`](JournalWriter::begin), persist
/// [`take_pending`](JournalWriter::take_pending) (append to the journal
/// file), apply the transaction, and on success call
/// [`commit`](JournalWriter::commit) and persist again. A crash at any
/// point then leaves either no trace, an uncommitted (discarded) tail,
/// or a fully committed transaction — never a half-truth.
/// [`ManagedDirectory::apply_journaled`] bundles the sequence for
/// in-memory use.
#[derive(Debug, Default)]
pub struct JournalWriter {
    seq: u64,
    next_tx: u64,
    pending: String,
    /// Shard qualifier written into every record DN
    /// (`op=<seq>,shard=<k>,cn=journal`).
    shard: Option<usize>,
    /// Record text bytes built since this writer was constructed —
    /// excludes any replayed history a resumed writer appends after.
    bytes: u64,
}

impl JournalWriter {
    /// A writer for a fresh journal.
    pub fn new() -> Self {
        JournalWriter::default()
    }

    /// A writer that appends after an existing journal's intact prefix,
    /// keeping the journal's shard qualifier (if any).
    pub fn resume_after(journal: &Journal) -> Self {
        JournalWriter {
            seq: journal.next_seq,
            next_tx: journal.next_tx,
            pending: String::new(),
            shard: journal.shard.map(|k| k as usize),
            bytes: 0,
        }
    }

    /// A writer that continues at an explicit sequence and transaction
    /// id — the resume path when a checkpoint truncated the journal to
    /// nothing, so there is no record to parse the cursor out of; both
    /// values come from the checkpoint header instead.
    pub fn resume_at(seq: u64, next_tx: u64) -> Self {
        JournalWriter { seq, next_tx, ..JournalWriter::default() }
    }

    /// Qualifies every subsequent record DN with `shard=<k>` — the
    /// per-shard journal form of a [`ShardedDirectory`].
    ///
    /// [`ShardedDirectory`]: crate::sharded::ShardedDirectory
    pub fn with_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    fn emit(&mut self, kind: &str, tx: u64, extra: &[(&str, String)], payload: Option<&Entry>) {
        let seq = self.seq;
        self.seq += 1;
        let mut entry = payload.cloned().unwrap_or_default();
        entry.add_value("jrntype", kind);
        entry.add_value("jrntx", tx.to_string());
        for (attr, value) in extra {
            entry.add_value(attr, value.clone());
        }
        let dn = match self.shard {
            Some(k) => format!("op={seq},shard={k},{JOURNAL_DN_SUFFIX}"),
            None => format!("op={seq},{JOURNAL_DN_SUFFIX}"),
        };
        let mut record = String::new();
        write_record(&mut record, &dn, &entry);
        // write_record ends with the blank separator; jrndone must be the
        // record's final attribute line so truncation is detectable.
        record.pop();
        let _ = writeln!(record, "jrndone: {seq}");
        record.push('\n');
        self.bytes = self.bytes.saturating_add(record.len() as u64);
        self.pending.push_str(&record);
    }

    /// Records `begin` plus one record per op (the write-ahead half) and
    /// returns the transaction id for [`commit`](JournalWriter::commit).
    pub fn begin(&mut self, tx: &Transaction) -> u64 {
        self.begin_with(tx, &[])
    }

    /// Like [`begin`](JournalWriter::begin), but stamps the begin record
    /// with a global transaction id and participant count. A sharded
    /// 2-phase apply writes the same `gid` into every participating
    /// shard's journal; recovery then treats the transaction as
    /// committed only when all `peers` journals committed it.
    pub fn begin_global(&mut self, tx: &Transaction, gid: u64, peers: u64) -> u64 {
        self.begin_with(tx, &[("jrngid", gid.to_string()), ("jrnpeers", peers.to_string())])
    }

    fn begin_with(&mut self, tx: &Transaction, begin_extra: &[(&str, String)]) -> u64 {
        let id = self.next_tx;
        self.next_tx += 1;
        self.emit("begin", id, begin_extra, None);
        for (i, op) in tx.ops().iter().enumerate() {
            match op {
                TxOp::Insert { parent, rdn, entry } => {
                    let spec = match parent {
                        None => "root".to_owned(),
                        Some(NodeRef::Existing(p)) => format!("existing:{}", p.index()),
                        Some(NodeRef::New(j)) => format!("new:{j}"),
                    };
                    let mut extra = vec![("jrnop", i.to_string()), ("jrnparent", spec)];
                    if let Some(rdn) = rdn {
                        extra.push(("jrnrdn", rdn.to_string()));
                    }
                    self.emit("insert", id, &extra, Some(entry));
                }
                TxOp::Delete { target } => {
                    self.emit(
                        "delete",
                        id,
                        &[("jrnop", i.to_string()), ("jrntarget", target.index().to_string())],
                        None,
                    );
                }
            }
        }
        id
    }

    /// Records `begin` plus one `modify` record per [`Mod`] on `target`
    /// (the write-ahead half of an LDAP Modify) and returns the
    /// transaction id for [`commit`](JournalWriter::commit).
    pub fn begin_modify(&mut self, target: EntryId, mods: &[Mod]) -> u64 {
        let id = self.next_tx;
        self.next_tx += 1;
        self.emit("begin", id, &[], None);
        for (i, m) in mods.iter().enumerate() {
            let (kind, attribute, values): (&str, &str, Vec<String>) = match m {
                Mod::Add { attribute, value } => ("add", attribute, vec![value.clone()]),
                Mod::DeleteValue { attribute, value } => {
                    ("delete-value", attribute, vec![value.clone()])
                }
                Mod::DeleteAttribute { attribute } => ("delete-attribute", attribute, Vec::new()),
                Mod::Replace { attribute, values } => ("replace", attribute, values.clone()),
            };
            let mut payload = Entry::new();
            for value in values {
                payload.add_value("jrnval", value);
            }
            self.emit(
                "modify",
                id,
                &[
                    ("jrnop", i.to_string()),
                    ("jrntarget", target.index().to_string()),
                    ("jrnmod", kind.to_owned()),
                    ("jrnattr", attribute.to_owned()),
                ],
                Some(&payload),
            );
        }
        id
    }

    /// Records `begin` plus one `schema` record carrying the complete
    /// evolved schema as DSL text (the write-ahead half of a schema
    /// evolution cutover) and returns the transaction id for
    /// [`commit`](JournalWriter::commit). `local` marks the record as
    /// written by a shard engine running under the localised schema
    /// (required classes stripped on replay); `global` stamps
    /// `(gid, peers)` so a sharded cutover commits all-or-nothing under
    /// the same reconciliation as cross-shard transactions.
    pub fn begin_schema(&mut self, dsl: &str, local: bool, global: Option<(u64, u64)>) -> u64 {
        let id = self.next_tx;
        self.next_tx += 1;
        let mut begin_extra: Vec<(&str, String)> = Vec::new();
        if let Some((gid, peers)) = global {
            begin_extra.push(("jrngid", gid.to_string()));
            begin_extra.push(("jrnpeers", peers.to_string()));
        }
        self.emit("begin", id, &begin_extra, None);
        let mut extra = vec![("jrnop", "0".to_owned()), ("jrnschema", escape_text(dsl))];
        if local {
            extra.push(("jrnlocal", "1".to_owned()));
        }
        self.emit("schema", id, &extra, None);
        id
    }

    /// Records the commit of `tx_id`. Only call after the transaction
    /// was applied and certified legal.
    pub fn commit(&mut self, tx_id: u64) {
        self.emit("commit", tx_id, &[], None);
    }

    /// Drains the text accumulated since the last call — append it to
    /// the journal file to persist.
    pub fn take_pending(&mut self) -> String {
        std::mem::take(&mut self.pending)
    }

    /// Whether there is un-drained record text.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Total journal records ever numbered through this writer's
    /// sequence — for a resumed writer this includes the replayed
    /// history it continues after, so it measures the *journal's*
    /// length, not this process's contribution.
    pub fn records_emitted(&self) -> u64 {
        self.seq
    }

    /// One past the highest transaction id this writer has numbered —
    /// paired with [`records_emitted`](Self::records_emitted) it is the
    /// cursor a checkpoint header must record.
    pub fn next_tx(&self) -> u64 {
        self.next_tx
    }

    /// Record text bytes built by *this* writer (since construction /
    /// resume) — the growth a health check should compare against a
    /// repair threshold.
    pub fn bytes_emitted(&self) -> u64 {
        self.bytes
    }
}

/// Outcome statistics of [`ManagedDirectory::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed successfully.
    pub replayed: usize,
    /// Uncommitted transactions discarded (the crash tail).
    pub discarded: usize,
    /// Torn/corrupt records dropped during parsing.
    pub dropped_records: usize,
    /// Whether the journal showed any sign of truncation.
    pub truncated: bool,
}

impl ManagedDirectory {
    /// Applies `tx` under the write-ahead discipline: `begin` + op
    /// records are staged in `writer` before the mutation, the `commit`
    /// record only after the transaction was applied and certified
    /// legal. Failed or panicked transactions leave an uncommitted tail
    /// that [`recover`](ManagedDirectory::recover) discards.
    pub fn apply_journaled(
        &mut self,
        tx: &Transaction,
        writer: &mut JournalWriter,
    ) -> Result<(), ManagedError> {
        let tx_id = writer.begin(tx);
        let outcome = self.apply(tx);
        if outcome.is_ok() {
            writer.commit(tx_id);
        }
        outcome
    }

    /// Rebuilds a managed directory from `base` (the last durable
    /// snapshot; often empty) plus a journal: committed transactions are
    /// replayed in order through the normal checked apply path,
    /// uncommitted tails are discarded, and the result is re-validated
    /// end to end. Errors with [`ManagedError::Recovery`] if a committed
    /// transaction no longer applies — the journal and base disagree.
    pub fn recover(
        schema: DirectorySchema,
        base: DirectoryInstance,
        journal: &Journal,
    ) -> Result<(Self, RecoveryReport), ManagedError> {
        let mut managed = ManagedDirectory::for_recovery(schema, base)?;
        let mut replayed = 0;
        let mut discarded = 0;
        for jtx in &journal.txs {
            if jtx.committed {
                match (&jtx.schema, &jtx.modify) {
                    (Some(s), _) => s
                        .engine_schema()
                        .map_err(ManagedError::Recovery)
                        .and_then(|schema| managed.set_schema(schema)),
                    (None, Some(m)) => managed.modify_entry(m.target, &m.mods),
                    (None, None) => managed.apply(&jtx.to_transaction()),
                }
                .map_err(|e| {
                    ManagedError::Recovery(format!("replaying committed tx {}: {e}", jtx.id))
                })?;
                replayed += 1;
            } else {
                discarded += 1;
            }
        }
        Ok((
            managed,
            RecoveryReport {
                replayed,
                discarded,
                dropped_records: journal.dropped_records,
                truncated: journal.truncated,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{white_pages_instance, white_pages_schema};

    fn researcher(uid: &str) -> Entry {
        Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", uid)
            .attr("name", uid)
            .build()
    }

    #[test]
    fn journal_roundtrips_a_mixed_transaction() {
        let (dir, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        let unit = tx.insert_under(
            ids.att_labs,
            Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "voice").build(),
        );
        tx.insert_under_new(unit, researcher("alice"));
        tx.delete(ids.suciu);
        let _ = dir;

        let mut writer = JournalWriter::new();
        let id = writer.begin(&tx);
        writer.commit(id);
        let text = writer.take_pending();

        let journal = Journal::parse(&text);
        assert!(!journal.truncated, "{journal:?}");
        assert_eq!(journal.dropped_records, 0);
        assert_eq!(journal.txs.len(), 1);
        assert!(journal.txs[0].committed);
        let replayed = journal.txs[0].to_transaction();
        assert_eq!(replayed.len(), tx.len());
        // The journal text is plain LDIF — the stock parser reads it.
        assert_eq!(parse_ldif(&text).unwrap().len(), 5);
    }

    #[test]
    fn recovery_applies_only_committed_transactions() {
        let schema = white_pages_schema();
        let (dir, ids) = white_pages_instance();
        let base = dir.clone();

        let mut managed = ManagedDirectory::with_instance(schema.clone(), dir).unwrap();
        let mut writer = JournalWriter::new();

        let mut tx1 = Transaction::new();
        tx1.insert_under(ids.databases, researcher("zoe"));
        managed.apply_journaled(&tx1, &mut writer).unwrap();

        // An illegal transaction: journalled write-ahead, never committed.
        let mut tx2 = Transaction::new();
        tx2.insert_under(
            ids.suciu,
            Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "x").build(),
        );
        managed.apply_journaled(&tx2, &mut writer).unwrap_err();

        let mut tx3 = Transaction::new();
        tx3.insert_under(ids.att_labs, researcher("pat"));
        managed.apply_journaled(&tx3, &mut writer).unwrap();

        let text = writer.take_pending();
        let journal = Journal::parse(&text);
        assert_eq!(journal.committed().count(), 2);

        let (recovered, report) =
            ManagedDirectory::recover(schema, base, &journal).expect("recovery succeeds");
        assert_eq!(report.replayed, 2);
        assert_eq!(report.discarded, 1);
        assert!(recovered.is_legal());
        assert_eq!(
            recovered.instance().canonical_bytes(),
            managed.instance().canonical_bytes(),
            "recovered state must equal the live state that applied the committed txs"
        );
    }

    #[test]
    fn truncated_tails_are_discarded_at_every_cut_point() {
        let schema = white_pages_schema();
        let (dir, ids) = white_pages_instance();
        let base = dir.clone();

        let mut managed = ManagedDirectory::with_instance(schema.clone(), dir).unwrap();
        let mut writer = JournalWriter::new();
        let mut committed_states = vec![managed.instance().canonical_bytes()];
        for uid in ["zoe", "pat", "kim"] {
            let mut tx = Transaction::new();
            tx.insert_under(ids.databases, researcher(uid));
            managed.apply_journaled(&tx, &mut writer).unwrap();
            committed_states.push(managed.instance().canonical_bytes());
        }
        let text = writer.take_pending();

        // Cut the journal after every byte prefix boundary that ends a
        // line, plus a few mid-line cuts.
        let mut cut_points: Vec<usize> =
            text.char_indices().filter(|&(_, c)| c == '\n').map(|(i, _)| i + 1).collect();
        cut_points.extend([3, 17, text.len().saturating_sub(4)]);
        cut_points.push(text.len());
        for cut in cut_points {
            let truncated = &text[..cut];
            let journal = Journal::parse(truncated);
            let committed = journal.committed().count();
            // Repairing to the intact prefix yields a clean journal with
            // the same committed history.
            let repaired = Journal::parse(&truncated[..journal.intact_len]);
            assert!(!repaired.truncated, "cut at byte {cut}: repaired journal still torn");
            assert_eq!(repaired.committed().count(), committed);
            let (recovered, report) =
                ManagedDirectory::recover(schema.clone(), base.clone(), &journal)
                    .expect("recovery succeeds on every prefix");
            assert_eq!(report.replayed, committed);
            assert_eq!(
                recovered.instance().canonical_bytes(),
                committed_states[committed],
                "cut at byte {cut}: recovered state must be the committed prefix"
            );
        }
    }

    #[test]
    fn resumed_writer_continues_the_sequence() {
        let (_, ids) = white_pages_instance();
        let mut writer = JournalWriter::new();
        let mut tx = Transaction::new();
        tx.insert_under(ids.databases, researcher("zoe"));
        let id0 = writer.begin(&tx);
        writer.commit(id0);
        let first = writer.take_pending();

        let journal = Journal::parse(&first);
        let mut resumed = JournalWriter::resume_after(&journal);
        let id1 = resumed.begin(&tx);
        assert_eq!(id1, id0 + 1);
        resumed.commit(id1);
        let mut full = first;
        full.push_str(&resumed.take_pending());
        let reparsed = Journal::parse(&full);
        assert!(!reparsed.truncated);
        assert_eq!(reparsed.committed().count(), 2);
    }

    #[test]
    fn shard_qualified_records_roundtrip_with_gid_and_peers() {
        let (_, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.insert_under(ids.databases, researcher("zoe"));

        let mut writer = JournalWriter::new().with_shard(3);
        let id = writer.begin_global(&tx, 41, 2);
        writer.commit(id);
        let text = writer.take_pending();
        assert!(text.contains("op=0,shard=3,cn=journal"));

        let journal = Journal::parse(&text);
        assert!(!journal.truncated, "{journal:?}");
        assert_eq!(journal.shard, Some(3));
        assert_eq!(journal.txs.len(), 1);
        assert_eq!(journal.txs[0].gid, Some(41));
        assert_eq!(journal.txs[0].peers, Some(2));
        assert!(journal.txs[0].committed);
        // The payload entry is untouched by the gid/peers stamps.
        let replayed = journal.txs[0].to_transaction();
        assert_eq!(replayed.len(), 1);

        // A plain writer leaves both stamps off.
        let mut plain = JournalWriter::new();
        let id = plain.begin(&tx);
        plain.commit(id);
        let plain_journal = Journal::parse(&plain.take_pending());
        assert_eq!(plain_journal.shard, None);
        assert_eq!(plain_journal.txs[0].gid, None);
        assert_eq!(plain_journal.txs[0].peers, None);

        // Resuming a shard journal keeps the qualifier.
        let mut resumed = JournalWriter::resume_after(&journal);
        let id = resumed.begin(&tx);
        resumed.commit(id);
        let more = resumed.take_pending();
        assert!(more.contains("op=3,shard=3,cn=journal"));
        let mut full = text;
        full.push_str(&more);
        assert_eq!(Journal::parse(&full).committed().count(), 2);
    }

    #[test]
    fn mixed_shard_records_are_crash_damage() {
        let (_, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.insert_under(ids.databases, researcher("zoe"));
        let mut a = JournalWriter::new().with_shard(0);
        let id = a.begin(&tx);
        a.commit(id);
        let mut text = a.take_pending();
        // A record from another shard's writer, with the right sequence
        // number, is still rejected.
        let mut b =
            JournalWriter { seq: 3, next_tx: 1, pending: String::new(), shard: Some(1), bytes: 0 };
        let id = b.begin(&tx);
        b.commit(id);
        text.push_str(&b.take_pending());
        let journal = Journal::parse(&text);
        assert!(journal.truncated);
        assert_eq!(journal.committed().count(), 1, "the intact shard-0 prefix survives");
    }

    #[test]
    fn shard_journal_paths_are_siblings_of_the_base() {
        let base = std::path::Path::new("/var/data/dir.wal");
        assert_eq!(shard_journal_path(base, 0), std::path::Path::new("/var/data/dir.wal.shard0"));
        assert_eq!(shard_journal_path(base, 7), std::path::Path::new("/var/data/dir.wal.shard7"));
    }

    #[test]
    fn modify_records_roundtrip_and_recover() {
        let schema = white_pages_schema();
        let (dir, ids) = white_pages_instance();
        let base = dir.clone();

        let mut managed = ManagedDirectory::with_instance(schema.clone(), dir).unwrap();
        let mut writer = JournalWriter::new();

        // One tx with several mods, exercising every kind. The delete +
        // re-add of a required attribute is only legal as one atomic
        // batch — recovery must not check intermediate states.
        let mods = [
            Mod::DeleteAttribute { attribute: "name".into() },
            Mod::Add { attribute: "name".into(), value: "suciu, dan".into() },
            Mod::Replace {
                attribute: "title".into(),
                values: vec!["researcher".into(), "member of staff".into()],
            },
            Mod::DeleteValue { attribute: "title".into(), value: "member of staff".into() },
        ];
        let id = writer.begin_modify(ids.suciu, &mods);
        managed.modify_entry(ids.suciu, &mods).unwrap();
        writer.commit(id);

        let text = writer.take_pending();
        let journal = Journal::parse(&text);
        assert!(!journal.truncated, "{journal:?}");
        assert_eq!(journal.txs.len(), 1);
        let jtx = &journal.txs[0];
        assert!(jtx.committed);
        assert_eq!(jtx.first_seq, 0);
        let modify = jtx.modify.as_ref().expect("modify payload");
        assert_eq!(modify.target, ids.suciu);
        assert_eq!(modify.mods, mods);

        let (recovered, report) =
            ManagedDirectory::recover(schema, base, &journal).expect("recovery succeeds");
        assert_eq!(report.replayed, 1);
        assert_eq!(
            recovered.instance().canonical_bytes(),
            managed.instance().canonical_bytes(),
            "modify recovery must reproduce the live state"
        );
    }

    #[test]
    fn torn_modify_tails_are_discarded() {
        let (_, ids) = white_pages_instance();
        let mut writer = JournalWriter::new();
        let mods = [Mod::Add { attribute: "title".into(), value: "x".into() }];
        let id = writer.begin_modify(ids.suciu, &mods);
        writer.commit(id);
        let text = writer.take_pending();
        for cut in (0..text.len()).step_by(7) {
            // No prefix short of the full text has a committed tx.
            assert_eq!(Journal::parse(&text[..cut]).committed().count(), 0, "cut at {cut}");
        }
        assert_eq!(Journal::parse(&text).committed().count(), 1);
    }

    #[test]
    fn journal_tail_may_start_mid_history() {
        let (_, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.insert_under(ids.databases, researcher("zoe"));
        // A writer resumed at seq 40 (as after a checkpoint truncation).
        let mut writer = JournalWriter::resume_at(40, 7);
        let id = writer.begin(&tx);
        assert_eq!(id, 7);
        writer.commit(id);
        let text = writer.take_pending();
        assert!(text.contains("op=40,cn=journal"));

        let journal = Journal::parse(&text);
        assert!(!journal.truncated, "{journal:?}");
        assert_eq!(journal.start_seq, 40);
        assert_eq!(journal.next_seq(), 43);
        assert_eq!(journal.txs[0].first_seq, 40);
        assert!(journal.txs[0].committed);
        // A gap *inside* the file is still damage.
        let mut gapped = text.clone();
        let mut more = JournalWriter::resume_at(99, 8);
        let id = more.begin(&tx);
        more.commit(id);
        gapped.push_str(&more.take_pending());
        assert!(Journal::parse(&gapped).truncated);
        // Resuming from the parse continues at the right sequence.
        let resumed = JournalWriter::resume_after(&journal);
        assert_eq!(resumed.records_emitted(), 43);
    }

    #[test]
    fn stats_on_empty_torn_and_truncated_journals() {
        // Empty journal.
        let stats = Journal::parse("").stats();
        assert_eq!(stats.records, 0);
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.uncommitted, 0);
        assert_eq!(stats.start_seq, 0);
        assert_eq!(stats.next_seq, 0);
        assert!(!stats.truncated);

        // Torn-tail-only journal: nothing intact, everything dropped.
        let stats = Journal::parse("dn: op=0,cn=journal\njrntype: begin\n").stats();
        assert_eq!(stats.records, 0);
        assert_eq!(stats.dropped_records, 1);
        assert!(stats.truncated);
        assert_eq!(stats.intact_len, 0);

        // Freshly truncated journal: a tail starting mid-history.
        let (_, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.insert_under(ids.databases, researcher("zoe"));
        let mut writer = JournalWriter::resume_at(10, 3);
        let id = writer.begin(&tx);
        writer.commit(id);
        let stats = Journal::parse(&writer.take_pending()).stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.start_seq, 10);
        assert_eq!(stats.next_seq, 13);
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.uncommitted, 0);
        assert!(!stats.truncated);
    }

    #[test]
    fn schema_records_roundtrip_and_recover() {
        use crate::checkpoint::schema_hash;
        use crate::evolution::{self, Evolution};
        use crate::schema::dsl::print_schema;

        let schema = white_pages_schema();
        let (dir, ids) = white_pages_instance();
        let base = dir.clone();
        let mut managed = ManagedDirectory::with_instance(schema.clone(), dir).unwrap();
        let mut writer = JournalWriter::new();

        // A normal tx, then a journalled evolution, then a tx that is
        // only legal under the evolved schema.
        let mut tx = Transaction::new();
        tx.insert_under(ids.databases, researcher("zoe"));
        managed.apply_journaled(&tx, &mut writer).unwrap();

        let step =
            Evolution::AllowAttribute { class: "researcher".into(), attribute: "homePage".into() };
        let evolved = evolution::evolve(&schema, &step, managed.instance()).unwrap();
        let dsl = print_schema(&evolved, None);
        let id = writer.begin_schema(&dsl, false, None);
        managed.set_schema(evolved.clone()).unwrap();
        writer.commit(id);

        let mut tx = Transaction::new();
        tx.insert_under(
            ids.databases,
            Entry::builder()
                .classes(["researcher", "person", "top"])
                .attr("uid", "pat")
                .attr("name", "pat")
                .attr("homePage", "https://example.net/~pat")
                .build(),
        );
        managed.apply_journaled(&tx, &mut writer).unwrap();

        let text = writer.take_pending();
        let journal = Journal::parse(&text);
        assert!(!journal.truncated, "{journal:?}");
        assert_eq!(journal.committed().count(), 3);
        let jschema = journal.txs[1].schema.as_ref().expect("schema payload");
        assert_eq!(jschema.dsl, dsl, "multi-line DSL must round-trip through the escape");
        assert!(!jschema.local);
        assert_eq!(schema_hash(&jschema.engine_schema().unwrap()), schema_hash(&evolved));

        // Recovery starting from the *old* schema replays the evolution
        // and converges byte-identically.
        let (recovered, report) =
            ManagedDirectory::recover(schema, base.clone(), &journal).expect("recovery succeeds");
        assert_eq!(report.replayed, 3);
        assert_eq!(schema_hash(recovered.schema()), schema_hash(&evolved));
        assert_eq!(recovered.instance().canonical_bytes(), managed.instance().canonical_bytes());

        // A `local` record strips required classes on replay.
        let mut w = JournalWriter::new();
        let id = w.begin_schema(&dsl, true, Some((9, 4)));
        w.commit(id);
        let j = Journal::parse(&w.take_pending());
        let jtx = &j.txs[0];
        assert_eq!(jtx.gid, Some(9));
        assert_eq!(jtx.peers, Some(4));
        let s = jtx.schema.as_ref().unwrap();
        assert!(s.local);
        assert_eq!(
            schema_hash(&s.engine_schema().unwrap()),
            schema_hash(&evolved.without_required_classes())
        );
        assert_eq!(schema_hash(&s.full_schema().unwrap()), schema_hash(&evolved));
    }

    #[test]
    fn torn_schema_records_are_discarded() {
        let mut writer = JournalWriter::new();
        let id = writer.begin_schema("class person extends top\n  require uid\n", false, None);
        writer.commit(id);
        let text = writer.take_pending();
        // Any cut that damages the final `jrndone` loses the commit
        // (the last two bytes are the closing newlines — trimming those
        // leaves the record intact, as for any journal).
        for cut in (0..text.len().saturating_sub(2)).step_by(5) {
            if !text.is_char_boundary(cut) {
                continue;
            }
            assert_eq!(Journal::parse(&text[..cut]).committed().count(), 0, "cut at {cut}");
        }
        let journal = Journal::parse(&text);
        assert_eq!(journal.committed().count(), 1);
        // A schema record never mixes into an op transaction.
        let (_, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.insert_under(ids.databases, researcher("zoe"));
        let mut mixed = JournalWriter::new();
        let tx_id = mixed.begin(&tx);
        let mut schema_rec = String::new();
        // Hand-build a schema record inside the open op transaction.
        schema_rec.push_str("dn: op=2,cn=journal\n");
        schema_rec.push_str(&format!("jrntype: schema\njrntx: {tx_id}\njrnop: 0\n"));
        schema_rec.push_str("jrnschema: class x extends top\njrndone: 2\n\n");
        let mut text = mixed.take_pending();
        text.push_str(&schema_rec);
        assert!(Journal::parse(&text).truncated, "schema record after ops is damage");
    }

    #[test]
    fn escape_text_roundtrips() {
        for s in [
            "",
            "plain",
            "two\nlines",
            "trailing\n",
            "back\\slash",
            "\\n literal",
            "mix\\\nof\\nall\n\n",
        ] {
            assert_eq!(unescape_text(&escape_text(s)), s, "{s:?}");
        }
        assert!(!escape_text("a\nb").contains('\n'));
    }

    #[test]
    fn garbage_input_is_an_empty_truncated_journal() {
        let journal = Journal::parse("this is not even LDIF\nat all");
        assert!(journal.truncated);
        assert_eq!(journal.txs.len(), 0);
        assert_eq!(journal.dropped_records, 1);
        let journal = Journal::parse("");
        assert!(!journal.truncated);
        assert!(journal.txs.is_empty());
    }
}
