//! Schema-aware query optimization — the paper's stated future work made
//! concrete (§7: "index structures rely upon notions of schema, and query
//! optimization is facilitated using schema. The use of bounding-schemas
//! for these topics is a subject of future study").
//!
//! On instances **legal w.r.t. a bounding-schema**, the schema's elements
//! are theorems about the data, and queries can be rewritten against them:
//!
//! * `ci ⇒ cj` (subclass): `(oc=ci) ∩ (oc=cj) ≡ (oc=ci)` and
//!   `(oc=ci) ∪ (oc=cj) ≡ (oc=cj)` — every `ci` entry is a `cj` entry.
//! * `ci ⇏ cj` (exclusion): `(oc=ci) ∩ (oc=cj) ≡ ∅`.
//! * required `(ci, k, cj)` (including elements *derived* by the §5
//!   closure): `σk((oc=ci), (oc=cj)) ≡ (oc=ci)` — the selection filters
//!   nothing, because legality guarantees every `ci` entry has the
//!   relative.
//! * forbidden `(ci, k, cj)` (derived included): `σc/σd((oc=ci), (oc=cj))
//!   ≡ ∅`, and dually `σp((oc=cj'), (oc=ci'))` / `σa` for the flipped
//!   pair.
//!
//! The rewrites are sound **only** on legal instances — exactly the
//! instances a [`ManagedDirectory`](crate::managed::ManagedDirectory)
//! guarantees. A differential property test over generated legal
//! directories enforces soundness.

use bschema_query::{simplify, Binding, Filter, Query};

use crate::consistency::{ConsistencyChecker, ConsistencyResult, Element};
use crate::schema::{ClassId, DirectorySchema, ForbidKind, RelKind};

/// A query rewriter bound to one schema. Construction runs the §5 closure
/// once so *derived* required/forbidden elements fuel rewrites too.
#[derive(Debug)]
pub struct SchemaAwareOptimizer<'s> {
    schema: &'s DirectorySchema,
    closure: ConsistencyResult<'s>,
}

impl<'s> SchemaAwareOptimizer<'s> {
    /// Builds the optimizer (computes the schema closure).
    pub fn new(schema: &'s DirectorySchema) -> Self {
        SchemaAwareOptimizer { schema, closure: ConsistencyChecker::new(schema).check() }
    }

    /// Rewrites `query` using schema knowledge, then applies the
    /// schema-independent simplifier. The result returns the same entries
    /// as the input on every instance that is legal w.r.t. the schema.
    pub fn optimize(&self, query: Query) -> Query {
        simplify(self.rewrite(query))
    }

    /// Resolves an atomic whole-instance `(objectClass=c)` selection.
    fn as_class_atom(&self, query: &Query) -> Option<ClassId> {
        match query {
            Query::Select { filter, binding: Binding::Whole } => {
                let name = filter.as_object_class()?;
                self.schema.classes().lookup(name)
            }
            _ => None,
        }
    }

    fn derives_required(&self, source: ClassId, kind: RelKind, target: ClassId) -> bool {
        self.closure.derives(&Element::ReqRel(source.into(), kind, target.into()))
    }

    fn derives_forbidden(&self, upper: ClassId, kind: ForbidKind, lower: ClassId) -> bool {
        self.closure.derives(&Element::Forb(upper.into(), kind, lower.into()))
    }

    fn empty() -> Query {
        Query::Select { filter: Filter::False, binding: Binding::Empty }
    }

    fn rewrite(&self, query: Query) -> Query {
        match query {
            leaf @ Query::Select { .. } => leaf,
            Query::Child(a, b) => self.rewrite_hier(RelKind::Child, *a, *b),
            Query::Parent(a, b) => self.rewrite_hier(RelKind::Parent, *a, *b),
            Query::Descendant(a, b) => self.rewrite_hier(RelKind::Descendant, *a, *b),
            Query::Ancestor(a, b) => self.rewrite_hier(RelKind::Ancestor, *a, *b),
            Query::Minus(a, b) => {
                let a = self.rewrite(*a);
                let b = self.rewrite(*b);
                if a == b {
                    Self::empty()
                } else {
                    Query::Minus(Box::new(a), Box::new(b))
                }
            }
            Query::Union(a, b) => {
                let a = self.rewrite(*a);
                let b = self.rewrite(*b);
                if let (Some(ca), Some(cb)) = (self.as_class_atom(&a), self.as_class_atom(&b)) {
                    let classes = self.schema.classes();
                    if classes.is_subclass(ca, cb) {
                        return b; // every ca entry is a cb entry
                    }
                    if classes.is_subclass(cb, ca) {
                        return a;
                    }
                }
                Query::Union(Box::new(a), Box::new(b))
            }
            Query::Intersect(a, b) => {
                let a = self.rewrite(*a);
                let b = self.rewrite(*b);
                if let (Some(ca), Some(cb)) = (self.as_class_atom(&a), self.as_class_atom(&b)) {
                    let classes = self.schema.classes();
                    if classes.is_subclass(ca, cb) {
                        return a;
                    }
                    if classes.is_subclass(cb, ca) {
                        return b;
                    }
                    if classes.are_exclusive(ca, cb) {
                        return Self::empty(); // single inheritance forbids co-occurrence
                    }
                }
                Query::Intersect(Box::new(a), Box::new(b))
            }
        }
    }

    /// Rewrites one hierarchical selection using required / forbidden
    /// schema elements (base or derived).
    fn rewrite_hier(&self, kind: RelKind, a: Query, b: Query) -> Query {
        let a = self.rewrite(a);
        let b = self.rewrite(b);
        if let (Some(ca), Some(cb)) = (self.as_class_atom(&a), self.as_class_atom(&b)) {
            // Required element ⇒ the selection keeps every ca entry.
            if self.derives_required(ca, kind, cb) {
                return a;
            }
            // Forbidden element ⇒ the selection keeps nothing. For the
            // downward kinds the element is (ca ↛ cb); for the upward kinds
            // it is the flipped pair: no cb entry has a ca child/descendant
            // ⇒ no ca entry has a cb parent/ancestor.
            let impossible = match kind {
                RelKind::Child => self.derives_forbidden(ca, ForbidKind::Child, cb),
                RelKind::Descendant => self.derives_forbidden(ca, ForbidKind::Descendant, cb),
                RelKind::Parent => self.derives_forbidden(cb, ForbidKind::Child, ca),
                RelKind::Ancestor => self.derives_forbidden(cb, ForbidKind::Descendant, ca),
            };
            if impossible {
                return Self::empty();
            }
        }
        let (a, b) = (Box::new(a), Box::new(b));
        match kind {
            RelKind::Child => Query::Child(a, b),
            RelKind::Parent => Query::Parent(a, b),
            RelKind::Descendant => Query::Descendant(a, b),
            RelKind::Ancestor => Query::Ancestor(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{white_pages_instance, white_pages_schema};
    use bschema_query::{evaluate, EvalContext};

    fn opt(schema: &DirectorySchema, q: Query) -> Query {
        SchemaAwareOptimizer::new(schema).optimize(q)
    }

    #[test]
    fn subclass_collapses_intersections_and_unions() {
        let schema = white_pages_schema();
        // researcher ⇒ person.
        let q = Query::object_class("researcher").intersect(Query::object_class("person"));
        assert_eq!(opt(&schema, q), Query::object_class("researcher"));
        let q = Query::object_class("researcher").union(Query::object_class("person"));
        assert_eq!(opt(&schema, q), Query::object_class("person"));
    }

    #[test]
    fn exclusion_empties_intersections() {
        let schema = white_pages_schema();
        // person ⇏ orgUnit.
        let q = Query::object_class("person").intersect(Query::object_class("orgUnit"));
        let o = opt(&schema, q);
        assert!(matches!(o, Query::Select { binding: Binding::Empty, .. }), "{o}");
    }

    #[test]
    fn required_elements_make_selections_total() {
        let schema = white_pages_schema();
        // orgGroup →de person ∈ Er: the σd keeps every orgGroup.
        let q = Query::object_class("orgGroup").with_descendant(Query::object_class("person"));
        assert_eq!(opt(&schema, q), Query::object_class("orgGroup"));
        // Derived element: organization ⇒ orgGroup gives organization →de
        // person by source-subclass — the rewrite uses the closure.
        let q = Query::object_class("organization").with_descendant(Query::object_class("person"));
        assert_eq!(opt(&schema, q), Query::object_class("organization"));
        // Hence the Figure 4 legality query for the element is statically
        // empty: σ?(x, x) → ∅.
        let q = Query::object_class("orgGroup")
            .minus(Query::object_class("orgGroup").with_descendant(Query::object_class("person")));
        assert!(matches!(opt(&schema, q), Query::Select { binding: Binding::Empty, .. }));
    }

    #[test]
    fn forbidden_elements_empty_selections() {
        let schema = white_pages_schema();
        // person ↛ch top ∈ Ef: nobody can have a person→child pair.
        let q = Query::object_class("person").with_child(Query::object_class("top"));
        assert!(matches!(opt(&schema, q), Query::Select { binding: Binding::Empty, .. }));
        // Flipped: no entry can have a `top` parent that is a person — i.e.
        // σp((oc=top), (oc=person)) is empty... only when the forbidden
        // element covers it: forbidden (person, ch, top) says person
        // parents are impossible for ANY entry (top covers everyone).
        let q = Query::object_class("top").with_parent(Query::object_class("person"));
        assert!(matches!(opt(&schema, q), Query::Select { binding: Binding::Empty, .. }));
        // Derived through subclasses: researcher ⇒ person, so a researcher
        // child pair is also forbidden.
        let q = Query::object_class("researcher").with_child(Query::object_class("orgUnit"));
        assert!(matches!(opt(&schema, q), Query::Select { binding: Binding::Empty, .. }));
    }

    #[test]
    fn rewrites_preserve_semantics_on_the_legal_instance() {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        let ctx = EvalContext::new(&dir);
        let optimizer = SchemaAwareOptimizer::new(&schema);
        let queries = [
            Query::object_class("researcher").intersect(Query::object_class("person")),
            Query::object_class("person").intersect(Query::object_class("orgUnit")),
            Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            Query::object_class("person").with_child(Query::object_class("top")),
            Query::object_class("orgUnit").with_parent(Query::object_class("orgGroup")),
            Query::object_class("organization").union(Query::object_class("orgGroup")),
            Query::object_class("orgGroup").minus(
                Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            ),
        ];
        for q in queries {
            let o = optimizer.optimize(q.clone());
            assert_eq!(
                evaluate(&ctx, &q),
                evaluate(&ctx, &o),
                "rewrite changed semantics: {q} vs {o}"
            );
            assert!(o.size() <= q.size(), "optimization should not grow queries");
        }
    }

    #[test]
    fn unknown_classes_are_left_alone() {
        let schema = white_pages_schema();
        let q = Query::object_class("martian").with_child(Query::object_class("person"));
        assert_eq!(opt(&schema, q.clone()), q);
    }

    #[test]
    fn delta_bound_atoms_are_not_rewritten() {
        // Binding::Delta selections range over a subset; membership rewrites
        // would be unsound, so they must be skipped.
        let schema = white_pages_schema();
        let q = Query::select_bound(Filter::object_class("researcher"), Binding::Delta)
            .intersect(Query::select_bound(Filter::object_class("person"), Binding::Delta));
        let o = opt(&schema, q.clone());
        // The schema-independent simplifier may merge the two selections
        // into one conjunctive scan, but the subclass rewrite (which would
        // collapse to the researcher atom alone) must NOT fire.
        match o {
            Query::Select { filter: Filter::And(subs), binding: Binding::Delta } => {
                assert_eq!(subs.len(), 2)
            }
            Query::Intersect(..) => {}
            other => panic!("unsound rewrite on Delta-bound atoms: {other}"),
        }
    }
}
