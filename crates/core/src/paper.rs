//! The paper's running example, verbatim: the Figure 1 white-pages instance,
//! the Figure 2 class schema, and the Figure 3 structure schema.
//!
//! Tests, examples and benchmarks all build on these constructors, so the
//! reproduction exercises exactly the artefacts the paper presents.

use bschema_directory::{AttributeRegistry, DirectoryInstance, Entry, EntryId, Rdn};

use crate::schema::{DirectorySchema, ForbidKind, RelKind};

/// The Figure 2 + Figure 3 bounding-schema, with the attribute-schema sketch
/// that follows Definition 2.2 ("attributes name and uid could be required
/// attributes of object class person").
pub fn white_pages_schema() -> DirectorySchema {
    white_pages_schema_builder().build()
}

/// The [`white_pages_schema`] as a still-open builder, for callers that
/// want to extend the paper's schema with extra elements (the benchmark
/// harness adds per-kind relationships this way).
pub fn white_pages_schema_builder() -> crate::schema::SchemaBuilder {
    DirectorySchema::builder()
        .named("corporate white pages")
        // ----- Figure 2: class schema -----
        .core_class("orgGroup", "top")
        .and_then(|b| b.core_class("organization", "orgGroup"))
        .and_then(|b| b.core_class("orgUnit", "orgGroup"))
        .and_then(|b| b.core_class("person", "top"))
        .and_then(|b| b.core_class("staffMember", "person"))
        .and_then(|b| b.core_class("researcher", "person"))
        .and_then(|b| b.auxiliary("online"))
        .and_then(|b| b.auxiliary("manager"))
        .and_then(|b| b.auxiliary("secretary"))
        .and_then(|b| b.auxiliary("consultant"))
        .and_then(|b| b.auxiliary("facultyMember"))
        .and_then(|b| b.allow_aux("orgGroup", "online"))
        .and_then(|b| b.allow_aux("person", "online"))
        .and_then(|b| b.allow_aux("staffMember", "manager"))
        .and_then(|b| b.allow_aux("staffMember", "secretary"))
        .and_then(|b| b.allow_aux("staffMember", "consultant"))
        .and_then(|b| b.allow_aux("researcher", "manager"))
        .and_then(|b| b.allow_aux("researcher", "consultant"))
        .and_then(|b| b.allow_aux("researcher", "facultyMember"))
        // ----- attribute schema (sketch following Def 2.2) -----
        .and_then(|b| b.require_attrs("person", ["name", "uid"]))
        .and_then(|b| b.allow_attrs("person", ["cellularPhone", "telephoneNumber", "title"]))
        .and_then(|b| b.require_attrs("organization", ["o"]))
        .and_then(|b| b.require_attrs("orgUnit", ["ou"]))
        .and_then(|b| b.allow_attrs("orgUnit", ["location"]))
        .and_then(|b| b.allow_attrs("orgGroup", ["description"]))
        .and_then(|b| b.allow_attrs("online", ["mail", "uri"]))
        // ----- Figure 3: structure schema -----
        // Required classes (◇): the diagram marks top, organization, orgUnit
        // and the orgGroup side; we require the ones the text motivates.
        .and_then(|b| b.require_class("organization"))
        .and_then(|b| b.require_class("orgUnit"))
        .and_then(|b| b.require_class("person"))
        // Required relationships.
        .and_then(|b| b.require_rel("orgGroup", RelKind::Descendant, "person"))
        // §4.2's "orgGroup ← orgUnit": every orgUnit has an orgGroup parent.
        .and_then(|b| b.require_rel("orgUnit", RelKind::Parent, "orgGroup"))
        .and_then(|b| b.require_rel("orgUnit", RelKind::Ancestor, "organization"))
        .and_then(|b| b.require_rel("person", RelKind::Parent, "orgGroup"))
        // Forbidden relationships: "a person cannot have any child in a
        // legal directory instance".
        .and_then(|b| b.forbid_rel("person", ForbidKind::Child, "top"))
        .and_then(|b| b.forbid_rel("organization", ForbidKind::Child, "organization"))
        .expect("the paper's schema is well-formed")
}

/// Handles to the six entries of the Figure 1 instance, in document order.
#[derive(Debug, Clone, Copy)]
pub struct Figure1 {
    /// `o=att` — organization, orgGroup, online, top.
    pub att: EntryId,
    /// `ou=attLabs` — orgUnit, orgGroup, top.
    pub att_labs: EntryId,
    /// `uid=armstrong` — staffMember, person, top.
    pub armstrong: EntryId,
    /// `ou=databases` — orgUnit, orgGroup, top.
    pub databases: EntryId,
    /// `uid=laks` — researcher, facultyMember, person, online, top.
    pub laks: EntryId,
    /// `uid=suciu` — researcher, person, top.
    pub suciu: EntryId,
}

/// Builds the Figure 1 corporate white-pages instance (prepared).
pub fn white_pages_instance() -> (DirectoryInstance, Figure1) {
    let mut d = DirectoryInstance::new(AttributeRegistry::white_pages());
    let att = d
        .add_named_root(
            Rdn::single("o", "att"),
            Entry::builder()
                .classes(["organization", "orgGroup", "online", "top"])
                .attr("o", "att")
                .attr("uri", "http://www.att.com/")
                .build(),
        )
        .expect("fresh instance");
    let att_labs = d
        .add_named_child(
            att,
            Rdn::single("ou", "attLabs"),
            Entry::builder()
                .classes(["orgUnit", "orgGroup", "top"])
                .attr("ou", "attLabs")
                .attr("location", "FP")
                .build(),
        )
        .expect("att exists");
    let armstrong = d
        .add_named_child(
            att_labs,
            Rdn::single("uid", "armstrong"),
            Entry::builder()
                .classes(["staffMember", "person", "top"])
                .attr("uid", "armstrong")
                .attr("name", "m armstrong")
                .build(),
        )
        .expect("attLabs exists");
    let databases = d
        .add_named_child(
            att_labs,
            Rdn::single("ou", "databases"),
            Entry::builder()
                .classes(["orgUnit", "orgGroup", "top"])
                .attr("ou", "databases")
                .build(),
        )
        .expect("attLabs exists");
    let laks = d
        .add_named_child(
            databases,
            Rdn::single("uid", "laks"),
            Entry::builder()
                .classes(["researcher", "facultyMember", "person", "online", "top"])
                .attr("uid", "laks")
                .attr("name", "laks lakshmanan")
                .attr("mail", "laks@cs.concordia.ca")
                .attr("mail", "laks@research.att.com")
                .build(),
        )
        .expect("databases exists");
    let suciu = d
        .add_named_child(
            databases,
            Rdn::single("uid", "suciu"),
            Entry::builder()
                .classes(["researcher", "person", "top"])
                .attr("uid", "suciu")
                .attr("name", "dan suciu")
                .build(),
        )
        .expect("databases exists");
    d.prepare();
    (d, Figure1 { att, att_labs, armstrong, databases, laks, suciu })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_figure2() {
        let s = white_pages_schema();
        let c = s.classes();
        assert!(c.is_subclass(c.resolve("researcher").unwrap(), c.resolve("person").unwrap()));
        assert!(c.are_exclusive(c.resolve("orgUnit").unwrap(), c.resolve("person").unwrap()));
        assert!(
            c.aux_allowed(c.resolve("researcher").unwrap(), c.resolve("facultyMember").unwrap())
        );
    }

    #[test]
    fn instance_matches_figure1() {
        let (d, ids) = white_pages_instance();
        assert_eq!(d.len(), 6);
        assert_eq!(d.forest().parent(ids.laks), Some(ids.databases));
        assert_eq!(d.forest().parent(ids.databases), Some(ids.att_labs));
        let laks = d.entry(ids.laks).unwrap();
        assert_eq!(laks.values("mail").len(), 2);
        assert!(laks.has_class("facultyMember"));
        assert_eq!(d.dn(ids.suciu).unwrap().to_string(), "uid=suciu,ou=databases,ou=attLabs,o=att");
    }
}
