//! # bschema-core
//!
//! Bounding-schemas for LDAP directories — a full reproduction of
//! *On Bounding-Schemas for LDAP Directories* (Amer-Yahia, Jagadish,
//! Lakshmanan & Srivastava, EDBT 2000).
//!
//! A **bounding-schema** specifies lower and upper bounds on both the
//! *content* of directory entries (required / allowed attributes and object
//! classes, Definitions 2.2–2.3) and the *structure* of the directory forest
//! (required / forbidden hierarchical relationships, Definition 2.4). This
//! crate provides the paper's three algorithm families plus a high-level
//! always-legal directory API:
//!
//! * [`schema`] — the schema model `S = (A, H, S)` with builder and text DSL;
//! * [`legality`] — Theorem 3.1 legality testing via the Figure 4 reduction
//!   to hierarchical selection queries, plus the naive quadratic baseline;
//! * [`updates`] — §4 update transactions, Theorem 4.1 subtree
//!   normalisation, and the Figure 5 incremental Δ-query checker;
//! * [`consistency`] — the §5 inference system (Figures 6–7), fixpoint
//!   closure with derivation traces, Theorem 5.2 consistency decision, and a
//!   witness-instance constructor;
//! * [`managed`] — [`ManagedDirectory`], a directory that enforces legality
//!   on every update;
//! * [`paper`] — the paper's Figures 1–3 as ready-made constructors.
//!
//! ## Quick start
//!
//! ```
//! use bschema_core::paper::{white_pages_instance, white_pages_schema};
//! use bschema_core::legality::LegalityChecker;
//! use bschema_core::consistency::ConsistencyChecker;
//!
//! let schema = white_pages_schema();
//!
//! // Is the schema satisfiable at all? (§5)
//! assert!(ConsistencyChecker::new(&schema).check().is_consistent());
//!
//! // Is the Figure 1 instance legal? (§3)
//! let (dir, _) = white_pages_instance();
//! let report = LegalityChecker::new(&schema).check(&dir);
//! assert!(report.is_legal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod consistency;
pub mod discover;
pub mod evolution;
pub mod journal;
pub mod legality;
pub mod managed;
pub mod paper;
pub mod qopt;
pub mod schema;
pub mod sharded;
pub mod updates;

pub use checkpoint::{recover_with_checkpoint, Checkpoint, CheckpointError, CheckpointRecovery};
pub use consistency::ConsistencyChecker;
pub use discover::{suggest_schema, DiscoveryOptions};
pub use evolution::{evolve, Evolution, EvolutionError};
pub use journal::{Journal, JournalModify, JournalStats, JournalTx, JournalWriter, RecoveryReport};
pub use legality::{LegalityChecker, LegalityOptions, LegalityReport, Violation};
pub use managed::ManagedDirectory;
pub use qopt::SchemaAwareOptimizer;
pub use schema::{DirectorySchema, ForbidKind, RelKind, SchemaBuilder, SchemaError};
pub use sharded::{ShardedDirectory, ShardedError, ShardedTxOutcome};
pub use updates::{Transaction, TxOp};
