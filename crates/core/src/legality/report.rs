//! Violation types and the legality report.
//!
//! The checker does not just answer yes/no: every way an instance can fall
//! outside the bounding-schema's bounds (Definition 2.7) is reported as a
//! typed [`Violation`] pinpointing the entry and schema element involved.

use std::fmt;

use bschema_directory::EntryId;

use crate::schema::{ForbidKind, RelKind};

/// One way an instance violates a bounding-schema.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Violation {
    // ----- attribute schema (Definition 2.7, first block) -----
    /// An entry belongs to a class but lacks one of its required attributes.
    MissingRequiredAttribute {
        /// The offending entry.
        entry: EntryId,
        /// The class imposing the requirement.
        class: String,
        /// The missing attribute (lowercase key).
        attribute: String,
    },
    /// An entry holds an attribute no class it belongs to allows.
    AttributeNotAllowed {
        /// The offending entry.
        entry: EntryId,
        /// The disallowed attribute (lowercase key).
        attribute: String,
    },

    // ----- class schema (Definition 2.7, second block) -----
    /// An entry belongs to a class the schema does not mention.
    UnknownClass {
        /// The offending entry.
        entry: EntryId,
        /// The unknown class name.
        class: String,
    },
    /// An entry has no core object class.
    NoCoreClass {
        /// The offending entry.
        entry: EntryId,
    },
    /// An entry belongs to a core class but not to one of its superclasses
    /// (violating `ci ⇒ cj`).
    MissingSuperclass {
        /// The offending entry.
        entry: EntryId,
        /// The class it belongs to.
        class: String,
        /// The superclass it is missing.
        superclass: String,
    },
    /// An entry belongs to two incomparable core classes (violating
    /// `ci ⇏ cj` / single inheritance).
    ExclusiveClasses {
        /// The offending entry.
        entry: EntryId,
        /// One core class.
        first: String,
        /// The other, incomparable, core class.
        second: String,
    },
    /// An entry carries an auxiliary class no core class of it allows.
    AuxiliaryNotAllowed {
        /// The offending entry.
        entry: EntryId,
        /// The disallowed auxiliary class.
        auxiliary: String,
    },

    // ----- structure schema (Definition 2.7, third block) -----
    /// `◇class ∈ Cr` but no entry belongs to `class`.
    MissingRequiredClass {
        /// The required-but-absent class.
        class: String,
    },
    /// An entry of `source` lacks the required `kind`-related `target` entry.
    RequiredRelViolation {
        /// The witness entry (member of `source` with no qualifying
        /// relative).
        entry: EntryId,
        /// `ci` of the violated element.
        source: String,
        /// The relationship direction.
        kind: RelKind,
        /// `cj` of the violated element.
        target: String,
    },
    /// An entry of `upper` has a forbidden `kind`-related `lower` entry.
    ForbiddenRelViolation {
        /// The witness entry (member of `upper` with a forbidden relative).
        entry: EntryId,
        /// `ci` of the violated element.
        upper: String,
        /// Child or descendant.
        kind: ForbidKind,
        /// `cj` of the violated element.
        lower: String,
    },

    /// Two entries share a value for a directory-wide key attribute
    /// (§6.1 keys).
    DuplicateKey {
        /// The later (document-order) entry holding the duplicate.
        entry: EntryId,
        /// The key attribute.
        attribute: String,
        /// The clashing value (as held by `entry`).
        value: String,
        /// The earlier entry holding the same value.
        first: EntryId,
    },

    // ----- value level (Definition 2.1(3a); optional strict mode) -----
    /// A value fell outside its attribute's syntax domain, or a
    /// single-valued attribute held several values.
    ValueViolation {
        /// The offending entry.
        entry: EntryId,
        /// Rendered description.
        message: String,
    },
}

impl Violation {
    /// The entry this violation is anchored at, if entry-specific.
    pub fn entry(&self) -> Option<EntryId> {
        match self {
            Violation::MissingRequiredAttribute { entry, .. }
            | Violation::AttributeNotAllowed { entry, .. }
            | Violation::UnknownClass { entry, .. }
            | Violation::NoCoreClass { entry }
            | Violation::MissingSuperclass { entry, .. }
            | Violation::ExclusiveClasses { entry, .. }
            | Violation::AuxiliaryNotAllowed { entry, .. }
            | Violation::RequiredRelViolation { entry, .. }
            | Violation::ForbiddenRelViolation { entry, .. }
            | Violation::DuplicateKey { entry, .. }
            | Violation::ValueViolation { entry, .. } => Some(*entry),
            Violation::MissingRequiredClass { .. } => None,
        }
    }

    /// True for violations of the content schema (attribute + class),
    /// false for structure-schema violations.
    pub fn is_content(&self) -> bool {
        !matches!(
            self,
            Violation::MissingRequiredClass { .. }
                | Violation::RequiredRelViolation { .. }
                | Violation::ForbiddenRelViolation { .. }
        )
    }

    /// A stable kebab-case label for the violation kind, used as the
    /// metrics label in `managed.rollback_violation.<kind>` counters.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Violation::MissingRequiredAttribute { .. } => "missing-required-attribute",
            Violation::AttributeNotAllowed { .. } => "attribute-not-allowed",
            Violation::UnknownClass { .. } => "unknown-class",
            Violation::NoCoreClass { .. } => "no-core-class",
            Violation::MissingSuperclass { .. } => "missing-superclass",
            Violation::ExclusiveClasses { .. } => "exclusive-classes",
            Violation::AuxiliaryNotAllowed { .. } => "auxiliary-not-allowed",
            Violation::MissingRequiredClass { .. } => "missing-required-class",
            Violation::RequiredRelViolation { .. } => "required-relationship",
            Violation::ForbiddenRelViolation { .. } => "forbidden-relationship",
            Violation::DuplicateKey { .. } => "duplicate-key",
            Violation::ValueViolation { .. } => "value",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingRequiredAttribute { entry, class, attribute } => write!(
                f,
                "entry {entry}: class {class:?} requires attribute {attribute:?}, which is absent"
            ),
            Violation::AttributeNotAllowed { entry, attribute } => write!(
                f,
                "entry {entry}: attribute {attribute:?} is not allowed by any of the entry's classes"
            ),
            Violation::UnknownClass { entry, class } => {
                write!(f, "entry {entry}: object class {class:?} is not in the schema")
            }
            Violation::NoCoreClass { entry } => {
                write!(f, "entry {entry}: no core object class")
            }
            Violation::MissingSuperclass { entry, class, superclass } => write!(
                f,
                "entry {entry}: belongs to {class:?} but not to its superclass {superclass:?}"
            ),
            Violation::ExclusiveClasses { entry, first, second } => write!(
                f,
                "entry {entry}: belongs to incomparable core classes {first:?} and {second:?}"
            ),
            Violation::AuxiliaryNotAllowed { entry, auxiliary } => write!(
                f,
                "entry {entry}: auxiliary class {auxiliary:?} is not allowed by any core class of the entry"
            ),
            Violation::MissingRequiredClass { class } => {
                write!(f, "no entry belongs to required class {class:?} (◇{class})")
            }
            Violation::RequiredRelViolation { entry, source, kind, target } => write!(
                f,
                "entry {entry}: belongs to {source:?} but has no {target:?} {}",
                match kind {
                    RelKind::Child => "child",
                    RelKind::Descendant => "descendant",
                    RelKind::Parent => "parent",
                    RelKind::Ancestor => "ancestor",
                }
            ),
            Violation::ForbiddenRelViolation { entry, upper, kind, lower } => write!(
                f,
                "entry {entry}: belongs to {upper:?} and has a forbidden {lower:?} {}",
                match kind {
                    ForbidKind::Child => "child",
                    ForbidKind::Descendant => "descendant",
                }
            ),
            Violation::DuplicateKey { entry, attribute, value, first } => write!(
                f,
                "entry {entry}: key attribute {attribute:?} value {value:?} already held by entry {first}"
            ),
            Violation::ValueViolation { entry, message } => {
                write!(f, "entry {entry}: {message}")
            }
        }
    }
}

/// Outcome of a legality check: the (possibly empty) list of violations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LegalityReport {
    violations: Vec<Violation>,
}

impl LegalityReport {
    /// An empty (legal) report.
    pub fn legal() -> Self {
        Self::default()
    }

    /// Builds a report from collected violations.
    pub fn from_violations(violations: Vec<Violation>) -> Self {
        LegalityReport { violations }
    }

    /// Definition 2.7: the instance is legal iff nothing was violated.
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations found.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True when no violations were found.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Appends a violation.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: LegalityReport) {
        self.violations.extend(other.violations);
    }

    /// Sorts violations for deterministic comparison in tests.
    pub fn normalized(mut self) -> Self {
        self.violations.sort();
        self.violations.dedup();
        self
    }
}

impl fmt::Display for LegalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_legal() {
            return write!(f, "legal (no violations)");
        }
        writeln!(f, "ILLEGAL: {} violation(s)", self.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl IntoIterator for LegalityReport {
    type Item = Violation;
    type IntoIter = std::vec::IntoIter<Violation>;
    fn into_iter(self) -> Self::IntoIter {
        self.violations.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_basics() {
        let mut r = LegalityReport::legal();
        assert!(r.is_legal());
        assert_eq!(r.to_string(), "legal (no violations)");
        r.push(Violation::NoCoreClass { entry: EntryId::from_index(3) });
        assert!(!r.is_legal());
        assert_eq!(r.len(), 1);
        assert!(r.to_string().contains("no core object class"));
        assert_eq!(r.violations()[0].entry(), Some(EntryId::from_index(3)));
    }

    #[test]
    fn content_vs_structure_classification() {
        let content =
            Violation::AttributeNotAllowed { entry: EntryId::from_index(0), attribute: "x".into() };
        let structure = Violation::MissingRequiredClass { class: "person".into() };
        assert!(content.is_content());
        assert!(!structure.is_content());
        assert_eq!(structure.entry(), None);
    }

    #[test]
    fn normalized_dedups() {
        let v = Violation::NoCoreClass { entry: EntryId::from_index(1) };
        let r = LegalityReport::from_violations(vec![v.clone(), v.clone()]).normalized();
        assert_eq!(r.len(), 1);
    }
}
