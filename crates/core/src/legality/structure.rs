//! Structure-schema legality via the Figure 4 query reduction (§3.2).
//!
//! Each element of `(Cr, Er, Ef)` is translated to a hierarchical selection
//! query ([`super::translate`]) and evaluated with the interval-merge
//! engine; the instance is legal iff every "must be empty" query is empty
//! and every `◇` query is non-empty. With sorted entries each query runs in
//! O(|Q|·|D|), so the whole structure check is O(|S|·|D|) — the linear half
//! of Theorem 3.1.

use bschema_directory::DirectoryInstance;
use bschema_query::{evaluate, evaluate_batch, EvalContext, Query};

use super::report::Violation;
use super::translate;
use crate::schema::DirectorySchema;

/// Checks the instance against the structure schema, appending violations
/// (with one witness violation per offending entry).
pub fn check_instance(
    schema: &DirectorySchema,
    dir: &DirectoryInstance,
    probe: &dyn bschema_obs::Probe,
    out: &mut Vec<Violation>,
) {
    let ctx = EvalContext::new(dir).with_probe(probe);
    let classes = schema.classes();
    let structure = schema.structure();
    if probe.enabled() {
        probe.add("legality.structure_queries", structure.len() as u64);
    }

    for class in structure.required_classes() {
        let q = translate::required_class_query(schema, class);
        if evaluate(&ctx, &q).is_empty() {
            out.push(Violation::MissingRequiredClass { class: classes.name(class).to_owned() });
        }
    }

    for rel in structure.required_rels() {
        let q = translate::required_rel_query(schema, rel);
        for witness in evaluate(&ctx, &q) {
            out.push(Violation::RequiredRelViolation {
                entry: witness,
                source: classes.name(rel.source).to_owned(),
                kind: rel.kind,
                target: classes.name(rel.target).to_owned(),
            });
        }
    }

    for rel in structure.forbidden_rels() {
        let q = translate::forbidden_rel_query(schema, rel);
        for witness in evaluate(&ctx, &q) {
            out.push(Violation::ForbiddenRelViolation {
                entry: witness,
                upper: classes.name(rel.upper).to_owned(),
                kind: rel.kind,
                lower: classes.name(rel.lower).to_owned(),
            });
        }
    }
}

/// How a structure-schema element turns its query's witnesses into
/// violations.
enum StructureJob<'s> {
    RequiredClass(crate::schema::ClassId),
    RequiredRel(&'s crate::schema::RequiredRel),
    ForbiddenRel(&'s crate::schema::ForbiddenRel),
}

/// Like [`check_instance`] but evaluating the independent Figure 4
/// queries on `threads` workers over one shared evaluation context (and
/// the one shared sorted-entry index behind it). Violations come out in
/// the same order as [`check_instance`]: witnesses are collected per
/// query and concatenated in schema-element order.
pub fn check_instance_parallel(
    schema: &DirectorySchema,
    dir: &DirectoryInstance,
    threads: usize,
    probe: &dyn bschema_obs::Probe,
    out: &mut Vec<Violation>,
) {
    let ctx = EvalContext::new(dir).with_probe(probe);
    let classes = schema.classes();
    let structure = schema.structure();
    if probe.enabled() {
        probe.add("legality.structure_queries", structure.len() as u64);
    }

    let mut jobs: Vec<StructureJob<'_>> = Vec::with_capacity(structure.len());
    let mut queries: Vec<Query> = Vec::with_capacity(structure.len());
    for class in structure.required_classes() {
        jobs.push(StructureJob::RequiredClass(class));
        queries.push(translate::required_class_query(schema, class));
    }
    for rel in structure.required_rels() {
        jobs.push(StructureJob::RequiredRel(rel));
        queries.push(translate::required_rel_query(schema, rel));
    }
    for rel in structure.forbidden_rels() {
        jobs.push(StructureJob::ForbiddenRel(rel));
        queries.push(translate::forbidden_rel_query(schema, rel));
    }

    for (job, witnesses) in jobs.iter().zip(evaluate_batch(&ctx, &queries, threads)) {
        match *job {
            StructureJob::RequiredClass(class) => {
                if witnesses.is_empty() {
                    out.push(Violation::MissingRequiredClass {
                        class: classes.name(class).to_owned(),
                    });
                }
            }
            StructureJob::RequiredRel(rel) => {
                for witness in witnesses {
                    out.push(Violation::RequiredRelViolation {
                        entry: witness,
                        source: classes.name(rel.source).to_owned(),
                        kind: rel.kind,
                        target: classes.name(rel.target).to_owned(),
                    });
                }
            }
            StructureJob::ForbiddenRel(rel) => {
                for witness in witnesses {
                    out.push(Violation::ForbiddenRelViolation {
                        entry: witness,
                        upper: classes.name(rel.upper).to_owned(),
                        kind: rel.kind,
                        lower: classes.name(rel.lower).to_owned(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{white_pages_instance, white_pages_schema};
    use bschema_directory::Entry;

    #[test]
    fn figure1_structure_is_legal() {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        let mut out = Vec::new();
        check_instance(&schema, &dir, bschema_obs::noop(), &mut out);
        assert_eq!(out, [], "Figure 1 must satisfy the Figure 3 structure schema");
    }

    #[test]
    fn person_with_child_is_caught() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        // §4.2's illegal update: an orgUnit under suciu.
        let bad = dir
            .add_child_entry(
                ids.suciu,
                Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "oops").build(),
            )
            .unwrap();
        dir.prepare();
        let mut out = Vec::new();
        check_instance(&schema, &dir, bschema_obs::noop(), &mut out);
        // person ↛ch top violated at suciu; orgUnit →pa orgGroup violated at
        // the new entry; orgGroup ⇒⇒de person violated at the new entry (it
        // has no person descendant); orgUnit →an organization is satisfied
        // (att is an ancestor).
        assert!(out.iter().any(|v| matches!(
            v,
            Violation::ForbiddenRelViolation { entry, upper, .. }
                if *entry == ids.suciu && upper == "person"
        )));
        assert!(out.iter().any(|v| matches!(
            v,
            Violation::RequiredRelViolation { entry, source, .. }
                if *entry == bad && source == "orgUnit"
        )));
        assert!(out.iter().any(|v| matches!(
            v,
            Violation::RequiredRelViolation { entry, source, .. }
                if *entry == bad && source == "orgGroup"
        )));
    }

    #[test]
    fn missing_required_class_is_caught() {
        let schema = white_pages_schema();
        // An instance with only the organization: ◇person and ◇orgUnit fail.
        let mut dir = DirectoryInstance::white_pages();
        dir.add_root_entry(
            Entry::builder().classes(["organization", "orgGroup", "top"]).attr("o", "att").build(),
        );
        dir.prepare();
        let mut out = Vec::new();
        check_instance(&schema, &dir, bschema_obs::noop(), &mut out);
        let missing: Vec<&str> = out
            .iter()
            .filter_map(|v| match v {
                Violation::MissingRequiredClass { class } => Some(class.as_str()),
                _ => None,
            })
            .collect();
        assert!(missing.contains(&"person"));
        assert!(missing.contains(&"orgUnit"));
        assert!(!missing.contains(&"organization"));
    }

    #[test]
    fn empty_instance_fails_only_required_classes() {
        let schema = white_pages_schema();
        let mut dir = DirectoryInstance::white_pages();
        dir.prepare();
        let mut out = Vec::new();
        check_instance(&schema, &dir, bschema_obs::noop(), &mut out);
        assert_eq!(out.len(), 3); // ◇organization, ◇orgUnit, ◇person
        assert!(out.iter().all(|v| matches!(v, Violation::MissingRequiredClass { .. })));
    }
}
