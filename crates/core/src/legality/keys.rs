//! Directory-wide key (uniqueness) checking — the §6.1 key discussion:
//! "any notion of a key in an LDAP directory must be unique across all
//! entries in the directory instance, not just within a single object
//! class."
//!
//! Values are compared under the attribute's matching rule (from the
//! instance's registry), so `Laks` and `laks` clash for a case-ignore
//! syntax.

use std::collections::HashMap;

use bschema_directory::{DirectoryInstance, EntryId};

use super::report::Violation;
use crate::schema::DirectorySchema;

/// Checks every declared key attribute, appending one violation per entry
/// that shares a value with an earlier (document-order) entry.
pub fn check_instance(schema: &DirectorySchema, dir: &DirectoryInstance, out: &mut Vec<Violation>) {
    for attr in schema.attributes().unique_attributes() {
        let syntax = dir.registry().syntax_of(attr);
        let holders = dir.index().entries_with_attribute(attr);
        let mut seen: HashMap<String, EntryId> = HashMap::with_capacity(holders.len());
        for &id in holders {
            let entry = dir.entry(id).expect("indexed entries are live");
            for value in entry.values(attr) {
                let normalized = syntax.normalize(value);
                match seen.get(&normalized) {
                    Some(&first) if first != id => {
                        out.push(Violation::DuplicateKey {
                            entry: id,
                            attribute: attr.to_owned(),
                            value: value.clone(),
                            first,
                        });
                    }
                    Some(_) => {}
                    None => {
                        seen.insert(normalized, id);
                    }
                }
            }
        }
    }
}

/// Incremental variant for a subtree insertion: only the new entries'
/// values need checking — against each other and against the rest of the
/// instance. `dir` is post-insert and prepared.
pub fn check_insertion(
    schema: &DirectorySchema,
    dir: &DirectoryInstance,
    delta_root: EntryId,
    out: &mut Vec<Violation>,
) {
    let forest = dir.forest();
    let in_delta = |id: EntryId| id == delta_root || forest.interval_is_ancestor(delta_root, id);
    for attr in schema.attributes().unique_attributes() {
        let syntax = dir.registry().syntax_of(attr);
        // Values held by new entries.
        let mut new_values: HashMap<String, EntryId> = HashMap::new();
        for id in std::iter::once(delta_root).chain(forest.descendants(delta_root)) {
            let Some(entry) = dir.entry(id) else { continue };
            for value in entry.values(attr) {
                let normalized = syntax.normalize(value);
                if let Some(&first) = new_values.get(&normalized) {
                    if first != id {
                        out.push(Violation::DuplicateKey {
                            entry: id,
                            attribute: attr.to_owned(),
                            value: value.clone(),
                            first,
                        });
                    }
                } else {
                    new_values.insert(normalized, id);
                }
            }
        }
        if new_values.is_empty() {
            continue;
        }
        // Clashes with pre-existing entries (D was legal, so only
        // new-vs-old pairs are possible beyond the new-vs-new above).
        for &id in dir.index().entries_with_attribute(attr) {
            if in_delta(id) {
                continue;
            }
            let entry = dir.entry(id).expect("indexed entries are live");
            for value in entry.values(attr) {
                if let Some(&new_entry) = new_values.get(&syntax.normalize(value)) {
                    out.push(Violation::DuplicateKey {
                        entry: new_entry,
                        attribute: attr.to_owned(),
                        value: value.clone(),
                        first: id,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DirectorySchema;
    use bschema_directory::Entry;

    fn schema() -> DirectorySchema {
        DirectorySchema::builder()
            .core_class("person", "top")
            .map(|b| b.unique_attrs(["uid"]))
            .map(|b| b.build())
            .unwrap()
    }

    fn person(uid: &str) -> Entry {
        Entry::builder().classes(["person", "top"]).attr("uid", uid).build()
    }

    #[test]
    fn duplicate_keys_are_found() {
        let schema = schema();
        let mut dir = DirectoryInstance::white_pages();
        let root = dir.add_root_entry(person("laks"));
        dir.add_child_entry(root, person("suciu")).unwrap();
        // Case-insensitive clash: uid is a directoryString.
        let dup = dir.add_child_entry(root, person("LAKS")).unwrap();
        dir.prepare();
        let mut out = Vec::new();
        check_instance(&schema, &dir, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            Violation::DuplicateKey { entry, attribute, first, .. }
                if *entry == dup && attribute == "uid" && *first == root
        ));
    }

    #[test]
    fn distinct_keys_pass() {
        let schema = schema();
        let mut dir = DirectoryInstance::white_pages();
        let root = dir.add_root_entry(person("a"));
        dir.add_child_entry(root, person("b")).unwrap();
        dir.prepare();
        let mut out = Vec::new();
        check_instance(&schema, &dir, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn incremental_matches_full() {
        let schema = schema();
        let mut dir = DirectoryInstance::white_pages();
        let root = dir.add_root_entry(person("a"));
        dir.add_child_entry(root, person("b")).unwrap();
        // Insert a subtree with one internal duplicate and one clash with
        // the existing data.
        let new = dir.add_child_entry(root, person("a")).unwrap(); // clashes with root
        dir.add_child_entry(new, person("c")).unwrap();
        dir.add_child_entry(new, person("c")).unwrap(); // internal duplicate
        dir.prepare();

        let mut full = Vec::new();
        check_instance(&schema, &dir, &mut full);
        let mut incremental = Vec::new();
        check_insertion(&schema, &dir, new, &mut incremental);
        assert_eq!(full.len(), 2);
        assert_eq!(incremental.len(), full.len());
    }

    #[test]
    fn multivalued_keys_within_one_entry_do_not_self_clash() {
        let schema = schema();
        let mut dir = DirectoryInstance::white_pages();
        let mut e = Entry::builder().classes(["person", "top"]).build();
        e.add_value("uid", "x");
        e.add_value("uid", "X"); // same normalized value, same entry
        dir.add_root_entry(e);
        dir.prepare();
        let mut out = Vec::new();
        check_instance(&schema, &dir, &mut out);
        assert!(out.is_empty(), "an entry does not clash with itself: {out:?}");
    }
}
