//! Content-schema legality: the per-entry checks of Definition 2.7
//! (attribute schema + class schema blocks), §3.1.
//!
//! These checks are local to each entry — the key property §4.2 exploits for
//! incremental checking ("legality w.r.t. the content schema can be tested
//! by independently checking each entry in the instance").

use std::collections::{HashMap, HashSet};

use bschema_directory::{DirectoryInstance, Entry, EntryId, OBJECT_CLASS};

use super::report::Violation;
use crate::schema::{ClassId, DirectorySchema};

/// Checks one entry against the content schema, appending violations.
///
/// Runs in `O(|class(e)| · depth(H) + |class(e)| · max|Aux| + |val(e)| +
/// Σ_c |α(c)|)` — the §3.1 per-entry bound.
pub fn check_entry(
    schema: &DirectorySchema,
    entry_id: EntryId,
    entry: &Entry,
    out: &mut Vec<Violation>,
) {
    let classes = schema.classes();

    // Resolve the entry's classes; unknown ones are violations
    // ("only object classes mentioned in the schema may be present").
    let mut known: Vec<ClassId> = Vec::with_capacity(entry.class_count());
    for name in entry.classes() {
        match classes.lookup(name) {
            Some(id) => known.push(id),
            None => out.push(Violation::UnknownClass { entry: entry_id, class: name.clone() }),
        }
    }

    let cores: Vec<ClassId> = known.iter().copied().filter(|&c| classes.is_core(c)).collect();

    // "class(e) must contain at least one (core) object class from Cc."
    if cores.is_empty() {
        out.push(Violation::NoCoreClass { entry: entry_id });
    } else {
        // Single inheritance (the ⇒ / ⇏ elements): the core classes must be
        // exactly a chain. Take the deepest; everything else must lie on its
        // superclass chain, and the whole chain must be present.
        let deepest = *cores.iter().max_by_key(|&&c| classes.depth(c)).expect("cores is non-empty");
        for &c in &cores {
            if !classes.is_subclass(deepest, c) {
                out.push(Violation::ExclusiveClasses {
                    entry: entry_id,
                    first: classes.name(deepest).to_owned(),
                    second: classes.name(c).to_owned(),
                });
            }
        }
        for &sup in classes.superclass_chain(deepest).iter().skip(1) {
            if !cores.contains(&sup) {
                out.push(Violation::MissingSuperclass {
                    entry: entry_id,
                    class: classes.name(deepest).to_owned(),
                    superclass: classes.name(sup).to_owned(),
                });
            }
        }
    }

    // Auxiliary admissibility: "only allowed auxiliary classes may be
    // present" — each auxiliary must be in Aux(c) of some core class of e.
    for &aux in known.iter().filter(|&&c| !classes.is_core(c)) {
        let admitted = cores.iter().any(|&core| classes.aux_allowed(core, aux));
        if !admitted {
            out.push(Violation::AuxiliaryNotAllowed {
                entry: entry_id,
                auxiliary: classes.name(aux).to_owned(),
            });
        }
    }

    // Attribute schema, lower bound: every required attribute of every class
    // the entry belongs to must be present.
    let attrs = schema.attributes();
    for &c in &known {
        for required in attrs.required(c) {
            if !entry.has_attribute(required) {
                out.push(Violation::MissingRequiredAttribute {
                    entry: entry_id,
                    class: classes.name(c).to_owned(),
                    attribute: required.to_owned(),
                });
            }
        }
    }

    // Attribute schema, upper bound: every present attribute must be allowed
    // by at least one of the entry's classes. `objectClass` is implicitly
    // allowed (it is how class membership is represented at all).
    for (attr, _) in entry.attributes() {
        if attr == OBJECT_CLASS {
            continue;
        }
        let allowed = known.iter().any(|&c| attrs.is_allowed(c, attr));
        if !allowed {
            out.push(Violation::AttributeNotAllowed {
                entry: entry_id,
                attribute: attr.to_owned(),
            });
        }
    }
}

/// Checks every entry of `dir` against the content schema. Optionally also
/// validates value syntaxes / single-value restrictions (Definition 2.1(3a)).
pub fn check_instance(
    schema: &DirectorySchema,
    dir: &DirectoryInstance,
    validate_values: bool,
    probe: &dyn bschema_obs::Probe,
    out: &mut Vec<Violation>,
) {
    let mut checked: u64 = 0;
    for (id, entry) in dir.iter() {
        check_entry(schema, id, entry, out);
        checked += 1;
        if validate_values {
            if let Err(e) = dir.validate_entry_values(id) {
                out.push(Violation::ValueViolation { entry: id, message: e.to_string() });
            }
        }
    }
    if probe.enabled() {
        probe.add("legality.entries_content_checked", checked);
    }
}

/// Which attributes a class-set signature admits.
#[derive(Debug)]
enum AllowedAttrs {
    /// Some class of the signature is extensible: everything is allowed.
    All,
    /// The union `⋃ α(c)` over the signature's known classes (lowercase
    /// keys, as entries store them).
    Union(HashSet<String>),
}

/// What the content check derives from an entry's (ordered) class list
/// alone. Entries in a real directory fall into a handful of distinct
/// class-set signatures, so caching this per signature turns the
/// per-entry work into attribute-presence probes.
#[derive(Debug)]
struct SignatureChecks {
    /// Class-level violations with a placeholder entry id, in
    /// [`check_entry`]'s emission order (unknown classes, core-chain
    /// checks, auxiliary admissibility).
    template: Vec<Violation>,
    /// `(class name, required attribute)` pairs, in emission order.
    required: Vec<(String, String)>,
    allowed: AllowedAttrs,
}

impl SignatureChecks {
    fn build(schema: &DirectorySchema, entry: &Entry) -> SignatureChecks {
        // Run the class-dependent half of `check_entry` once against a
        // classes-only probe entry; its violations are the template.
        let probe = Entry::builder().classes(entry.classes().iter().map(String::as_str)).build();
        let mut template = Vec::new();
        check_entry(schema, EntryId::from_index(0), &probe, &mut template);

        let classes = schema.classes();
        let attrs = schema.attributes();
        let known: Vec<ClassId> =
            entry.classes().iter().filter_map(|name| classes.lookup(name)).collect();

        let mut required = Vec::new();
        for &c in &known {
            // The probe entry has no attributes, so the template ends with
            // exactly these MissingRequiredAttribute violations; drop them
            // from the template and keep them as presence probes instead.
            for attr in attrs.required(c) {
                required.push((classes.name(c).to_owned(), attr.to_owned()));
            }
        }
        template.truncate(template.len() - required.len());

        let allowed = if known.iter().any(|&c| attrs.is_extensible(c)) {
            AllowedAttrs::All
        } else {
            AllowedAttrs::Union(
                known.iter().flat_map(|&c| attrs.allowed(c)).map(str::to_owned).collect(),
            )
        };
        SignatureChecks { template, required, allowed }
    }

    /// Emits the violations `check_entry` would produce for `entry`, in
    /// the same order.
    fn check(&self, entry_id: EntryId, entry: &Entry, out: &mut Vec<Violation>) {
        for v in &self.template {
            out.push(reanchor(v, entry_id));
        }
        for (class, attribute) in &self.required {
            if !entry.has_attribute(attribute) {
                out.push(Violation::MissingRequiredAttribute {
                    entry: entry_id,
                    class: class.clone(),
                    attribute: attribute.clone(),
                });
            }
        }
        if let AllowedAttrs::Union(allowed) = &self.allowed {
            for (attr, _) in entry.attributes() {
                if attr == OBJECT_CLASS {
                    continue;
                }
                if !allowed.contains(attr) {
                    out.push(Violation::AttributeNotAllowed {
                        entry: entry_id,
                        attribute: attr.to_owned(),
                    });
                }
            }
        }
    }
}

/// Rebinds a template violation to a concrete entry.
fn reanchor(v: &Violation, entry: EntryId) -> Violation {
    match v.clone() {
        Violation::UnknownClass { class, .. } => Violation::UnknownClass { entry, class },
        Violation::NoCoreClass { .. } => Violation::NoCoreClass { entry },
        Violation::MissingSuperclass { class, superclass, .. } => {
            Violation::MissingSuperclass { entry, class, superclass }
        }
        Violation::ExclusiveClasses { first, second, .. } => {
            Violation::ExclusiveClasses { entry, first, second }
        }
        Violation::AuxiliaryNotAllowed { auxiliary, .. } => {
            Violation::AuxiliaryNotAllowed { entry, auxiliary }
        }
        other => unreachable!("non-template violation cached: {other:?}"),
    }
}

/// Like [`check_instance`] but fanned out over `threads` workers, with a
/// per-class-set signature cache so shared class lists are analysed once.
/// Produces a violation list **identical** to [`check_instance`]'s: the
/// entries are chunked contiguously in document order and per-chunk
/// results are concatenated in chunk order.
pub fn check_instance_parallel(
    schema: &DirectorySchema,
    dir: &DirectoryInstance,
    validate_values: bool,
    threads: usize,
    probe: &dyn bschema_obs::Probe,
    parent: bschema_obs::SpanId,
    out: &mut Vec<Violation>,
) {
    let entries: Vec<(EntryId, &Entry)> = dir.iter().collect();
    let found = bschema_parallel::par_flat_map_chunks_indexed(&entries, threads, |i, chunk| {
        let span = probe.span_start(parent, "chunk", i as u64);
        let started = probe.enabled().then(std::time::Instant::now);
        let mut cache: HashMap<&[String], SignatureChecks> = HashMap::new();
        let mut local = Vec::new();
        for &(id, entry) in chunk {
            let sig = cache
                .entry(entry.classes())
                .or_insert_with(|| SignatureChecks::build(schema, entry));
            sig.check(id, entry, &mut local);
            if validate_values {
                if let Err(e) = dir.validate_entry_values(id) {
                    local.push(Violation::ValueViolation { entry: id, message: e.to_string() });
                }
            }
        }
        if let Some(start) = started {
            probe.add("legality.entries_content_checked", chunk.len() as u64);
            probe.add("parallel.chunks", 1);
            probe.observe("parallel.chunk_us", start.elapsed().as_micros() as u64);
        }
        probe.span_end(span);
        local
    });
    out.extend(found);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::white_pages_schema;
    use bschema_directory::Entry;

    fn violations_for(entry: Entry) -> Vec<Violation> {
        let schema = white_pages_schema();
        let mut out = Vec::new();
        check_entry(&schema, EntryId::from_index(0), &entry, &mut out);
        out
    }

    #[test]
    fn legal_person_passes() {
        let e = Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", "laks")
            .attr("name", "laks lakshmanan")
            .build();
        assert_eq!(violations_for(e), []);
    }

    #[test]
    fn missing_required_attribute() {
        let e = Entry::builder().classes(["person", "top"]).attr("uid", "x").build();
        let v = violations_for(e);
        assert!(matches!(
            &v[..],
            [Violation::MissingRequiredAttribute { class, attribute, .. }]
                if class == "person" && attribute == "name"
        ));
    }

    #[test]
    fn attribute_not_allowed() {
        // `location` is allowed on orgUnit, not person.
        let e = Entry::builder()
            .classes(["person", "top"])
            .attr("uid", "x")
            .attr("name", "x")
            .attr("location", "FP")
            .build();
        let v = violations_for(e);
        assert!(matches!(
            &v[..],
            [Violation::AttributeNotAllowed { attribute, .. }] if attribute == "location"
        ));
    }

    #[test]
    fn auxiliary_widens_allowed_attributes() {
        // `mail` is allowed via the `online` auxiliary.
        let e = Entry::builder()
            .classes(["person", "top", "online"])
            .attr("uid", "x")
            .attr("name", "x")
            .attr("mail", "x@y.z")
            .build();
        assert_eq!(violations_for(e), []);
        // Without `online`, mail is not allowed for a bare person.
        let e = Entry::builder()
            .classes(["person", "top"])
            .attr("uid", "x")
            .attr("name", "x")
            .attr("mail", "x@y.z")
            .build();
        assert!(matches!(
            &violations_for(e)[..],
            [Violation::AttributeNotAllowed { attribute, .. }] if attribute == "mail"
        ));
    }

    #[test]
    fn unknown_class() {
        let e = Entry::builder()
            .classes(["person", "top", "packetRouter"])
            .attr("uid", "x")
            .attr("name", "x")
            .build();
        assert!(matches!(
            &violations_for(e)[..],
            [Violation::UnknownClass { class, .. }] if class == "packetRouter"
        ));
    }

    #[test]
    fn no_core_class() {
        let e = Entry::builder().classes(["online"]).build();
        let v = violations_for(e);
        assert!(v.contains(&Violation::NoCoreClass { entry: EntryId::from_index(0) }));
        // An entry with no classes at all is also reported.
        let v = violations_for(Entry::new());
        assert!(v.contains(&Violation::NoCoreClass { entry: EntryId::from_index(0) }));
    }

    #[test]
    fn missing_superclass() {
        // researcher without person/top.
        let e = Entry::builder().classes(["researcher"]).attr("uid", "x").attr("name", "x").build();
        let v = violations_for(e);
        let missing: Vec<&str> = v
            .iter()
            .filter_map(|x| match x {
                Violation::MissingSuperclass { superclass, .. } => Some(superclass.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(missing, ["person", "top"]);
    }

    #[test]
    fn required_attrs_of_superclass_apply() {
        // researcher inherits nothing implicitly, but the entry also belongs
        // to person explicitly, whose ρ applies.
        let e = Entry::builder().classes(["researcher", "person", "top"]).build();
        let v = violations_for(e);
        let missing: Vec<&str> = v
            .iter()
            .filter_map(|x| match x {
                Violation::MissingRequiredAttribute { attribute, .. } => Some(attribute.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(missing, ["name", "uid"]);
    }

    #[test]
    fn exclusive_core_classes() {
        // The motivating example: an orgUnit that is also a facultyMember's
        // person — person ⇏ orgUnit.
        let e = Entry::builder()
            .classes(["person", "orgUnit", "orgGroup", "top"])
            .attr("uid", "x")
            .attr("name", "x")
            .attr("ou", "y")
            .build();
        let v = violations_for(e);
        assert!(v.iter().any(|x| matches!(x, Violation::ExclusiveClasses { .. })));
    }

    #[test]
    fn auxiliary_not_allowed() {
        // facultyMember is allowed on researcher, not on staffMember.
        let e = Entry::builder()
            .classes(["staffMember", "person", "top", "facultyMember"])
            .attr("uid", "x")
            .attr("name", "x")
            .build();
        let v = violations_for(e);
        assert!(matches!(
            &v[..],
            [Violation::AuxiliaryNotAllowed { auxiliary, .. }] if auxiliary == "facultyMember"
        ));
    }

    #[test]
    fn figure1_instance_content_is_legal() {
        let schema = white_pages_schema();
        let (dir, _) = crate::paper::white_pages_instance();
        let mut out = Vec::new();
        check_instance(&schema, &dir, true, bschema_obs::noop(), &mut out);
        assert_eq!(out, [], "Figure 1 must satisfy the Figures 2-3 content schema");
    }
}
