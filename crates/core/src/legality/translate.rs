//! Figure 4: translating structure-schema elements to hierarchical
//! selection queries.
//!
//! | element | query (must be **empty**) |
//! |---|---|
//! | `ci →ch cj` | `(σ? (oc=ci) (σc (oc=ci) (oc=cj)))` |
//! | `ci →pa cj` | `(σ? (oc=ci) (σp (oc=ci) (oc=cj)))` |
//! | `ci →de cj` | `(σ? (oc=ci) (σd (oc=ci) (oc=cj)))` |
//! | `ci →an cj` | `(σ? (oc=ci) (σa (oc=ci) (oc=cj)))` |
//! | `ci ↛ch cj` | `(σc (oc=ci) (oc=cj))` |
//! | `ci ↛de cj` | `(σd (oc=ci) (oc=cj))` |
//! | `◇c`        | `(oc=c)` — must be **non-empty** |
//!
//! An instance is legal w.r.t. `(Er, Ef)` iff every generated "must be
//! empty" query is empty, and legal w.r.t. `Cr` iff every `◇` query is
//! non-empty (§3.2).

use bschema_query::Query;

use crate::schema::{ClassId, DirectorySchema, ForbidKind, ForbiddenRel, RelKind, RequiredRel};

fn oc(schema: &DirectorySchema, class: ClassId) -> Query {
    Query::object_class(schema.classes().name(class))
}

/// Figure 4, required rows: the query whose **emptiness** is equivalent to
/// satisfaction of `rel`. Witnesses returned by the query are exactly the
/// entries violating the element.
pub fn required_rel_query(schema: &DirectorySchema, rel: &RequiredRel) -> Query {
    let inner = match rel.kind {
        RelKind::Child => oc(schema, rel.source).with_child(oc(schema, rel.target)),
        RelKind::Parent => oc(schema, rel.source).with_parent(oc(schema, rel.target)),
        RelKind::Descendant => oc(schema, rel.source).with_descendant(oc(schema, rel.target)),
        RelKind::Ancestor => oc(schema, rel.source).with_ancestor(oc(schema, rel.target)),
    };
    oc(schema, rel.source).minus(inner)
}

/// Figure 4, forbidden rows: the query whose **emptiness** is equivalent to
/// satisfaction of `rel`. Witnesses are the `upper` entries having a
/// forbidden relative.
pub fn forbidden_rel_query(schema: &DirectorySchema, rel: &ForbiddenRel) -> Query {
    match rel.kind {
        ForbidKind::Child => oc(schema, rel.upper).with_child(oc(schema, rel.lower)),
        ForbidKind::Descendant => oc(schema, rel.upper).with_descendant(oc(schema, rel.lower)),
    }
}

/// Figure 4, `◇c` row: the query whose **non-emptiness** is equivalent to
/// satisfaction.
pub fn required_class_query(schema: &DirectorySchema, class: ClassId) -> Query {
    oc(schema, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DirectorySchema;

    fn two_class_schema() -> DirectorySchema {
        DirectorySchema::builder()
            .core_class("orgGroup", "top")
            .and_then(|b| b.core_class("person", "top"))
            .map(|b| b.build())
            .unwrap()
    }

    #[test]
    fn required_descendant_matches_paper_q1() {
        let s = two_class_schema();
        let org = s.classes().resolve("orgGroup").unwrap();
        let person = s.classes().resolve("person").unwrap();
        let rel = RequiredRel { source: org, kind: RelKind::Descendant, target: person };
        assert_eq!(
            required_rel_query(&s, &rel).to_string(),
            "(σ? (objectClass=orgGroup) (σd (objectClass=orgGroup) (objectClass=person)))"
        );
    }

    #[test]
    fn forbidden_child_matches_paper_q2() {
        let s = two_class_schema();
        let person = s.classes().resolve("person").unwrap();
        let top = s.classes().top();
        let rel = ForbiddenRel { upper: person, kind: ForbidKind::Child, lower: top };
        assert_eq!(
            forbidden_rel_query(&s, &rel).to_string(),
            "(σc (objectClass=person) (objectClass=top))"
        );
    }

    #[test]
    fn all_required_kinds_translate() {
        let s = two_class_schema();
        let a = s.classes().resolve("orgGroup").unwrap();
        let b = s.classes().resolve("person").unwrap();
        let shapes = [
            (RelKind::Child, "σc"),
            (RelKind::Parent, "σp"),
            (RelKind::Descendant, "σd"),
            (RelKind::Ancestor, "σa"),
        ];
        for (kind, op) in shapes {
            let q = required_rel_query(&s, &RequiredRel { source: a, kind, target: b });
            let text = q.to_string();
            assert!(text.starts_with("(σ? "), "{text}");
            assert!(text.contains(op), "{text} should use {op}");
            assert_eq!(q.size(), 5);
        }
    }

    #[test]
    fn required_class_is_atomic() {
        let s = two_class_schema();
        let person = s.classes().resolve("person").unwrap();
        let q = required_class_query(&s, person);
        assert_eq!(q.to_string(), "(objectClass=person)");
        assert_eq!(q.size(), 1);
    }
}
