//! Legality testing (§3): is a directory instance legal w.r.t. a
//! bounding-schema?
//!
//! The checker combines the per-entry content checks (§3.1,
//! [`content`]) with the query-reduction structure checks (§3.2,
//! [`translate`] + [`structure`]), achieving the Theorem 3.1 bound — linear
//! in |D|. The [`naive`] module provides the quadratic pairwise baseline for
//! benchmarking and differential testing.

pub mod content;
pub mod keys;
pub mod naive;
pub mod report;
pub mod structure;
pub mod translate;

pub use report::{LegalityReport, Violation};

use bschema_directory::DirectoryInstance;

use crate::schema::DirectorySchema;

/// Execution options for legality checking.
///
/// The parallel engine produces reports **identical** to the sequential
/// one (same violations, same order): per-entry content checks and the
/// independent Figure 4 structure queries are data-parallel, and every
/// worker reads the one sorted-entry index the instance built in
/// [`prepare`](DirectoryInstance::prepare). The parallel content path
/// additionally caches per-class-set signature analyses, so it wins even
/// on a single worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LegalityOptions {
    /// Use the data-parallel engine.
    pub parallel: bool,
    /// Worker threads for the parallel engine: `0` = all available,
    /// `1` = run inline on the caller's thread.
    pub threads: usize,
}

impl LegalityOptions {
    /// The sequential engine (the default).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// The parallel engine with `threads` workers (`0` = all available).
    pub fn parallel(threads: usize) -> Self {
        LegalityOptions { parallel: true, threads }
    }
}

/// The legality checker: schema + configuration.
#[derive(Debug, Clone)]
pub struct LegalityChecker<'s> {
    schema: &'s DirectorySchema,
    validate_values: bool,
    options: LegalityOptions,
    probe: &'s dyn bschema_obs::Probe,
}

impl<'s> LegalityChecker<'s> {
    /// A checker for `schema` with value validation off (the paper's
    /// Definition 2.7 checks only).
    pub fn new(schema: &'s DirectorySchema) -> Self {
        LegalityChecker {
            schema,
            validate_values: false,
            options: LegalityOptions::default(),
            probe: bschema_obs::noop(),
        }
    }

    /// Also validate value syntaxes and single-value restrictions
    /// (Definition 2.1(3a) + §6.1 numeric restrictions).
    pub fn with_value_validation(mut self, on: bool) -> Self {
        self.validate_values = on;
        self
    }

    /// Selects the execution engine (sequential or data-parallel).
    pub fn with_options(mut self, options: LegalityOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches an instrumentation probe (spans + counters). Checking
    /// behaviour and reports are unchanged; the default probe is a
    /// no-op.
    pub fn with_probe(mut self, probe: &'s dyn bschema_obs::Probe) -> Self {
        self.probe = probe;
        self
    }

    /// The schema being checked against.
    pub fn schema(&self) -> &'s DirectorySchema {
        self.schema
    }

    /// The configured execution options.
    pub fn options(&self) -> LegalityOptions {
        self.options
    }

    /// Full legality check (Definition 2.7). The instance must be
    /// [`prepare`](DirectoryInstance::prepare)d.
    ///
    /// Runs in the Theorem 3.1 bound: O(|D| · (per-entry content cost +
    /// |S|)) — linear in the instance size. With
    /// [`LegalityOptions::parallel`] the same work is fanned out over
    /// worker threads; the report is identical either way.
    pub fn check(&self, dir: &DirectoryInstance) -> LegalityReport {
        let probe = self.probe;
        let root = probe.span_start(bschema_obs::NO_SPAN, "legality.check", 0);
        let mut out = Vec::new();
        if self.options.parallel {
            let threads = self.options.threads;
            let span = probe.span_start(root, "content", 0);
            content::check_instance_parallel(
                self.schema,
                dir,
                self.validate_values,
                threads,
                probe,
                span,
                &mut out,
            );
            probe.span_end(span);
            let span = probe.span_start(root, "keys", 1);
            keys::check_instance(self.schema, dir, &mut out);
            probe.span_end(span);
            let span = probe.span_start(root, "structure", 2);
            structure::check_instance_parallel(self.schema, dir, threads, probe, &mut out);
            probe.span_end(span);
        } else {
            let span = probe.span_start(root, "content", 0);
            content::check_instance(self.schema, dir, self.validate_values, probe, &mut out);
            probe.span_end(span);
            let span = probe.span_start(root, "keys", 1);
            keys::check_instance(self.schema, dir, &mut out);
            probe.span_end(span);
            let span = probe.span_start(root, "structure", 2);
            structure::check_instance(self.schema, dir, probe, &mut out);
            probe.span_end(span);
        }
        probe.span_end(root);
        LegalityReport::from_violations(out)
    }

    /// Like [`check`](Self::check) but using the traversal-based structure
    /// checker (no indexes or queries) — a middle baseline for benchmarks
    /// and a differential oracle.
    pub fn check_naive(&self, dir: &DirectoryInstance) -> LegalityReport {
        let mut out = Vec::new();
        content::check_instance(self.schema, dir, self.validate_values, self.probe, &mut out);
        keys::check_instance(self.schema, dir, &mut out);
        naive::check_instance(self.schema, dir, &mut out);
        LegalityReport::from_violations(out)
    }

    /// Like [`check`](Self::check) but using the literal §3.2 strawman:
    /// every ordered entry pair is compared against the structure schema,
    /// O((|Er|+|Ef|)·|D|²).
    pub fn check_pairwise(&self, dir: &DirectoryInstance) -> LegalityReport {
        let mut out = Vec::new();
        content::check_instance(self.schema, dir, self.validate_values, self.probe, &mut out);
        keys::check_instance(self.schema, dir, &mut out);
        naive::check_instance_pairwise(self.schema, dir, &mut out);
        LegalityReport::from_violations(out)
    }

    /// Boolean-only convenience.
    pub fn is_legal(&self, dir: &DirectoryInstance) -> bool {
        self.check(dir).is_legal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{white_pages_instance, white_pages_schema};
    use bschema_directory::Entry;

    #[test]
    fn figure1_is_legal_under_figures_2_and_3() {
        // The paper's §2.3 claim: "the fragment of the white pages directory
        // instance depicted in Figure 1 is legal w.r.t. the bounding-schema
        // depicted in Figures 2 and 3".
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        let checker = LegalityChecker::new(&schema).with_value_validation(true);
        let report = checker.check(&dir);
        assert!(report.is_legal(), "unexpected violations:\n{report}");
        assert!(checker.is_legal(&dir));
        assert!(checker.check_naive(&dir).is_legal());
    }

    #[test]
    fn fast_and_naive_agree_on_mixed_violations() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        // Structure violation.
        dir.add_child_entry(
            ids.laks,
            Entry::builder().classes(["person", "top"]).attr("uid", "x").attr("name", "x").build(),
        )
        .unwrap();
        // Content violation.
        dir.entry_mut(ids.suciu).unwrap().remove_attribute("name");
        dir.prepare();
        let checker = LegalityChecker::new(&schema);
        let fast = checker.check(&dir).normalized();
        let naive = checker.check_naive(&dir).normalized();
        assert_eq!(fast, naive);
        assert!(!fast.is_legal());
    }

    #[test]
    fn report_renders_readably() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        dir.entry_mut(ids.suciu).unwrap().remove_attribute("name");
        dir.prepare();
        let report = LegalityChecker::new(&schema).check(&dir);
        let text = report.to_string();
        assert!(text.contains("ILLEGAL"));
        assert!(text.contains("requires attribute \"name\""));
    }
}
