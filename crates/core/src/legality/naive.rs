//! The naive structure-schema checker: direct pairwise comparison.
//!
//! This is the strawman §3.2 opens with: "compare every pair of (parent,
//! child) entries and every pair of (ancestor, descendant) entries, against
//! the structure schema", running in O((|Er|+|Ef|)·|D|²). It exists as the
//! baseline for the Theorem 3.1 scaling benchmark and as a differential
//! oracle for the query-based checker.

use bschema_directory::DirectoryInstance;

use super::report::Violation;
use crate::schema::{DirectorySchema, ForbidKind, RelKind};

/// Checks the structure schema by explicit traversal, no indexes or queries.
/// Output matches [`super::structure::check_instance`] up to ordering.
pub fn check_instance(schema: &DirectorySchema, dir: &DirectoryInstance, out: &mut Vec<Violation>) {
    let classes = schema.classes();
    let structure = schema.structure();
    let forest = dir.forest();

    let has_class =
        |id, class_id| dir.entry(id).is_some_and(|e| e.has_class(classes.name(class_id)));

    for class in structure.required_classes() {
        let found = dir.iter().any(|(_, e)| e.has_class(classes.name(class)));
        if !found {
            out.push(Violation::MissingRequiredClass { class: classes.name(class).to_owned() });
        }
    }

    for rel in structure.required_rels() {
        for (id, entry) in dir.iter() {
            if !entry.has_class(classes.name(rel.source)) {
                continue;
            }
            let satisfied = match rel.kind {
                RelKind::Child => forest.children(id).any(|c| has_class(c, rel.target)),
                RelKind::Parent => forest.parent(id).is_some_and(|p| has_class(p, rel.target)),
                RelKind::Descendant => forest.descendants(id).any(|d| has_class(d, rel.target)),
                RelKind::Ancestor => forest.ancestors(id).any(|a| has_class(a, rel.target)),
            };
            if !satisfied {
                out.push(Violation::RequiredRelViolation {
                    entry: id,
                    source: classes.name(rel.source).to_owned(),
                    kind: rel.kind,
                    target: classes.name(rel.target).to_owned(),
                });
            }
        }
    }

    for rel in structure.forbidden_rels() {
        for (id, entry) in dir.iter() {
            if !entry.has_class(classes.name(rel.upper)) {
                continue;
            }
            let violated = match rel.kind {
                ForbidKind::Child => forest.children(id).any(|c| has_class(c, rel.lower)),
                ForbidKind::Descendant => forest.descendants(id).any(|d| has_class(d, rel.lower)),
            };
            if violated {
                out.push(Violation::ForbiddenRelViolation {
                    entry: id,
                    upper: classes.name(rel.upper).to_owned(),
                    kind: rel.kind,
                    lower: classes.name(rel.lower).to_owned(),
                });
            }
        }
    }
}

/// The *literal* §3.2 strawman: "compare every pair of (parent, child)
/// entries and every pair of (ancestor, descendant) entries, against the
/// structure schema" — O((|Er| + |Ef|) · |D|²). Used as the quadratic
/// baseline in the Theorem 3.1 scaling benchmark.
pub fn check_instance_pairwise(
    schema: &DirectorySchema,
    dir: &DirectoryInstance,
    out: &mut Vec<Violation>,
) {
    let classes = schema.classes();
    let structure = schema.structure();
    let forest = dir.forest();
    let entries: Vec<_> = dir.iter().collect();
    let n = entries.len();

    for class in structure.required_classes() {
        let found = entries.iter().any(|(_, e)| e.has_class(classes.name(class)));
        if !found {
            out.push(Violation::MissingRequiredClass { class: classes.name(class).to_owned() });
        }
    }

    let req = structure.required_rels();
    let forb = structure.forbidden_rels();
    // satisfied[i][r]: entry i satisfies required rel r (or is not a source).
    let mut satisfied = vec![vec![false; req.len()]; n];
    // violated[i][f]: entry i was caught violating forbidden rel f (dedup —
    // the fast checker reports one witness per entry, not per pair).
    let mut violated = vec![vec![false; forb.len()]; n];
    for (i, (_, ei)) in entries.iter().enumerate() {
        for (r, rel) in req.iter().enumerate() {
            satisfied[i][r] = !ei.has_class(classes.name(rel.source));
        }
    }

    // Every ordered pair, as the strawman prescribes.
    for (i, &(id_i, ei)) in entries.iter().enumerate() {
        for (j, &(id_j, ej)) in entries.iter().enumerate() {
            if i == j {
                continue;
            }
            let is_parent = forest.parent(id_j) == Some(id_i);
            let is_ancestor = forest.interval_is_ancestor(id_i, id_j);
            if !is_ancestor {
                continue; // unrelated pair (parent implies ancestor)
            }
            for (r, rel) in req.iter().enumerate() {
                // ei is above ej: ej may satisfy ei's child/descendant
                // requirements, ei may satisfy ej's parent/ancestor ones.
                match rel.kind {
                    RelKind::Child => {
                        if is_parent && !satisfied[i][r] && ej.has_class(classes.name(rel.target)) {
                            satisfied[i][r] = true;
                        }
                    }
                    RelKind::Descendant => {
                        if !satisfied[i][r] && ej.has_class(classes.name(rel.target)) {
                            satisfied[i][r] = true;
                        }
                    }
                    RelKind::Parent => {
                        if is_parent && !satisfied[j][r] && ei.has_class(classes.name(rel.target)) {
                            satisfied[j][r] = true;
                        }
                    }
                    RelKind::Ancestor => {
                        if !satisfied[j][r] && ei.has_class(classes.name(rel.target)) {
                            satisfied[j][r] = true;
                        }
                    }
                }
            }
            for (f, rel) in forb.iter().enumerate() {
                let pair_matches = match rel.kind {
                    ForbidKind::Child => is_parent,
                    ForbidKind::Descendant => true,
                };
                if pair_matches
                    && !violated[i][f]
                    && ei.has_class(classes.name(rel.upper))
                    && ej.has_class(classes.name(rel.lower))
                {
                    violated[i][f] = true;
                }
            }
        }
    }

    for (i, &(id_i, _)) in entries.iter().enumerate() {
        for (f, rel) in forb.iter().enumerate() {
            if violated[i][f] {
                out.push(Violation::ForbiddenRelViolation {
                    entry: id_i,
                    upper: classes.name(rel.upper).to_owned(),
                    kind: rel.kind,
                    lower: classes.name(rel.lower).to_owned(),
                });
            }
        }
    }

    for (i, &(id_i, _)) in entries.iter().enumerate() {
        for (r, rel) in req.iter().enumerate() {
            if !satisfied[i][r] {
                out.push(Violation::RequiredRelViolation {
                    entry: id_i,
                    source: classes.name(rel.source).to_owned(),
                    kind: rel.kind,
                    target: classes.name(rel.target).to_owned(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::structure as fast;
    use crate::paper::{white_pages_instance, white_pages_schema};
    use bschema_directory::Entry;

    #[test]
    fn agrees_with_fast_checker_on_figure1() {
        let schema = white_pages_schema();
        let (dir, _) = white_pages_instance();
        let mut naive_out = Vec::new();
        check_instance(&schema, &dir, &mut naive_out);
        let mut fast_out = Vec::new();
        fast::check_instance(&schema, &dir, bschema_obs::noop(), &mut fast_out);
        naive_out.sort();
        fast_out.sort();
        assert_eq!(naive_out, fast_out);
    }

    #[test]
    fn pairwise_agrees_with_fast_checker() {
        let schema = white_pages_schema();
        // Legal instance.
        let (dir, ids) = white_pages_instance();
        let mut pair_out = Vec::new();
        check_instance_pairwise(&schema, &dir, &mut pair_out);
        assert_eq!(pair_out, [], "Figure 1 is legal");
        // Illegal instance: both structure violations present.
        let mut dir = dir;
        dir.add_child_entry(
            ids.suciu,
            Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "oops").build(),
        )
        .unwrap();
        dir.prepare();
        let mut pair_out = Vec::new();
        check_instance_pairwise(&schema, &dir, &mut pair_out);
        let mut fast_out = Vec::new();
        fast::check_instance(&schema, &dir, bschema_obs::noop(), &mut fast_out);
        pair_out.sort();
        fast_out.sort();
        assert_eq!(pair_out, fast_out);
    }

    #[test]
    fn agrees_with_fast_checker_on_illegal_instance() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        dir.add_child_entry(
            ids.suciu,
            Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "oops").build(),
        )
        .unwrap();
        // Also delete nothing, add a lone person at the root (no orgGroup
        // parent → person →pa orgGroup violated).
        dir.add_root_entry(
            Entry::builder()
                .classes(["person", "top"])
                .attr("uid", "stray")
                .attr("name", "stray")
                .build(),
        );
        dir.prepare();
        let mut naive_out = Vec::new();
        check_instance(&schema, &dir, &mut naive_out);
        let mut fast_out = Vec::new();
        fast::check_instance(&schema, &dir, bschema_obs::noop(), &mut fast_out);
        naive_out.sort();
        fast_out.sort();
        assert_eq!(naive_out, fast_out);
        assert!(!naive_out.is_empty());
    }
}
