//! Schema discovery: proposing a bounding-schema from an existing directory.
//!
//! §6.2 observes that in the semi-structured world "the challenge is to
//! discover the schema from observed instances" (descriptive schemas, after
//! Nestorov–Abiteboul–Motwani), while directory schemas are prescriptive.
//! This module closes the loop for directories: given an instance, it mines
//! the tightest structure- and attribute-schema elements the instance
//! satisfies, as a *starting point* an administrator can prune into a
//! prescriptive bounding-schema (`bschema suggest-schema` in the CLI).
//!
//! Everything mined is sound for the source instance by construction —
//! checking the suggested schema against it always passes (tested). Mining
//! runs the same Figure 4 queries legality checking uses, so it is
//! O(|classes|² · |D|).

use std::collections::{BTreeMap, BTreeSet};

use bschema_directory::DirectoryInstance;
use bschema_query::{evaluate, EvalContext, Query};

use crate::schema::{DirectorySchema, ForbidKind, RelKind, SchemaBuilder};

/// What to mine.
#[derive(Debug, Clone)]
pub struct DiscoveryOptions {
    /// Mine required relationships (`a →ch/de/pa/an b` holding for every
    /// `a` entry).
    pub required: bool,
    /// Mine forbidden relationships (`a ↛ch/de b` with no witness pair).
    /// Over-fits sparse instances; off by default.
    pub forbidden: bool,
    /// Mine required attributes (present on every member of a class) and
    /// allowed attributes (observed on some member).
    pub attributes: bool,
    /// Mark every observed class required (`◇c`).
    pub required_classes: bool,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        DiscoveryOptions {
            required: true,
            forbidden: false,
            attributes: true,
            required_classes: false,
        }
    }
}

/// The observed class structure, reconstructed from co-occurrence.
///
/// Without an existing class schema we cannot know the intended inheritance
/// tree, so discovery infers a conservative one from membership containment:
/// `a ⇒ b` when every entry holding `a` also holds `b`. A class is usable as
/// **core** when every class it co-occurs with is containment-comparable to
/// it (so every entry's core classes form a chain, as single inheritance
/// demands); the rest become **auxiliaries**, allowed on the core classes
/// they were observed with. Parent links follow the minimal strict superset.
struct ObservedClasses {
    /// Core classes with their chosen parent (`None` = `top`), ordered so
    /// parents precede children.
    core: Vec<(String, Option<String>)>,
    /// Auxiliary classes with the core classes they may accompany.
    auxiliary: Vec<(String, BTreeSet<String>)>,
}

fn observe_classes(dir: &DirectoryInstance) -> ObservedClasses {
    // Member sets per (lowercased) class.
    let mut members: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    let mut cooccur: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (id, entry) in dir.iter() {
        let classes: Vec<String> =
            entry.classes().iter().map(|c| c.to_ascii_lowercase()).filter(|c| c != "top").collect();
        for c in &classes {
            members.entry(c.clone()).or_default().insert(id.index());
            for other in &classes {
                if other != c {
                    cooccur.entry(c.clone()).or_default().insert(other.clone());
                }
            }
        }
    }
    let contains = |sup: &str, sub: &str| -> bool {
        let (a, b) = (&members[sub], &members[sup]);
        a.is_subset(b)
    };
    let comparable = |a: &str, b: &str| -> bool { contains(a, b) || contains(b, a) };

    // Core candidates: start from everything, then greedily demote the
    // class with the most incomparable co-occurrences to auxiliary until
    // the remainder is chain-compatible. (In Figure 1, `online` co-occurs
    // incomparably with orgGroup, person and researcher, so one demotion
    // fixes all three.)
    let mut core_names: Vec<&String> = members.keys().collect();
    let mut aux_names: Vec<&String> = Vec::new();
    loop {
        let conflicts = |class: &String| -> usize {
            cooccur
                .get(class)
                .into_iter()
                .flatten()
                .filter(|o| core_names.contains(o) && !comparable(class, o))
                .count()
        };
        let worst = core_names
            .iter()
            .map(|c| (conflicts(c), *c))
            .max_by_key(|(n, c)| (*n, std::cmp::Reverse((*c).clone())))
            .filter(|(n, _)| *n > 0);
        match worst {
            Some((_, class)) => {
                core_names.retain(|c| *c != class);
                aux_names.push(class);
            }
            None => break,
        }
    }
    aux_names.sort();

    // Parent: the minimal strict superset among core classes; ties broken by
    // (size, name) so the result is deterministic. Equal member sets order
    // lexicographically (first = superclass).
    let strictly_above = |class: &str, candidate: &str| -> bool {
        let (m, c) = (&members[class], &members[candidate]);
        m.is_subset(c) && (m.len() < c.len() || class > candidate)
    };
    let mut core: Vec<(String, Option<String>)> = Vec::new();
    for class in &core_names {
        let parent = core_names
            .iter()
            .filter(|c| *c != class && strictly_above(class, c))
            .min_by_key(|c| (members[**c].len(), (**c).clone()))
            .map(|c| (*c).clone());
        core.push(((*class).clone(), parent));
    }
    // Parents must be declared first: order by member-set size descending
    // (supersets are at least as large), then name.
    core.sort_by(|(a, _), (b, _)| members[b].len().cmp(&members[a].len()).then_with(|| a.cmp(b)));

    let auxiliary = aux_names
        .into_iter()
        .map(|aux| {
            let with: BTreeSet<String> = cooccur
                .get(aux)
                .into_iter()
                .flatten()
                .filter(|c| core_names.contains(c))
                .cloned()
                .collect();
            (aux.clone(), with)
        })
        .collect();
    ObservedClasses { core, auxiliary }
}

/// Mines a suggested bounding-schema from `dir` (which must be prepared).
pub fn suggest_schema(dir: &DirectoryInstance, options: &DiscoveryOptions) -> DirectorySchema {
    let observed = observe_classes(dir);
    let mut builder = DirectorySchema::builder().named("suggested by discovery");
    for (class, parent) in &observed.core {
        builder = builder
            .core_class(class, parent.as_deref().unwrap_or("top"))
            .expect("observed classes are distinct and parents precede children");
    }
    for (aux, with) in &observed.auxiliary {
        builder = builder.auxiliary(aux).expect("observed classes are distinct");
        for core in with {
            builder = builder.allow_aux(core, aux).expect("core declared above");
        }
    }
    // Structure elements range over core classes only (Definition 2.4), with
    // `top` included as a relationship endpoint.
    let mut classes: Vec<String> = observed.core.iter().map(|(c, _)| c.clone()).collect();
    classes.push("top".to_owned());
    // Attribute mining covers aux classes too.
    let attr_classes: Vec<String> = classes
        .iter()
        .filter(|c| *c != "top")
        .cloned()
        .chain(observed.auxiliary.iter().map(|(a, _)| a.clone()))
        .collect();

    if options.attributes {
        builder = mine_attributes(dir, &attr_classes, builder);
    }

    let ctx = EvalContext::new(dir);
    if options.required_classes {
        for (class, _) in &observed.core {
            builder = builder.require_class(class).expect("class declared above");
        }
    }

    for a in &classes {
        for b in &classes {
            if options.required && a != b && a != "top" {
                for kind in RelKind::ALL {
                    // Prefer the strongest form per axis: ch subsumes de,
                    // pa subsumes an.
                    let subsumed = match kind {
                        RelKind::Descendant => holds_for_all(&ctx, a, RelKind::Child, b),
                        RelKind::Ancestor => holds_for_all(&ctx, a, RelKind::Parent, b),
                        _ => false,
                    };
                    if !subsumed && holds_for_all(&ctx, a, kind, b) {
                        builder = builder.require_rel(a, kind, b).expect("classes declared");
                    }
                }
            }
            if options.forbidden {
                if never_holds(&ctx, a, ForbidKind::Descendant, b) {
                    builder =
                        builder.forbid_rel(a, ForbidKind::Descendant, b).expect("classes declared");
                } else if never_holds(&ctx, a, ForbidKind::Child, b) {
                    builder =
                        builder.forbid_rel(a, ForbidKind::Child, b).expect("classes declared");
                }
            }
        }
    }
    builder.build()
}

fn mine_attributes(
    dir: &DirectoryInstance,
    classes: &[String],
    mut builder: SchemaBuilder,
) -> SchemaBuilder {
    // For each class: attributes present on every member (required) and on
    // any member (allowed).
    let mut present_on_all: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    let mut present_on_any: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for class in classes {
        let members = dir.index().entries_with_class(class);
        let mut all: Option<BTreeSet<String>> = None;
        let mut any: BTreeSet<String> = BTreeSet::new();
        for &id in members {
            let entry = dir.entry(id).expect("indexed entries are live");
            let attrs: BTreeSet<String> = entry
                .attributes()
                .map(|(k, _)| k.to_owned())
                .filter(|k| k != bschema_directory::OBJECT_CLASS)
                .collect();
            any.extend(attrs.iter().cloned());
            all = Some(match all {
                None => attrs,
                Some(prev) => prev.intersection(&attrs).cloned().collect(),
            });
        }
        present_on_all.insert(class, all.unwrap_or_default());
        present_on_any.insert(class, any);
    }
    // An attribute required by every class a co-occurring class also
    // requires would be redundant, but builders tolerate repeats; keep the
    // direct mapping for readability.
    for class in classes {
        let required = &present_on_all[class.as_str()];
        let allowed = &present_on_any[class.as_str()];
        builder = builder
            .require_attrs(class, required.iter().map(String::as_str))
            .and_then(|b| b.allow_attrs(class, allowed.iter().map(String::as_str)))
            .expect("class declared");
    }
    builder
}

fn holds_for_all(ctx: &EvalContext<'_>, a: &str, kind: RelKind, b: &str) -> bool {
    let base = Query::object_class(a);
    let inner = match kind {
        RelKind::Child => base.clone().with_child(Query::object_class(b)),
        RelKind::Descendant => base.clone().with_descendant(Query::object_class(b)),
        RelKind::Parent => base.clone().with_parent(Query::object_class(b)),
        RelKind::Ancestor => base.clone().with_ancestor(Query::object_class(b)),
    };
    // Non-vacuous: at least one member exists, and none lacks the relative.
    !evaluate(ctx, &base).is_empty() && evaluate(ctx, &base.minus(inner)).is_empty()
}

fn never_holds(ctx: &EvalContext<'_>, a: &str, kind: ForbidKind, b: &str) -> bool {
    let q = match kind {
        ForbidKind::Child => Query::object_class(a).with_child(Query::object_class(b)),
        ForbidKind::Descendant => Query::object_class(a).with_descendant(Query::object_class(b)),
    };
    evaluate(ctx, &q).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::LegalityChecker;
    use crate::paper::white_pages_instance;

    #[test]
    fn suggested_schema_accepts_its_source() {
        let (dir, _) = white_pages_instance();
        for options in [
            DiscoveryOptions::default(),
            DiscoveryOptions { forbidden: true, ..Default::default() },
            DiscoveryOptions { required_classes: true, forbidden: true, ..Default::default() },
        ] {
            let schema = suggest_schema(&dir, &options);
            let report = LegalityChecker::new(&schema).check(&dir);
            assert!(report.is_legal(), "mined schema must accept its source:\n{report}");
        }
    }

    #[test]
    fn figure1_regularities_are_discovered() {
        let (dir, _) = white_pages_instance();
        let schema =
            suggest_schema(&dir, &DiscoveryOptions { forbidden: true, ..Default::default() });
        let s = schema.structure();
        let classes = schema.classes();
        let has_req = |src: &str, kind: RelKind, tgt: &str| {
            s.required_rels().iter().any(|r| {
                classes.name(r.source).eq_ignore_ascii_case(src)
                    && r.kind == kind
                    && classes.name(r.target).eq_ignore_ascii_case(tgt)
            })
        };
        let has_forb = |up: &str, kind: ForbidKind, lo: &str| {
            s.forbidden_rels().iter().any(|r| {
                classes.name(r.upper).eq_ignore_ascii_case(up)
                    && r.kind == kind
                    && classes.name(r.lower).eq_ignore_ascii_case(lo)
            })
        };
        // Figure 3's real rules resurface from the data alone:
        assert!(has_req("orggroup", RelKind::Descendant, "person"));
        assert!(has_req("orgunit", RelKind::Parent, "orggroup"));
        assert!(has_req("person", RelKind::Parent, "orgunit"));
        assert!(has_forb("person", ForbidKind::Descendant, "top"));
        // Attribute regularities too: every person carries uid and name.
        let person = classes.resolve("person").unwrap();
        assert!(schema.attributes().is_required(person, "uid"));
        assert!(schema.attributes().is_required(person, "name"));
        assert!(!schema.attributes().is_required(person, "mail")); // suciu has none
        assert!(schema.attributes().is_allowed(person, "mail")); // laks does
    }

    #[test]
    fn strongest_form_subsumption() {
        let (dir, _) = white_pages_instance();
        let schema = suggest_schema(&dir, &DiscoveryOptions::default());
        let s = schema.structure();
        let classes = schema.classes();
        // person →pa orgUnit holds, so person →an orgUnit must be
        // suppressed as implied.
        let pa = s.required_rels().iter().any(|r| {
            classes.name(r.source) == "person"
                && r.kind == RelKind::Parent
                && classes.name(r.target) == "orgunit"
        });
        let an = s.required_rels().iter().any(|r| {
            classes.name(r.source) == "person"
                && r.kind == RelKind::Ancestor
                && classes.name(r.target) == "orgunit"
        });
        assert!(pa);
        assert!(!an, "pa subsumes an");
    }

    #[test]
    fn empty_instance_yields_empty_suggestion() {
        let mut dir = DirectoryInstance::white_pages();
        dir.prepare();
        let schema = suggest_schema(&dir, &DiscoveryOptions::default());
        assert_eq!(schema.classes().len(), 1); // just top
        assert_eq!(schema.structure().len(), 0);
    }
}
