//! Testing legality against updates (§4): transactions, Theorem 4.1
//! normalisation, and the Figure 5 incremental checker.

pub mod incremental;
pub mod ldif_tx;
pub mod modify;
pub mod transaction;

pub use incremental::{
    deletion_needs_recheck, insertion_delta_query, insertion_delta_query_forbidden,
    IncrementalChecker,
};
pub use ldif_tx::{transaction_from_ldif, LdifTxError};
pub use modify::{apply_mods, check_modification, Mod};
pub use transaction::{NodeRef, NormalizedTx, SubtreeInsertion, Transaction, TxError, TxOp};

use bschema_directory::{DirectoryInstance, Entry, EntryId};

use crate::legality::{LegalityOptions, LegalityReport};
use crate::schema::DirectorySchema;

/// Outcome of applying a transaction with incremental checking.
#[derive(Debug, Clone)]
pub struct AppliedTx {
    /// Roots of the inserted subtrees, in application order.
    pub inserted_roots: Vec<EntryId>,
    /// All entries removed by the deletion phase.
    pub removed: Vec<Entry>,
    /// Accumulated violations across every intermediate instance. By
    /// Theorem 4.1 the final instance is legal iff this is empty.
    pub report: LegalityReport,
}

/// Applies `tx` to `dir` in the Theorem 4.1 order — subtree insertions,
/// then subtree deletions — running the Figure 5 incremental check after
/// each step. The instance is mutated regardless of legality; callers that
/// need atomicity should snapshot first (see
/// [`ManagedDirectory`](crate::managed::ManagedDirectory)).
pub fn apply_and_check(
    schema: &DirectorySchema,
    dir: &mut DirectoryInstance,
    tx: &Transaction,
) -> Result<AppliedTx, TxError> {
    let normalized = tx.normalize(dir)?;
    let checker = IncrementalChecker::new(schema);
    let mut report = LegalityReport::legal();
    let mut inserted_roots = Vec::with_capacity(normalized.insertions.len());

    for subtree in &normalized.insertions {
        let ids = subtree.apply(dir)?;
        let root = ids[0];
        inserted_roots.push(root);
        dir.prepare();
        report.extend(checker.check_insertion(dir, root));
    }

    let mut removed = Vec::new();
    for &root in &normalized.deletion_roots {
        let batch: Vec<Entry> = dir
            .remove_subtree(root)
            .map_err(|e| {
                TxError::Internal(format!("removing validated deletion root {root}: {e}"))
            })?
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        dir.prepare();
        report.extend(checker.check_deletion(dir, &batch));
        removed.extend(batch);
    }

    // A transaction with no mutations still needs a prepared instance for
    // callers that immediately query.
    dir.prepare();

    Ok(AppliedTx { inserted_roots, removed, report })
}

/// Like [`apply_and_check`] but **batched**: all insertions are applied
/// first and their Figure 5 Δ-queries checked in one wave
/// ([`IncrementalChecker::check_insertions`]), then all deletions are
/// applied and the union of removed entries checked once. With
/// [`LegalityOptions::parallel`] the Δ-query wave and the per-entry content
/// checks fan out over worker threads.
///
/// Because inserted subtrees are pairwise disjoint, the batched insertion
/// verdict equals the sequential per-subtree one. Batching the deletions
/// additionally checks them against the **final** instance, so a
/// transaction whose later deletion removes the witness of an earlier
/// one is judged by the end state — exactly the atomicity contract
/// [`ManagedDirectory`](crate::managed::ManagedDirectory) exposes, and
/// always in agreement with a full recheck of the final instance.
pub fn apply_and_check_with(
    schema: &DirectorySchema,
    dir: &mut DirectoryInstance,
    tx: &Transaction,
    options: LegalityOptions,
) -> Result<AppliedTx, TxError> {
    apply_and_check_probed(schema, dir, tx, options, bschema_obs::noop())
}

/// Like [`apply_and_check_with`] with an instrumentation probe attached
/// to the incremental checker. Behaviour and reports are unchanged; the
/// probe records the Figure 5 Δ-query counters and check spans.
pub fn apply_and_check_probed(
    schema: &DirectorySchema,
    dir: &mut DirectoryInstance,
    tx: &Transaction,
    options: LegalityOptions,
    probe: &dyn bschema_obs::Probe,
) -> Result<AppliedTx, TxError> {
    let normalized = tx.normalize(dir)?;
    let checker = IncrementalChecker::new(schema).with_options(options).with_probe(probe);
    let mut report = LegalityReport::legal();

    let mut inserted_roots = Vec::with_capacity(normalized.insertions.len());
    for subtree in &normalized.insertions {
        let ids = subtree.apply(dir)?;
        inserted_roots.push(*ids.first().ok_or_else(|| {
            TxError::Internal("normalised subtree insertion has no nodes".to_owned())
        })?);
    }
    if !inserted_roots.is_empty() {
        dir.prepare();
        report.extend(checker.check_insertions(dir, &inserted_roots));
    }

    let mut removed = Vec::new();
    for &root in &normalized.deletion_roots {
        removed.extend(
            dir.remove_subtree(root)
                .map_err(|e| {
                    TxError::Internal(format!("removing validated deletion root {root}: {e}"))
                })?
                .into_iter()
                .map(|(_, e)| e),
        );
    }
    if !removed.is_empty() {
        dir.prepare();
        report.extend(checker.check_deletion(dir, &removed));
    }

    dir.prepare();

    Ok(AppliedTx { inserted_roots, removed, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::LegalityChecker;
    use crate::paper::{white_pages_instance, white_pages_schema};

    fn researcher(uid: &str) -> Entry {
        Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", uid)
            .attr("name", uid)
            .build()
    }

    fn org_unit(ou: &str) -> Entry {
        Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", ou).build()
    }

    #[test]
    fn theorem_4_1_ordering_avoids_spurious_violations() {
        // The §4.1 motivating example: add a new orgUnit under attLabs and
        // persons under it. Checking op-by-op after the orgUnit alone would
        // flag orgGroup ⇒⇒ person; checking at subtree granularity does not.
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        let unit = tx.insert_under(ids.att_labs, org_unit("voice"));
        tx.insert_under_new(unit, researcher("alice"));
        tx.insert_under_new(unit, researcher("bob"));
        let applied = apply_and_check(&schema, &mut dir, &tx).unwrap();
        assert!(applied.report.is_legal(), "{}", applied.report);
        assert!(LegalityChecker::new(&schema).check(&dir).is_legal());
        assert_eq!(dir.len(), 9);
    }

    #[test]
    fn delete_then_insert_normalises_to_insert_first() {
        // Replace the databases unit wholesale: delete it (with laks and
        // suciu) and add a fresh unit with one researcher. Insert-first
        // ordering keeps every intermediate legal.
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.delete(ids.laks);
        tx.delete(ids.suciu);
        tx.delete(ids.databases);
        let unit = tx.insert_under(ids.att_labs, org_unit("systems"));
        tx.insert_under_new(unit, researcher("carol"));
        let applied = apply_and_check(&schema, &mut dir, &tx).unwrap();
        assert!(applied.report.is_legal(), "{}", applied.report);
        assert_eq!(applied.removed.len(), 3);
        assert!(LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn illegal_transaction_reports_violations() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.insert_under(ids.suciu, org_unit("oops")); // person gains a child
        let applied = apply_and_check(&schema, &mut dir, &tx).unwrap();
        assert!(!applied.report.is_legal());
        assert!(!LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn incremental_agrees_with_full_recheck_on_transactions() {
        // Several mixed transactions; for each, the incremental verdict must
        // match a from-scratch full check of the final instance (Theorems
        // 4.1 + 4.2 combined).
        let schema = white_pages_schema();
        let full = LegalityChecker::new(&schema);

        // Legal: add a staff member under attLabs.
        let (mut dir, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.insert_under(
            ids.att_labs,
            Entry::builder()
                .classes(["staffMember", "person", "top"])
                .attr("uid", "pat")
                .attr("name", "pat")
                .build(),
        );
        let applied = apply_and_check(&schema, &mut dir, &tx).unwrap();
        assert_eq!(applied.report.is_legal(), full.check(&dir).is_legal());

        // Illegal: delete every person under databases AND armstrong, so
        // attLabs (an orgGroup) loses all person descendants.
        let (mut dir, ids) = white_pages_instance();
        let mut tx = Transaction::new();
        tx.delete(ids.armstrong);
        tx.delete(ids.laks);
        tx.delete(ids.suciu);
        let applied = apply_and_check(&schema, &mut dir, &tx).unwrap();
        assert!(!applied.report.is_legal());
        assert_eq!(applied.report.is_legal(), full.check(&dir).is_legal());

        // Empty transaction: trivially legal.
        let (mut dir, _) = white_pages_instance();
        let tx = Transaction::new();
        let applied = apply_and_check(&schema, &mut dir, &tx).unwrap();
        assert!(applied.report.is_legal());
    }
}
