//! Entry modification (LDAP Modify, RFC 2251 §4.6) with incremental
//! legality checking.
//!
//! The paper's §4 treats insertions and deletions of entries; modifying an
//! existing entry's attributes is the third LDAP write. Its incremental
//! story follows from the same locality arguments:
//!
//! * if the modification does **not** touch `objectClass`, only the content
//!   schema of the one modified entry can change (content checks are
//!   per-entry, §3.1), plus key uniqueness for the touched attributes —
//!   nothing structural moves;
//! * if it **does** change the entry's class set, structure-schema elements
//!   mentioning the affected classes must be re-verified: the entry may have
//!   gained obligations (it joined a source class), lost its qualifying
//!   status for relatives (it left a target class), or created/ceased
//!   forbidden pairs. We re-run exactly the Figure 4 queries whose classes
//!   intersect the changed set — still a targeted recheck, not a full one.

use std::collections::BTreeSet;
use std::fmt;

use bschema_directory::{DirectoryInstance, EntryId, OBJECT_CLASS};
use bschema_query::{evaluate, EvalContext};

use crate::legality::report::{LegalityReport, Violation};
use crate::legality::{content, translate};
use crate::schema::DirectorySchema;

/// One attribute-level modification (RFC 2251 Modify operation kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mod {
    /// Add a value to an attribute.
    Add {
        /// The attribute.
        attribute: String,
        /// The value to add.
        value: String,
    },
    /// Delete one value of an attribute.
    DeleteValue {
        /// The attribute.
        attribute: String,
        /// The value to remove.
        value: String,
    },
    /// Delete an attribute with all its values.
    DeleteAttribute {
        /// The attribute.
        attribute: String,
    },
    /// Replace all values of an attribute.
    Replace {
        /// The attribute.
        attribute: String,
        /// The new values (empty = delete the attribute).
        values: Vec<String>,
    },
}

impl Mod {
    /// The attribute this modification touches (lowercased).
    pub fn attribute(&self) -> String {
        match self {
            Mod::Add { attribute, .. }
            | Mod::DeleteValue { attribute, .. }
            | Mod::DeleteAttribute { attribute }
            | Mod::Replace { attribute, .. } => attribute.to_ascii_lowercase(),
        }
    }

    /// Whether this modification touches the class set.
    pub fn touches_classes(&self) -> bool {
        self.attribute() == OBJECT_CLASS
    }
}

impl fmt::Display for Mod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mod::Add { attribute, value } => write!(f, "add {attribute}: {value}"),
            Mod::DeleteValue { attribute, value } => write!(f, "delete {attribute}: {value}"),
            Mod::DeleteAttribute { attribute } => write!(f, "delete {attribute}"),
            Mod::Replace { attribute, values } => {
                write!(f, "replace {attribute} with {} value(s)", values.len())
            }
        }
    }
}

/// Applies `mods` to `target` in `dir` (in order), without any legality
/// checking. Returns the set of (lowercased) class names whose membership
/// changed, for the caller's targeted recheck.
pub fn apply_mods(
    dir: &mut DirectoryInstance,
    target: EntryId,
    mods: &[Mod],
) -> Option<BTreeSet<String>> {
    let before: BTreeSet<String> =
        dir.entry(target)?.classes().iter().map(|c| c.to_ascii_lowercase()).collect();
    {
        let entry = dir.entry_mut(target)?;
        for m in mods {
            match m {
                Mod::Add { attribute, value } => {
                    entry.add_value(attribute, value.clone());
                }
                Mod::DeleteValue { attribute, value } => {
                    entry.remove_value(attribute, value);
                }
                Mod::DeleteAttribute { attribute } => {
                    entry.remove_attribute(attribute);
                }
                Mod::Replace { attribute, values } => {
                    entry.set_values(attribute, values.iter().cloned());
                }
            }
        }
    }
    let after: BTreeSet<String> =
        dir.entry(target)?.classes().iter().map(|c| c.to_ascii_lowercase()).collect();
    Some(before.symmetric_difference(&after).cloned().collect())
}

/// Incremental legality check after modifying one entry. `dir` is the
/// instance **after** the modification, prepared; `changed_classes` is
/// [`apply_mods`]' return value; the instance before is assumed legal.
pub fn check_modification(
    schema: &DirectorySchema,
    dir: &DirectoryInstance,
    target: EntryId,
    changed_classes: &BTreeSet<String>,
) -> LegalityReport {
    let mut out = Vec::new();

    // Content: the one modified entry.
    if let Some(entry) = dir.entry(target) {
        content::check_entry(schema, target, entry, &mut out);
    }

    // Keys: the modified entry's values against the rest.
    crate::legality::keys::check_insertion(schema, dir, target, &mut out);

    // Structure: only elements whose classes intersect the change set.
    if !changed_classes.is_empty() {
        let classes = schema.classes();
        let touched = |c: crate::schema::ClassId| {
            changed_classes.contains(&classes.name(c).to_ascii_lowercase())
        };
        let ctx = EvalContext::new(dir);
        for class in schema.structure().required_classes() {
            if touched(class)
                && evaluate(&ctx, &translate::required_class_query(schema, class)).is_empty()
            {
                out.push(Violation::MissingRequiredClass { class: classes.name(class).to_owned() });
            }
        }
        for rel in schema.structure().required_rels() {
            if !(touched(rel.source) || touched(rel.target)) {
                continue;
            }
            let q = translate::required_rel_query(schema, rel);
            for witness in evaluate(&ctx, &q) {
                out.push(Violation::RequiredRelViolation {
                    entry: witness,
                    source: classes.name(rel.source).to_owned(),
                    kind: rel.kind,
                    target: classes.name(rel.target).to_owned(),
                });
            }
        }
        for rel in schema.structure().forbidden_rels() {
            if !(touched(rel.upper) || touched(rel.lower)) {
                continue;
            }
            let q = translate::forbidden_rel_query(schema, rel);
            for witness in evaluate(&ctx, &q) {
                out.push(Violation::ForbiddenRelViolation {
                    entry: witness,
                    upper: classes.name(rel.upper).to_owned(),
                    kind: rel.kind,
                    lower: classes.name(rel.lower).to_owned(),
                });
            }
        }
    }

    LegalityReport::from_violations(out).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::LegalityChecker;
    use crate::paper::{white_pages_instance, white_pages_schema};

    #[test]
    fn content_only_modification() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        // Legal: add a phone number to laks.
        let changed = apply_mods(
            &mut dir,
            ids.laks,
            &[Mod::Add { attribute: "telephoneNumber".into(), value: "+1 514 848 2424".into() }],
        )
        .unwrap();
        assert!(changed.is_empty(), "no class change");
        dir.prepare();
        let report = check_modification(&schema, &dir, ids.laks, &changed);
        assert!(report.is_legal(), "{report}");
        assert!(LegalityChecker::new(&schema).check(&dir).is_legal());

        // Illegal: remove a required attribute.
        let changed =
            apply_mods(&mut dir, ids.suciu, &[Mod::DeleteAttribute { attribute: "name".into() }])
                .unwrap();
        dir.prepare();
        let report = check_modification(&schema, &dir, ids.suciu, &changed);
        assert!(!report.is_legal());
        assert_eq!(report.is_legal(), LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn class_changing_modification_rechecks_structure() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        // Turning armstrong's staffMember into researcher: still legal
        // (researcher is a person subclass and armstrong's parent is a
        // unit).
        let changed = apply_mods(
            &mut dir,
            ids.armstrong,
            &[
                Mod::DeleteValue { attribute: "objectClass".into(), value: "staffMember".into() },
                Mod::Add { attribute: "objectClass".into(), value: "researcher".into() },
            ],
        )
        .unwrap();
        assert_eq!(changed.len(), 2);
        dir.prepare();
        let report = check_modification(&schema, &dir, ids.armstrong, &changed);
        assert!(report.is_legal(), "{report}");

        // Dropping person from laks breaks content (researcher without its
        // superclass) AND structure for ancestors needing person
        // descendants is still fine (suciu remains)... then dropping
        // suciu's person too starves `databases`.
        let changed = apply_mods(
            &mut dir,
            ids.laks,
            &[Mod::DeleteValue { attribute: "objectClass".into(), value: "person".into() }],
        )
        .unwrap();
        dir.prepare();
        let report = check_modification(&schema, &dir, ids.laks, &changed);
        assert!(!report.is_legal());
        assert_eq!(report.is_legal(), LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn structure_breaking_class_change_matches_full_check() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        // Remove person+researcher from BOTH researchers: databases (an
        // orgGroup) loses every person descendant.
        for id in [ids.laks, ids.suciu] {
            let changed = apply_mods(
                &mut dir,
                id,
                &[
                    Mod::DeleteValue { attribute: "objectClass".into(), value: "person".into() },
                    Mod::DeleteValue {
                        attribute: "objectClass".into(),
                        value: "researcher".into(),
                    },
                ],
            )
            .unwrap();
            assert!(changed.contains("person"));
        }
        dir.prepare();
        let changed: BTreeSet<String> = ["person".to_owned(), "researcher".to_owned()].into();
        let report = check_modification(&schema, &dir, ids.laks, &changed);
        let full = LegalityChecker::new(&schema).check(&dir);
        assert!(!report.is_legal());
        assert_eq!(report.is_legal(), full.is_legal());
        assert!(report.violations().iter().any(|v| matches!(
            v,
            Violation::RequiredRelViolation { entry, .. } if *entry == ids.databases
        )));
    }

    #[test]
    fn replace_and_delete_value_semantics() {
        let (mut dir, ids) = white_pages_instance();
        apply_mods(
            &mut dir,
            ids.laks,
            &[Mod::Replace { attribute: "mail".into(), values: vec!["laks@new.example".into()] }],
        )
        .unwrap();
        assert_eq!(dir.entry(ids.laks).unwrap().values("mail"), ["laks@new.example"]);
        apply_mods(
            &mut dir,
            ids.laks,
            &[Mod::Replace { attribute: "mail".into(), values: vec![] }],
        )
        .unwrap();
        assert!(!dir.entry(ids.laks).unwrap().has_attribute("mail"));
        // Missing target → None.
        let ghost = EntryId::from_index(999);
        assert!(apply_mods(&mut dir, ghost, &[]).is_none());
    }
}
