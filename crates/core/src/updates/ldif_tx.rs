//! Building a [`Transaction`] from LDIF change records.
//!
//! This is the one decoding path shared by every surface that accepts
//! transactions as LDIF bytes — the CLI `apply` command and the wire
//! server's `TXN` frames — so both enforce identical semantics: a record
//! with `changetype: delete` deletes the named subtree root (which must
//! exist), any other record is an insertion attached to its parent DN,
//! where the parent may be an existing entry or an earlier insertion in
//! the same transaction.

use std::collections::HashMap;
use std::fmt;

use bschema_directory::ldif::LdifRecord;
use bschema_directory::DirectoryInstance;

use super::Transaction;

/// A record that cannot be turned into a transaction operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdifTxError {
    /// 1-based source line of the offending record.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for LdifTxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for LdifTxError {}

/// Decodes parsed LDIF records into an insertion/deletion [`Transaction`]
/// against `dir`. DNs are resolved at build time, so the caller must hold
/// the directory stable between building and applying (the server builds
/// under its write lock for exactly this reason).
pub fn transaction_from_ldif(
    dir: &DirectoryInstance,
    records: Vec<LdifRecord>,
) -> Result<Transaction, LdifTxError> {
    let mut tx = Transaction::new();
    let mut pending: HashMap<String, usize> = HashMap::new();
    for mut rec in records {
        if rec.entry.first_value("changetype").is_some_and(|c| c.eq_ignore_ascii_case("delete")) {
            let id = dir.lookup_dn(&rec.dn).ok_or_else(|| LdifTxError {
                line: rec.line,
                reason: format!("cannot delete {:?}: no such entry", rec.dn.to_normalized_string()),
            })?;
            tx.delete(id);
            continue;
        }
        rec.entry.remove_attribute("changetype");
        let rdn = rec.dn.rdn().cloned().ok_or_else(|| LdifTxError {
            line: rec.line,
            reason: "insertion record has an empty dn".to_owned(),
        })?;
        let op = match rec.dn.parent() {
            Some(parent) if !parent.is_root() => {
                if let Some(id) = dir.lookup_dn(&parent) {
                    tx.insert_under_named(id, rdn, rec.entry)
                } else if let Some(&parent_op) = pending.get(&parent.to_normalized_string()) {
                    tx.insert_under_new_named(parent_op, rdn, rec.entry)
                } else {
                    return Err(LdifTxError {
                        line: rec.line,
                        reason: format!(
                            "parent of {:?} is neither in the directory nor earlier in the transaction",
                            rec.dn.to_normalized_string()
                        ),
                    });
                }
            }
            _ => tx.insert_root_named(rdn, rec.entry),
        };
        pending.insert(rec.dn.to_normalized_string(), op);
    }
    Ok(tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::white_pages_instance;
    use bschema_directory::ldif::parse_ldif;

    #[test]
    fn insertions_resolve_existing_and_pending_parents() {
        let (dir, _) = white_pages_instance();
        let text = "\
dn: ou=voice,ou=attLabs,o=att
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: voice

dn: uid=zoe,ou=voice,ou=attLabs,o=att
objectClass: person
objectClass: top
uid: zoe
name: zoe
";
        let tx = transaction_from_ldif(&dir, parse_ldif(text).expect("valid ldif"))
            .expect("builds transaction");
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn delete_of_missing_entry_is_an_error() {
        let (dir, _) = white_pages_instance();
        let text = "dn: uid=nobody,o=att\nchangetype: delete\n";
        let err = transaction_from_ldif(&dir, parse_ldif(text).expect("valid ldif")).unwrap_err();
        assert!(err.reason.contains("no such entry"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn orphan_insertion_is_an_error() {
        let (dir, _) = white_pages_instance();
        let text = "dn: uid=zoe,ou=nowhere,o=att\nobjectClass: person\nobjectClass: top\n";
        let err = transaction_from_ldif(&dir, parse_ldif(text).expect("valid ldif")).unwrap_err();
        assert!(err.reason.contains("neither in the directory"), "{err}");
    }
}
