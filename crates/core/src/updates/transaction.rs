//! Update transactions and their Theorem 4.1 normalisation.
//!
//! §4.1: a transaction is "a sequence of distinct directory entry insertions
//! and deletions", constrained by the LDAP update discipline (new entries
//! under existing parents or as roots; only leaves deletable). Checking
//! legality per single operation is not robust — a violation introduced by
//! one operation may be repaired by a later one — so Theorem 4.1 abstracts a
//! transaction as **inserting a set of subtrees and deleting a set of
//! subtrees**, no two subtree roots forming an (ancestor, descendant) pair:
//! the final instance is legal iff each instance along the
//! insert-subtrees-then-delete-subtrees sequence is legal.
//!
//! [`Transaction::normalize`] computes that canonical form.

use std::collections::HashSet;
use std::fmt;

use bschema_directory::{DirectoryInstance, Entry, EntryId, InstanceError, Rdn};

/// Reference to a parent: an entry that already exists, or one created by an
/// earlier insert op of the same transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// A pre-existing entry.
    Existing(EntryId),
    /// The entry created by op `i` of this transaction.
    New(usize),
}

/// One operation of a transaction.
#[derive(Debug, Clone)]
pub enum TxOp {
    /// Insert `entry` under `parent` (`None` = new forest root).
    Insert {
        /// Where the new entry goes.
        parent: Option<NodeRef>,
        /// The new entry's name among its siblings. `None` inserts an
        /// anonymous entry (library-internal use); named inserts are
        /// required for the entry to be addressable by DN afterwards.
        rdn: Option<Rdn>,
        /// The new entry's content.
        entry: Entry,
    },
    /// Delete the (existing) entry `target`.
    Delete {
        /// The entry to delete.
        target: EntryId,
    },
}

/// A sequence of entry-level insertions and deletions.
#[derive(Debug, Clone, Default)]
pub struct Transaction {
    ops: Vec<TxOp>,
}

/// Errors detected during normalisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// An insert referenced op `i`, which is not an earlier insert op.
    BadNewRef {
        /// The referencing op.
        op: usize,
        /// The bogus referenced index.
        referenced: usize,
    },
    /// An insert's existing parent is not a live entry.
    InsertUnderMissing {
        /// The referencing op.
        op: usize,
        /// The missing parent.
        parent: EntryId,
    },
    /// An insert targets a parent that this transaction also deletes.
    InsertUnderDeleted {
        /// The referencing op.
        op: usize,
        /// The doomed parent.
        parent: EntryId,
    },
    /// A delete targets an entry that does not exist.
    DeleteMissing(EntryId),
    /// The same entry is deleted twice.
    DuplicateDelete(EntryId),
    /// A deleted entry has a child that is not also deleted — the LDAP
    /// leaf-only discipline makes such a sequence unrealisable.
    DeleteLeavesOrphan {
        /// The deleted entry.
        deleted: EntryId,
        /// Its surviving child.
        survivor: EntryId,
    },
    /// A named insert's RDN collides with a sibling under the same
    /// parent — either a pre-existing entry or one created earlier in
    /// the same transaction.
    DuplicateRdn {
        /// The subtree-local node index of the colliding insert.
        node: usize,
        /// The colliding RDN, rendered for display.
        rdn: String,
    },
    /// An invariant the normalisation established failed to hold while
    /// the transaction was applied — an engine bug surfaced as a typed
    /// error instead of a panic, so callers can roll back.
    Internal(String),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::BadNewRef { op, referenced } => {
                write!(f, "op {op}: references op {referenced}, which is not an earlier insert")
            }
            TxError::InsertUnderMissing { op, parent } => {
                write!(f, "op {op}: parent {parent} does not exist")
            }
            TxError::InsertUnderDeleted { op, parent } => {
                write!(f, "op {op}: parent {parent} is deleted by the same transaction")
            }
            TxError::DeleteMissing(id) => write!(f, "delete of non-existent entry {id}"),
            TxError::DuplicateDelete(id) => write!(f, "entry {id} deleted twice"),
            TxError::DeleteLeavesOrphan { deleted, survivor } => write!(
                f,
                "entry {deleted} is deleted but its child {survivor} is not (LDAP permits leaf deletion only)"
            ),
            TxError::DuplicateRdn { node, rdn } => {
                write!(f, "insert node {node}: an entry named {rdn} already exists under that parent")
            }
            TxError::Internal(detail) => write!(f, "internal engine error: {detail}"),
        }
    }
}

impl std::error::Error for TxError {}

/// One subtree to insert: `nodes[0]` is the subtree root; each node names
/// its parent as an index into `nodes` (`None` only for the root).
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeInsertion {
    /// The existing entry the subtree hangs under (`None` = forest root).
    pub parent: Option<EntryId>,
    /// Preorder node list: `(local_parent_index, rdn, entry)`.
    pub nodes: Vec<(Option<usize>, Option<Rdn>, Entry)>,
}

impl SubtreeInsertion {
    /// Number of entries in the subtree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Subtrees are never empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Applies this insertion to `dir`, returning the created ids (parallel
    /// to `nodes`; `ids[0]` is the subtree root). Fails with
    /// [`TxError::DuplicateRdn`] when a named node collides with an
    /// existing sibling — the one apply-time conflict two independently
    /// normalised transactions can have — and with
    /// [`TxError::Internal`] only if an invariant normalisation
    /// established no longer holds (e.g. the validated parent vanished
    /// between normalise and apply).
    pub fn apply(&self, dir: &mut DirectoryInstance) -> Result<Vec<EntryId>, TxError> {
        let mut ids: Vec<EntryId> = Vec::with_capacity(self.nodes.len());
        for (node, (local_parent, rdn, entry)) in self.nodes.iter().enumerate() {
            let parent = match local_parent {
                Some(i) => Some(*ids.get(*i).ok_or_else(|| {
                    TxError::Internal(format!(
                        "subtree node {node} references local parent {i}, which was not created"
                    ))
                })?),
                None => self.parent,
            };
            let named = |e: InstanceError, rdn: &Rdn| match e {
                InstanceError::DuplicateRdn(_) => {
                    TxError::DuplicateRdn { node, rdn: rdn.to_string() }
                }
                other => TxError::Internal(format!("inserting subtree node {node}: {other}")),
            };
            let id = match (parent, rdn) {
                (Some(p), Some(rdn)) => {
                    dir.add_named_child(p, rdn.clone(), entry.clone()).map_err(|e| named(e, rdn))?
                }
                (Some(p), None) => dir.add_child_entry(p, entry.clone()).map_err(|e| {
                    TxError::Internal(format!(
                        "inserting subtree node {node} under validated parent {p}: {e}"
                    ))
                })?,
                (None, Some(rdn)) => {
                    dir.add_named_root(rdn.clone(), entry.clone()).map_err(|e| named(e, rdn))?
                }
                (None, None) => dir.add_root_entry(entry.clone()),
            };
            ids.push(id);
        }
        Ok(ids)
    }
}

/// The Theorem 4.1 canonical form: subtree insertions, then subtree
/// deletions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NormalizedTx {
    /// Subtrees to insert, in first-touched order.
    pub insertions: Vec<SubtreeInsertion>,
    /// Roots of subtrees to delete. No root is an ancestor of another, and
    /// each deleted subtree is fully contained in the delete set.
    pub deletion_roots: Vec<EntryId>,
}

impl Transaction {
    /// An empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insert under an existing entry; returns the op index for
    /// use with [`insert_under_new`](Self::insert_under_new).
    pub fn insert_under(&mut self, parent: EntryId, entry: Entry) -> usize {
        self.ops.push(TxOp::Insert { parent: Some(NodeRef::Existing(parent)), rdn: None, entry });
        self.ops.len() - 1
    }

    /// Appends an insert as a new forest root; returns the op index.
    pub fn insert_root(&mut self, entry: Entry) -> usize {
        self.ops.push(TxOp::Insert { parent: None, rdn: None, entry });
        self.ops.len() - 1
    }

    /// Appends an insert under the entry created by a previous insert op.
    pub fn insert_under_new(&mut self, parent_op: usize, entry: Entry) -> usize {
        self.ops.push(TxOp::Insert { parent: Some(NodeRef::New(parent_op)), rdn: None, entry });
        self.ops.len() - 1
    }

    /// Like [`insert_under`](Self::insert_under), naming the new entry so
    /// it is addressable by DN; colliding with an existing sibling RDN
    /// fails the transaction at apply time.
    pub fn insert_under_named(&mut self, parent: EntryId, rdn: Rdn, entry: Entry) -> usize {
        self.ops.push(TxOp::Insert {
            parent: Some(NodeRef::Existing(parent)),
            rdn: Some(rdn),
            entry,
        });
        self.ops.len() - 1
    }

    /// Like [`insert_root`](Self::insert_root), naming the new root.
    pub fn insert_root_named(&mut self, rdn: Rdn, entry: Entry) -> usize {
        self.ops.push(TxOp::Insert { parent: None, rdn: Some(rdn), entry });
        self.ops.len() - 1
    }

    /// Like [`insert_under_new`](Self::insert_under_new), naming the new
    /// entry.
    pub fn insert_under_new_named(&mut self, parent_op: usize, rdn: Rdn, entry: Entry) -> usize {
        self.ops.push(TxOp::Insert {
            parent: Some(NodeRef::New(parent_op)),
            rdn: Some(rdn),
            entry,
        });
        self.ops.len() - 1
    }

    /// Appends a delete.
    pub fn delete(&mut self, target: EntryId) {
        self.ops.push(TxOp::Delete { target });
    }

    /// The raw operations.
    pub fn ops(&self) -> &[TxOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Theorem 4.1 normalisation: validates the transaction against `dir`
    /// and groups it into subtree insertions followed by subtree deletions.
    pub fn normalize(&self, dir: &DirectoryInstance) -> Result<NormalizedTx, TxError> {
        // Collect the delete set first; inserts must not target it.
        let mut deleted: HashSet<EntryId> = HashSet::new();
        for op in &self.ops {
            if let TxOp::Delete { target } = op {
                if !dir.contains(*target) {
                    return Err(TxError::DeleteMissing(*target));
                }
                if !deleted.insert(*target) {
                    return Err(TxError::DuplicateDelete(*target));
                }
            }
        }
        // Closure check: every child of a deleted entry must be deleted.
        for &d in &deleted {
            for child in dir.forest().children(d) {
                if !deleted.contains(&child) {
                    return Err(TxError::DeleteLeavesOrphan { deleted: d, survivor: child });
                }
            }
        }
        // Deletion roots: deleted entries whose parent is not deleted.
        let mut deletion_roots: Vec<EntryId> = deleted
            .iter()
            .copied()
            .filter(|&d| dir.forest().parent(d).is_none_or(|p| !deleted.contains(&p)))
            .collect();
        deletion_roots.sort_unstable();

        // Group inserts into subtrees.
        let mut insertions: Vec<SubtreeInsertion> = Vec::new();
        // op index → (subtree index, local node index)
        let mut op_place: Vec<Option<(usize, usize)>> = vec![None; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            let TxOp::Insert { parent, rdn, entry } = op else {
                continue;
            };
            match parent {
                None => {
                    insertions.push(SubtreeInsertion {
                        parent: None,
                        nodes: vec![(None, rdn.clone(), entry.clone())],
                    });
                    op_place[i] = Some((insertions.len() - 1, 0));
                }
                Some(NodeRef::Existing(p)) => {
                    if !dir.contains(*p) {
                        return Err(TxError::InsertUnderMissing { op: i, parent: *p });
                    }
                    if deleted.contains(p) {
                        return Err(TxError::InsertUnderDeleted { op: i, parent: *p });
                    }
                    insertions.push(SubtreeInsertion {
                        parent: Some(*p),
                        nodes: vec![(None, rdn.clone(), entry.clone())],
                    });
                    op_place[i] = Some((insertions.len() - 1, 0));
                }
                Some(NodeRef::New(j)) => {
                    let Some((subtree, local)) = (*j < i).then(|| op_place[*j]).flatten() else {
                        return Err(TxError::BadNewRef { op: i, referenced: *j });
                    };
                    insertions[subtree].nodes.push((Some(local), rdn.clone(), entry.clone()));
                    op_place[i] = Some((subtree, insertions[subtree].nodes.len() - 1));
                }
            }
        }

        Ok(NormalizedTx { insertions, deletion_roots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_directory::Entry;

    fn person(uid: &str) -> Entry {
        Entry::builder().classes(["person", "top"]).attr("uid", uid).build()
    }

    fn base() -> (DirectoryInstance, EntryId, EntryId, EntryId) {
        let mut d = DirectoryInstance::default();
        let root = d.add_root_entry(person("root"));
        let mid = d.add_child_entry(root, person("mid")).unwrap();
        let leaf = d.add_child_entry(mid, person("leaf")).unwrap();
        (d, root, mid, leaf)
    }

    #[test]
    fn inserts_group_into_subtrees() {
        let (d, root, mid, _) = base();
        let mut tx = Transaction::new();
        let a = tx.insert_under(root, person("a"));
        let b = tx.insert_under_new(a, person("b"));
        let _c = tx.insert_under_new(b, person("c"));
        let _d2 = tx.insert_under_new(a, person("d"));
        let _e = tx.insert_under(mid, person("e"));
        let n = tx.normalize(&d).unwrap();
        assert_eq!(n.insertions.len(), 2);
        assert_eq!(n.insertions[0].len(), 4); // a,b,c,d — one subtree
        assert_eq!(n.insertions[0].parent, Some(root));
        assert_eq!(n.insertions[1].len(), 1);
        assert_eq!(n.insertions[1].parent, Some(mid));
        assert!(n.deletion_roots.is_empty());
    }

    #[test]
    fn deletions_collapse_to_roots() {
        let (d, _root, mid, leaf) = base();
        let mut tx = Transaction::new();
        tx.delete(leaf);
        tx.delete(mid);
        let n = tx.normalize(&d).unwrap();
        assert_eq!(n.deletion_roots, [mid]);
        assert!(n.insertions.is_empty());
    }

    #[test]
    fn orphaning_delete_rejected() {
        let (d, _root, mid, leaf) = base();
        let mut tx = Transaction::new();
        tx.delete(mid); // leaf survives → unrealisable via leaf deletions
        assert_eq!(
            tx.normalize(&d),
            Err(TxError::DeleteLeavesOrphan { deleted: mid, survivor: leaf })
        );
    }

    #[test]
    fn insert_under_deleted_rejected() {
        let (d, _root, _mid, leaf) = base();
        let mut tx = Transaction::new();
        tx.delete(leaf);
        let op = tx.insert_under(leaf, person("x"));
        assert_eq!(tx.normalize(&d), Err(TxError::InsertUnderDeleted { op, parent: leaf }));
    }

    #[test]
    fn bad_refs_rejected() {
        let (d, root, _, _) = base();
        let mut tx = Transaction::new();
        tx.delete(root); // root has child mid → orphan error comes first? No:
                         // use a fresh tx to test each error precisely.
        let mut tx = Transaction::new();
        tx.insert_under_new(5, person("x"));
        assert_eq!(tx.normalize(&d), Err(TxError::BadNewRef { op: 0, referenced: 5 }));

        let mut tx = Transaction::new();
        let del = tx.insert_root(person("y")); // op 0 is insert
        let _ = del;
        tx.delete(EntryId::from_index(999));
        assert_eq!(tx.normalize(&d), Err(TxError::DeleteMissing(EntryId::from_index(999))));

        let (d, _, _, leaf) = base();
        let mut tx = Transaction::new();
        tx.delete(leaf);
        tx.delete(leaf);
        assert_eq!(tx.normalize(&d), Err(TxError::DuplicateDelete(leaf)));
    }

    #[test]
    fn referencing_a_delete_op_as_parent_fails() {
        let (d, _, _, leaf) = base();
        let mut tx = Transaction::new();
        tx.delete(leaf); // op 0
        tx.insert_under_new(0, person("x")); // op 0 is not an insert
        assert_eq!(tx.normalize(&d), Err(TxError::BadNewRef { op: 1, referenced: 0 }));
    }

    #[test]
    fn apply_subtree_insertion() {
        let (mut d, root, _, _) = base();
        let mut tx = Transaction::new();
        let a = tx.insert_under(root, person("a"));
        tx.insert_under_new(a, person("b"));
        let n = tx.normalize(&d).unwrap();
        let ids = n.insertions[0].apply(&mut d).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(d.forest().parent(ids[0]), Some(root));
        assert_eq!(d.forest().parent(ids[1]), Some(ids[0]));
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn named_inserts_are_addressable_and_conflict_on_duplicate_rdn() {
        let mut d = DirectoryInstance::default();
        let root = d.add_named_root(Rdn::single("o", "acme"), person("acme")).unwrap();

        let mut tx = Transaction::new();
        let a = tx.insert_under_named(root, Rdn::single("uid", "a"), person("a"));
        tx.insert_under_new_named(a, Rdn::single("uid", "kid"), person("kid"));
        let n = tx.normalize(&d).unwrap();
        let ids = n.insertions[0].apply(&mut d).unwrap();
        assert_eq!(d.dn(ids[1]).unwrap().to_string(), "uid=kid,uid=a,o=acme");

        // A second transaction inserting the same name under the same
        // parent conflicts at apply time.
        let mut tx = Transaction::new();
        tx.insert_under_named(root, Rdn::single("uid", "A"), person("a2"));
        let n = tx.normalize(&d).unwrap();
        let err = n.insertions[0].apply(&mut d).unwrap_err();
        assert!(matches!(err, TxError::DuplicateRdn { node: 0, .. }), "{err}");
    }

    #[test]
    fn root_insertions() {
        let (d, ..) = base();
        let mut tx = Transaction::new();
        let r = tx.insert_root(person("new-root"));
        tx.insert_under_new(r, person("kid"));
        let n = tx.normalize(&d).unwrap();
        assert_eq!(n.insertions.len(), 1);
        assert_eq!(n.insertions[0].parent, None);
        assert_eq!(n.insertions[0].len(), 2);
    }
}
