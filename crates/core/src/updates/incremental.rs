//! Incremental legality testing: the Figure 5 Δ-query table (§4.2,
//! Theorem 4.2).
//!
//! Given a legal instance `D` and a single subtree update `∆D`, most
//! structural relationships can be re-verified by a **Δ-query** — the
//! Figure 4 translation with each atomic selection re-bound to `∅`, `∆D`,
//! or the whole updated instance:
//!
//! | element | insertion | deletion |
//! |---|---|---|
//! | `ci →ch cj` | yes — all `[∆D]` | **no** — recheck on `D−∆D` |
//! | `ci →pa cj` | yes — source `[∆D]`, target `[D+∆D]` | yes — nothing to check |
//! | `ci →de cj` | yes — all `[∆D]` | **no** — recheck on `D−∆D` |
//! | `ci →an cj` | yes — source `[∆D]`, target `[D+∆D]` | yes — nothing to check |
//! | `ci ↛ch cj` | yes — upper `[D+∆D]`, lower `[∆D]` | yes — nothing to check |
//! | `ci ↛de cj` | yes — upper `[D+∆D]`, lower `[∆D]` | yes — nothing to check |
//! | `◇c` | nothing to check | testable given class counts |
//!
//! The content schema is fully incremental both ways: insertion checks only
//! the new entries; deletion checks nothing (§4.2).

use bschema_directory::{DirectoryInstance, Entry, EntryId};
use bschema_obs::{Probe, SpanId, NO_SPAN};
use bschema_query::{evaluate, evaluate_batch, Binding, EvalContext, Filter, Query};

use crate::legality::report::{LegalityReport, Violation};
use crate::legality::{content, translate, LegalityOptions};
use crate::schema::{DirectorySchema, ForbidKind, ForbiddenRel, RelKind, RequiredRel};

/// Figure 5 row label for a required relationship, as used in the
/// `incremental.delta_query.*` / `incremental.recheck.*` counters.
fn required_row(kind: RelKind) -> &'static str {
    match kind {
        RelKind::Child => "require_child",
        RelKind::Parent => "require_parent",
        RelKind::Descendant => "require_descendant",
        RelKind::Ancestor => "require_ancestor",
    }
}

/// Figure 5 row label for a forbidden relationship.
fn forbidden_row(kind: ForbidKind) -> &'static str {
    match kind {
        ForbidKind::Child => "forbid_child",
        ForbidKind::Descendant => "forbid_descendant",
    }
}

/// Figure 5, required-relationship insertion rows: the Δ-query whose
/// emptiness certifies that inserting the `∆D` subtree preserved `rel`.
pub fn insertion_delta_query(schema: &DirectorySchema, rel: &RequiredRel) -> Query {
    let classes = schema.classes();
    let src = |b: Binding| Query::select_bound(Filter::object_class(classes.name(rel.source)), b);
    let tgt = |b: Binding| Query::select_bound(Filter::object_class(classes.name(rel.target)), b);
    match rel.kind {
        // New entries' children/descendants all lie inside ∆D.
        RelKind::Child => {
            src(Binding::Delta).minus(src(Binding::Delta).with_child(tgt(Binding::Delta)))
        }
        RelKind::Descendant => {
            src(Binding::Delta).minus(src(Binding::Delta).with_descendant(tgt(Binding::Delta)))
        }
        // New entries' parents/ancestors may lie outside ∆D.
        RelKind::Parent => {
            src(Binding::Delta).minus(src(Binding::Delta).with_parent(tgt(Binding::Whole)))
        }
        RelKind::Ancestor => {
            src(Binding::Delta).minus(src(Binding::Delta).with_ancestor(tgt(Binding::Whole)))
        }
    }
}

/// Figure 5, forbidden-relationship insertion rows: every newly created
/// (upper, lower) pair has its lower end inside `∆D`.
pub fn insertion_delta_query_forbidden(schema: &DirectorySchema, rel: &ForbiddenRel) -> Query {
    let classes = schema.classes();
    let upper = Query::select_bound(Filter::object_class(classes.name(rel.upper)), Binding::Whole);
    let lower = Query::select_bound(Filter::object_class(classes.name(rel.lower)), Binding::Delta);
    match rel.kind {
        crate::schema::ForbidKind::Child => upper.with_child(lower),
        crate::schema::ForbidKind::Descendant => upper.with_descendant(lower),
    }
}

/// Figure 5, deletion column for required relationships: `true` for the
/// child/descendant rows, which are **not** incrementally testable and
/// require a full recheck on `D − ∆D`.
pub fn deletion_needs_recheck(kind: RelKind) -> bool {
    matches!(kind, RelKind::Child | RelKind::Descendant)
}

/// The incremental checker for subtree updates — single-subtree
/// ([`check_insertion`](Self::check_insertion)) or batched multi-subtree
/// ([`check_insertions`](Self::check_insertions)).
#[derive(Debug, Clone)]
pub struct IncrementalChecker<'s> {
    schema: &'s DirectorySchema,
    validate_values: bool,
    options: LegalityOptions,
    probe: &'s dyn Probe,
}

/// One Δ-query evaluation unit of a batched insertion check: a delta root
/// paired with a structure-schema element. Units are independent, so a
/// multi-subtree transaction fans them all out at once.
enum DeltaJob<'s> {
    Required(EntryId, &'s RequiredRel),
    Forbidden(EntryId, &'s ForbiddenRel),
}

impl<'s> IncrementalChecker<'s> {
    /// A checker for `schema`.
    pub fn new(schema: &'s DirectorySchema) -> Self {
        IncrementalChecker {
            schema,
            validate_values: false,
            options: LegalityOptions::default(),
            probe: bschema_obs::noop(),
        }
    }

    /// Attaches an instrumentation probe (spans + Figure 5 row counters).
    /// Checking behaviour and reports are unchanged.
    pub fn with_probe(mut self, probe: &'s dyn Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Also validate value syntaxes of inserted entries.
    pub fn with_value_validation(mut self, on: bool) -> Self {
        self.validate_values = on;
        self
    }

    /// Selects the execution engine (sequential or data-parallel). The
    /// reports are identical either way; only the wall-clock differs.
    pub fn with_options(mut self, options: LegalityOptions) -> Self {
        self.options = options;
        self
    }

    /// Worker-thread count for the parallel helpers: `1` (inline) unless
    /// the parallel engine was selected.
    fn threads(&self) -> usize {
        if self.options.parallel {
            self.options.threads
        } else {
            1
        }
    }

    /// Evaluates the Figure 5 insertion Δ-queries for every (delta root,
    /// structure element) pair, appending witnesses as violations in
    /// root-major, required-before-forbidden order — the order the
    /// sequential per-root loops produce.
    fn structure_delta_violations(
        &self,
        dir: &DirectoryInstance,
        roots: &[EntryId],
        parent: SpanId,
        out: &mut Vec<Violation>,
    ) {
        let probe = self.probe;
        let structure = self.schema.structure();
        let mut jobs: Vec<DeltaJob<'s>> = Vec::with_capacity(
            roots.len() * (structure.required_rels().len() + structure.forbidden_rels().len()),
        );
        // Count Δ-queries per Figure 5 row here, at job construction on
        // the caller's thread, so the counters are deterministic no
        // matter how the jobs are chunked over workers.
        for &root in roots {
            for rel in structure.required_rels() {
                if probe.enabled() {
                    probe.add_labeled("incremental.delta_query", required_row(rel.kind), 1);
                }
                jobs.push(DeltaJob::Required(root, rel));
            }
            for rel in structure.forbidden_rels() {
                if probe.enabled() {
                    probe.add_labeled("incremental.delta_query", forbidden_row(rel.kind), 1);
                }
                jobs.push(DeltaJob::Forbidden(root, rel));
            }
        }
        let classes = self.schema.classes();
        let found =
            bschema_parallel::par_flat_map_chunks_indexed(&jobs, self.threads(), |i, chunk| {
                let span = probe.span_start(parent, "chunk", i as u64);
                let started = probe.enabled().then(std::time::Instant::now);
                let mut local = Vec::new();
                // One child span per Δ-query, named by its Figure 5 row
                // and ordered by in-chunk position, so a request trace
                // attributes time to individual rows deterministically.
                for (j, job) in chunk.iter().enumerate() {
                    match *job {
                        DeltaJob::Required(root, rel) => {
                            let row = probe.span_start(span, required_row(rel.kind), j as u64);
                            let ctx = EvalContext::with_delta(dir, root).with_probe(probe);
                            let q = insertion_delta_query(self.schema, rel);
                            for witness in evaluate(&ctx, &q) {
                                local.push(Violation::RequiredRelViolation {
                                    entry: witness,
                                    source: classes.name(rel.source).to_owned(),
                                    kind: rel.kind,
                                    target: classes.name(rel.target).to_owned(),
                                });
                            }
                            probe.span_end(row);
                        }
                        DeltaJob::Forbidden(root, rel) => {
                            let row = probe.span_start(span, forbidden_row(rel.kind), j as u64);
                            let ctx = EvalContext::with_delta(dir, root).with_probe(probe);
                            let q = insertion_delta_query_forbidden(self.schema, rel);
                            for witness in evaluate(&ctx, &q) {
                                local.push(Violation::ForbiddenRelViolation {
                                    entry: witness,
                                    upper: classes.name(rel.upper).to_owned(),
                                    kind: rel.kind,
                                    lower: classes.name(rel.lower).to_owned(),
                                });
                            }
                            probe.span_end(row);
                        }
                    }
                }
                if let Some(start) = started {
                    probe.add("parallel.chunks", 1);
                    probe.observe("parallel.chunk_us", start.elapsed().as_micros() as u64);
                }
                probe.span_end(span);
                local
            });
        out.extend(found);
    }

    /// Content-schema check of every entry in the given delta subtrees,
    /// fanned out over the configured workers.
    fn content_delta_violations(
        &self,
        dir: &DirectoryInstance,
        roots: &[EntryId],
        parent: SpanId,
        out: &mut Vec<Violation>,
    ) {
        let probe = self.probe;
        let forest = dir.forest();
        let entries: Vec<EntryId> =
            roots.iter().flat_map(|&r| std::iter::once(r).chain(forest.descendants(r))).collect();
        let found =
            bschema_parallel::par_flat_map_chunks_indexed(&entries, self.threads(), |i, chunk| {
                let span = probe.span_start(parent, "chunk", i as u64);
                let started = probe.enabled().then(std::time::Instant::now);
                let mut local = Vec::new();
                for &id in chunk {
                    let entry = dir.entry(id).expect("delta entries are live");
                    content::check_entry(self.schema, id, entry, &mut local);
                    if self.validate_values {
                        if let Err(e) = dir.validate_entry_values(id) {
                            local.push(Violation::ValueViolation {
                                entry: id,
                                message: e.to_string(),
                            });
                        }
                    }
                }
                if let Some(start) = started {
                    probe.add("legality.entries_content_checked", chunk.len() as u64);
                    probe.add("parallel.chunks", 1);
                    probe.observe("parallel.chunk_us", start.elapsed().as_micros() as u64);
                }
                probe.span_end(span);
                local
            });
        out.extend(found);
    }

    /// Checks that inserting the subtree rooted at `delta_root` preserved
    /// legality. `dir` is the instance **after** the insertion, prepared;
    /// `D` (the instance before) is assumed legal.
    ///
    /// Cost: O(per-entry content cost · |∆D| + Σ_rel |Δ-query inputs|) —
    /// for the all-`[∆D]` rows this is independent of |D|.
    pub fn check_insertion(&self, dir: &DirectoryInstance, delta_root: EntryId) -> LegalityReport {
        self.check_insertions(dir, &[delta_root])
    }

    /// Batched variant of [`check_insertion`](Self::check_insertion) for
    /// multi-subtree transactions: checks that inserting **all** of the
    /// subtrees rooted at `delta_roots` preserved legality. `dir` is the
    /// instance **after** every insertion, prepared; the instance before is
    /// assumed legal.
    ///
    /// Inserted subtrees are pairwise disjoint and non-nested (they hang
    /// off pre-existing entries), so no subtree can satisfy another's
    /// required relationships or create a forbidden pair spanning two
    /// deltas — each root's Figure 5 Δ-queries are independent, and the
    /// whole batch fans out over the configured workers in one wave. The
    /// report equals the union of per-root [`check_insertion`] reports
    /// against the final instance.
    pub fn check_insertions(
        &self,
        dir: &DirectoryInstance,
        delta_roots: &[EntryId],
    ) -> LegalityReport {
        let probe = self.probe;
        let root_span = probe.span_start(NO_SPAN, "incremental.check_insertions", 0);
        let mut out = Vec::new();

        // Content schema: only the new entries need checking (§4.2).
        let span = probe.span_start(root_span, "content_delta", 0);
        self.content_delta_violations(dir, delta_roots, span, &mut out);
        probe.span_end(span);

        // Keys (§6.1): only the new entries' values can clash.
        let span = probe.span_start(root_span, "keys", 1);
        for &root in delta_roots {
            crate::legality::keys::check_insertion(self.schema, dir, root, &mut out);
        }
        probe.span_end(span);

        // Structure schema: Figure 5 insertion Δ-queries per delta root.
        // Required classes `◇c` cannot be violated by an insertion.
        let span = probe.span_start(root_span, "structure_delta", 2);
        self.structure_delta_violations(dir, delta_roots, span, &mut out);
        probe.span_end(span);

        probe.span_end(root_span);
        LegalityReport::from_violations(out)
    }

    /// Checks that **moving** a subtree (LDAP ModifyDN) preserved legality.
    /// `dir` is the instance **after** the move, prepared, with the subtree
    /// now rooted at `moved_root`; the instance before is assumed legal.
    ///
    /// A move is a deletion at the old location plus an insertion of the
    /// same subtree at the new one, so the check is the union of both
    /// Figure 5 columns — minus what a move can never change: entry content
    /// is untouched, and per-class counts are preserved so `◇c` cannot
    /// break.
    pub fn check_move(&self, dir: &DirectoryInstance, moved_root: EntryId) -> LegalityReport {
        let probe = self.probe;
        let root_span = probe.span_start(NO_SPAN, "incremental.check_move", 0);
        let mut out = Vec::new();
        let classes = self.schema.classes();

        // Insertion half: the Figure 5 Δ-queries at the new location.
        let span = probe.span_start(root_span, "structure_delta", 0);
        self.structure_delta_violations(dir, &[moved_root], span, &mut out);
        probe.span_end(span);

        // Deletion half: the "no" rows re-checked on the whole instance —
        // entries outside the subtree may have lost a required child /
        // descendant that moved away. Restrict witnesses to entries outside
        // ∆D (inside ones were covered above) to avoid duplicates.
        let span = probe.span_start(root_span, "recheck", 1);
        let whole = EvalContext::new(dir).with_probe(probe);
        let forest = dir.forest();
        let recheck: Vec<&RequiredRel> = self
            .schema
            .structure()
            .required_rels()
            .iter()
            .filter(|rel| deletion_needs_recheck(rel.kind))
            .collect();
        if probe.enabled() {
            for rel in &recheck {
                probe.add_labeled("incremental.recheck", required_row(rel.kind), 1);
            }
        }
        let queries: Vec<Query> =
            recheck.iter().map(|rel| translate::required_rel_query(self.schema, rel)).collect();
        for (rel, witnesses) in recheck.iter().zip(evaluate_batch(&whole, &queries, self.threads()))
        {
            for witness in witnesses {
                let inside =
                    witness == moved_root || forest.interval_is_ancestor(moved_root, witness);
                if !inside {
                    out.push(Violation::RequiredRelViolation {
                        entry: witness,
                        source: classes.name(rel.source).to_owned(),
                        kind: rel.kind,
                        target: classes.name(rel.target).to_owned(),
                    });
                }
            }
        }
        probe.span_end(span);

        probe.span_end(root_span);
        LegalityReport::from_violations(out).normalized()
    }

    /// Checks that deleting a subtree preserved legality. `dir` is the
    /// instance **after** the deletion, prepared; `removed` holds the
    /// deleted entries (used for the count-based `◇c` test); the instance
    /// before is assumed legal.
    ///
    /// Per Figure 5, only the child/descendant required rows and `◇c` can
    /// break, so content, parent/ancestor required, and all forbidden
    /// elements are skipped outright.
    pub fn check_deletion(&self, dir: &DirectoryInstance, removed: &[Entry]) -> LegalityReport {
        let probe = self.probe;
        let root_span = probe.span_start(NO_SPAN, "incremental.check_deletion", 0);
        let mut out = Vec::new();
        let ctx = EvalContext::new(dir).with_probe(probe);
        let classes = self.schema.classes();

        // `◇c` with counts (§4.2): only classes that lost members can have
        // become empty, and the index answers emptiness in O(1).
        for class in self.schema.structure().required_classes() {
            let name = classes.name(class);
            let lost_member = removed.iter().any(|e| e.has_class(name));
            if lost_member && dir.index().class_count(name) == 0 {
                out.push(Violation::MissingRequiredClass { class: name.to_owned() });
            }
        }

        // The non-incrementally-testable rows: full recheck on D − ∆D. The
        // rows are independent queries, so they batch over the configured
        // workers (sharing the instance's one sorted-entry index).
        let recheck: Vec<&RequiredRel> = self
            .schema
            .structure()
            .required_rels()
            .iter()
            .filter(|rel| deletion_needs_recheck(rel.kind))
            .collect();
        if probe.enabled() {
            for rel in &recheck {
                probe.add_labeled("incremental.recheck", required_row(rel.kind), 1);
            }
        }
        let queries: Vec<Query> =
            recheck.iter().map(|rel| translate::required_rel_query(self.schema, rel)).collect();
        for (rel, witnesses) in recheck.iter().zip(evaluate_batch(&ctx, &queries, self.threads())) {
            for witness in witnesses {
                out.push(Violation::RequiredRelViolation {
                    entry: witness,
                    source: classes.name(rel.source).to_owned(),
                    kind: rel.kind,
                    target: classes.name(rel.target).to_owned(),
                });
            }
        }

        probe.span_end(root_span);
        LegalityReport::from_violations(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::LegalityChecker;
    use crate::paper::{white_pages_instance, white_pages_schema};
    use bschema_directory::Entry;

    fn researcher(uid: &str) -> Entry {
        Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", uid)
            .attr("name", uid)
            .build()
    }

    #[test]
    fn legal_insertion_passes() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        let new = dir.add_child_entry(ids.databases, researcher("milo")).unwrap();
        dir.prepare();
        let report = IncrementalChecker::new(&schema).check_insertion(&dir, new);
        assert!(report.is_legal(), "{report}");
        // Agreement with full recheck.
        assert!(LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn section_4_2_illegal_insertion_is_caught() {
        // §4.2: new orgUnit under suciu, plus persons under it — violates
        // orgUnit →pa orgGroup and person ↛ch top; "neither of these
        // violations can be detected by solely examining ∆D" (they need the
        // Whole bindings).
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        let bad_unit = dir
            .add_child_entry(
                ids.suciu,
                Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "oops").build(),
            )
            .unwrap();
        dir.add_child_entry(bad_unit, researcher("p1")).unwrap();
        dir.prepare();
        let report = IncrementalChecker::new(&schema).check_insertion(&dir, bad_unit);
        assert!(!report.is_legal());
        // orgUnit →pa orgGroup caught (source ∆D, target Whole).
        assert!(report.violations().iter().any(|v| matches!(
            v,
            Violation::RequiredRelViolation { entry, source, kind: RelKind::Parent, .. }
                if *entry == bad_unit && source == "orgUnit"
        )));
        // person ↛ch top caught at suciu (upper Whole, lower ∆D).
        assert!(report.violations().iter().any(|v| matches!(
            v,
            Violation::ForbiddenRelViolation { entry, upper, .. }
                if *entry == ids.suciu && upper == "person"
        )));
        // Incremental verdict matches the full recheck.
        assert_eq!(report.is_legal(), LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn insertion_content_violation_is_caught() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        // Person missing its required name.
        let new = dir
            .add_child_entry(
                ids.databases,
                Entry::builder().classes(["person", "top"]).attr("uid", "anon").build(),
            )
            .unwrap();
        dir.prepare();
        let report = IncrementalChecker::new(&schema).check_insertion(&dir, new);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::MissingRequiredAttribute { .. })));
    }

    #[test]
    fn legal_deletion_passes() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        let removed: Vec<Entry> =
            dir.remove_subtree(ids.armstrong).unwrap().into_iter().map(|(_, e)| e).collect();
        dir.prepare();
        let report = IncrementalChecker::new(&schema).check_deletion(&dir, &removed);
        assert!(report.is_legal(), "{report}");
        assert!(LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn deletion_breaking_required_descendant_is_caught() {
        // §4.2: "Deletion could, however, violate orgGroup ⇒⇒ person".
        // Deleting both researchers leaves `databases` with no person
        // descendant.
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        let mut removed = Vec::new();
        for id in [ids.laks, ids.suciu] {
            removed.push(dir.remove_leaf(id).unwrap());
        }
        dir.prepare();
        let report = IncrementalChecker::new(&schema).check_deletion(&dir, &removed);
        assert!(report.violations().iter().any(|v| matches!(
            v,
            Violation::RequiredRelViolation { entry, source, kind: RelKind::Descendant, .. }
                if *entry == ids.databases && source == "orgGroup"
        )));
        assert_eq!(report.is_legal(), LegalityChecker::new(&schema).check(&dir).is_legal());
    }

    #[test]
    fn deletion_breaking_required_class_uses_counts() {
        let schema = white_pages_schema();
        let (mut dir, ids) = white_pages_instance();
        // Delete every person: ◇person becomes violated.
        let mut removed = Vec::new();
        for id in [ids.armstrong, ids.laks, ids.suciu] {
            removed.push(dir.remove_leaf(id).unwrap());
        }
        dir.prepare();
        let report = IncrementalChecker::new(&schema).check_deletion(&dir, &removed);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::MissingRequiredClass { class } if class == "person")));
    }

    #[test]
    fn move_check_matches_full_recheck() {
        let schema = white_pages_schema();
        let checker = IncrementalChecker::new(&schema);
        let full = LegalityChecker::new(&schema);
        // Legal move: databases under att.
        let (mut dir, ids) = white_pages_instance();
        dir.move_subtree(ids.databases, ids.att).unwrap();
        dir.prepare();
        let inc = checker.check_move(&dir, ids.databases);
        assert_eq!(inc.is_legal(), full.check(&dir).is_legal());
        assert!(inc.is_legal(), "{inc}");

        // Illegal move: databases under armstrong (a person gains a child;
        // attLabs keeps its person descendants through armstrong itself).
        let (mut dir, ids) = white_pages_instance();
        dir.move_subtree(ids.databases, ids.armstrong).unwrap();
        dir.prepare();
        let inc = checker.check_move(&dir, ids.databases);
        assert_eq!(inc.is_legal(), full.check(&dir).is_legal());
        assert!(!inc.is_legal());
        assert!(inc.violations().iter().any(|v| matches!(
            v,
            Violation::ForbiddenRelViolation { entry, .. } if *entry == ids.armstrong
        )));

        // Illegal move where only an OUTSIDE entry breaks: move armstrong
        // under databases — attLabs keeps its person descendants via
        // databases... so instead delete-side: move the whole databases
        // subtree to the root; attLabs still has armstrong (fine), but the
        // moved orgUnit loses its organization ancestor.
        let (mut dir, ids) = white_pages_instance();
        dir.move_subtree_to_root(ids.databases).unwrap();
        dir.prepare();
        let inc = checker.check_move(&dir, ids.databases);
        assert_eq!(inc.is_legal(), full.check(&dir).is_legal());
        assert!(!inc.is_legal());
    }

    #[test]
    fn figure5_insertion_queries_render_with_bindings() {
        let schema = white_pages_schema();
        let rel = schema.structure().required_rels()[0]; // orgGroup →de person
        let q = insertion_delta_query(&schema, &rel);
        assert_eq!(
            q.to_string(),
            "(σ? (objectClass=orgGroup)[ΔD] (σd (objectClass=orgGroup)[ΔD] (objectClass=person)[ΔD]))"
        );
        let parent_rel = RequiredRel {
            source: schema.classes().resolve("orgUnit").unwrap(),
            kind: RelKind::Parent,
            target: schema.classes().resolve("orgGroup").unwrap(),
        };
        let q = insertion_delta_query(&schema, &parent_rel);
        assert_eq!(
            q.to_string(),
            "(σ? (objectClass=orgUnit)[ΔD] (σp (objectClass=orgUnit)[ΔD] (objectClass=orgGroup)))"
        );
    }

    #[test]
    fn figure5_deletion_column() {
        assert!(deletion_needs_recheck(RelKind::Child));
        assert!(deletion_needs_recheck(RelKind::Descendant));
        assert!(!deletion_needs_recheck(RelKind::Parent));
        assert!(!deletion_needs_recheck(RelKind::Ancestor));
    }
}
