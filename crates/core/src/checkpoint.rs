//! Checkpoints: durable snapshots that bound journal replay.
//!
//! Recovery by full journal replay is linear in the *history*, not the
//! directory: every committed transaction re-runs through the checked
//! apply path, and at the paper's target scale (§6, directories with
//! millions of entries) that is minutes of downtime after every crash.
//! A checkpoint caps the replay window: a canonical, slot-exact
//! snapshot of the instance is written atomically next to the journal,
//! the journal is truncated, and recovery becomes *decode checkpoint +
//! replay short tail*.
//!
//! ## File format
//!
//! A checkpoint file is one header line followed by a length-prefixed,
//! checksummed LDIF body:
//!
//! ```text
//! bschema-ckpt v1 len=<body-bytes> sum=<fnv64-hex>
//! dn: cn=checkpoint
//! ckpbound: 6
//! ckpentries: 5
//! ckpfree: 3
//! ckpschema: 9ae1c6022754a3b5
//! ckpseq: 42
//! ckptx: 17
//! ckpversion: 1
//!
//! dn: slot=0,cn=checkpoint
//! objectClass: organization
//! objectClass: top
//! ckpparent: -
//! ckprdn: o=att
//! o: att
//! ...
//! ```
//!
//! The body is the same LDIF dialect as directory content and the
//! journal, so standard tooling can inspect it. The first record
//! carries the snapshot header under reserved `ckp*` attributes: the
//! arena `slot_bound`, the free-slot stack (bottom first, as repeated
//! `ckpfree` values), the journal sequence number the snapshot covers
//! (`ckpseq`), the transaction-id cursor (`ckptx`), an FNV-1a hash of
//! the governing schema (`ckpschema`), and for sharded directories the
//! shard index (`ckpshard`). Every following record is one live slot in
//! preorder — `ckpparent` (`-` for roots) and `ckprdn` alongside the
//! entry's own attributes — which is exactly the input
//! [`DirectoryInstance::from_slots`] needs to rebuild an instance with
//! byte-identical [`canonical_bytes`] *and* identical future slot
//! assignment, so a journal tail addressing entries as
//! `existing:<slot>` replays correctly on top.
//!
//! ## Crash consistency
//!
//! [`write_checkpoint`] writes a temp file and renames it into place;
//! [`truncate_journal`] then (and only then) replaces the journal with
//! an empty file, also via rename. The fault sites `checkpoint.write`
//! and `checkpoint.truncate` sit between the vulnerable steps. A crash
//! therefore leaves one of exactly three states, and
//! [`recover_with_checkpoint`] handles each rung of the ladder:
//!
//! 1. old checkpoint (or none) + full journal — the new snapshot never
//!    landed; recover from what was there before.
//! 2. new checkpoint + full journal — truncation never ran; the replay
//!    rule (committed transactions with `first_seq >= ckpt.seq` only)
//!    skips everything the snapshot already contains.
//! 3. new checkpoint + empty journal — the steady state.
//!
//! A *torn* checkpoint (bad header, short body, checksum mismatch)
//! cannot result from this write ordering — rename is atomic — but can
//! result from outside interference; it is ignored when the journal is
//! still complete (`start_seq == 0`) and fatal when the journal has
//! been truncated, because then no consistent state can be rebuilt.
//!
//! [`canonical_bytes`]: DirectoryInstance::canonical_bytes

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use bschema_directory::ldif::{parse_ldif, write_record, LdifRecord};
use bschema_directory::{AttributeRegistry, DirectoryInstance, Dn, Entry, SlotRow};
use bschema_obs::Probe;

use crate::journal::{Journal, JournalWriter, RecoveryReport};
use crate::managed::{ManagedDirectory, ManagedError};
use crate::schema::DirectorySchema;

/// First token of a checkpoint file's header line.
pub const CHECKPOINT_MAGIC: &str = "bschema-ckpt";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// DN of the snapshot-header record; slot records are `slot=<n>,` + this.
pub const CHECKPOINT_DN: &str = "cn=checkpoint";

/// Fault/probe site visited between writing the checkpoint temp file
/// and renaming it into place — a crash here loses the new checkpoint.
pub const SITE_CHECKPOINT_WRITE: &str = "checkpoint.write";

/// Fault/probe site visited between the checkpoint landing and the
/// journal truncation rename — a crash here leaves checkpoint + full
/// journal.
pub const SITE_CHECKPOINT_TRUNCATE: &str = "checkpoint.truncate";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a hash over the schema's
/// [`canonical_text`](DirectorySchema::canonical_text). Textually
/// different but semantically equivalent schemas still hash apart —
/// the safe direction: a mismatch only forces a full replay, never
/// accepts a snapshot certified under different rules.
pub fn schema_hash(schema: &DirectorySchema) -> u64 {
    fnv1a(schema.canonical_text().as_bytes())
}

/// The sibling path where the checkpoint for `journal` lives:
/// `<journal>.ckpt` (so a shard journal `wal.shard2` checkpoints to
/// `wal.shard2.ckpt`).
pub fn checkpoint_path(journal: &Path) -> PathBuf {
    let name = journal
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "journal".to_owned());
    journal.with_file_name(format!("{name}.ckpt"))
}

/// Why a checkpoint file could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Structural damage: bad header line, short body, checksum or
    /// length mismatch, malformed LDIF, inconsistent snapshot rows.
    Torn(String),
    /// The checkpoint was taken under a different schema.
    SchemaMismatch {
        /// Hash of the schema recovery is running under.
        expected: u64,
        /// Hash recorded in the checkpoint header.
        found: u64,
    },
    /// The rows decoded but do not assemble into a valid instance.
    Restore(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Torn(reason) => write!(f, "torn checkpoint: {reason}"),
            CheckpointError::SchemaMismatch { expected, found } => write!(
                f,
                "checkpoint schema hash {found:016x} does not match current schema {expected:016x}"
            ),
            CheckpointError::Restore(reason) => {
                write!(f, "checkpoint does not restore: {reason}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn torn(reason: impl Into<String>) -> CheckpointError {
    CheckpointError::Torn(reason.into())
}

/// A decoded (or captured) checkpoint: the slot-exact snapshot plus the
/// journal cursor it covers.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The journal sequence number this snapshot covers: every record
    /// with `seq < self.seq` is folded into the snapshot, and recovery
    /// replays only committed transactions with `first_seq >= seq`.
    pub seq: u64,
    /// One past the highest transaction id folded in — where a resumed
    /// [`JournalWriter`] continues numbering.
    pub next_tx: u64,
    /// [`schema_hash`] of the schema the snapshot was certified under.
    pub schema_hash: u64,
    /// The certifying schema itself, as schema-DSL text (`ckpdsl`).
    /// Lets recovery *adopt* the checkpoint's schema after a journalled
    /// evolution instead of fataling on the hash mismatch — the on-disk
    /// boot schema is then merely the epoch-0 ancestor. `None` for
    /// checkpoints written before this field existed. For a shard
    /// checkpoint the hash covers the localised schema but the embedded
    /// DSL is the *full* schema, so sharded recovery can re-derive the
    /// global ◇c ledger.
    pub schema_dsl: Option<String>,
    /// Shard index for per-shard checkpoints of a sharded directory.
    pub shard: Option<u64>,
    /// The arena slot bound ([`Forest::slot_bound`]).
    ///
    /// [`Forest::slot_bound`]: bschema_directory::Forest::slot_bound
    pub slot_bound: usize,
    /// The dead-slot free stack, bottom first.
    pub free: Vec<u32>,
    /// Live slots in preorder.
    pub rows: Vec<SlotRow>,
}

impl Checkpoint {
    /// Snapshots `instance` as a checkpoint covering journal sequence
    /// `seq` with transaction cursor `next_tx`. The caller must ensure
    /// every journal record below `seq` is reflected in `instance` —
    /// for a live directory that means capturing under the write lock.
    pub fn capture(
        instance: &DirectoryInstance,
        schema: &DirectorySchema,
        seq: u64,
        next_tx: u64,
        shard: Option<u64>,
    ) -> Checkpoint {
        Checkpoint {
            seq,
            next_tx,
            schema_hash: schema_hash(schema),
            schema_dsl: Some(crate::schema::dsl::print_schema(schema, None)),
            shard,
            slot_bound: instance.forest().slot_bound(),
            free: instance.forest().free_slots().to_vec(),
            rows: instance.slot_rows(),
        }
    }

    /// Serialises to the checkpoint file format (header line + LDIF
    /// body). The `ckp*` attribute prefix is reserved: payload
    /// attributes starting with `ckp` would not round-trip.
    pub fn encode(&self) -> String {
        let mut body = String::new();
        let mut header = Entry::default();
        header.add_value("ckpversion", CHECKPOINT_VERSION.to_string());
        header.add_value("ckpseq", self.seq.to_string());
        header.add_value("ckptx", self.next_tx.to_string());
        header.add_value("ckpschema", format!("{:016x}", self.schema_hash));
        if let Some(dsl) = &self.schema_dsl {
            header.add_value("ckpdsl", crate::journal::escape_text(dsl));
        }
        header.add_value("ckpbound", self.slot_bound.to_string());
        header.add_value("ckpentries", self.rows.len().to_string());
        if let Some(shard) = self.shard {
            header.add_value("ckpshard", shard.to_string());
        }
        for slot in &self.free {
            header.add_value("ckpfree", slot.to_string());
        }
        write_record(&mut body, CHECKPOINT_DN, &header);
        for row in &self.rows {
            let mut entry = row.entry.clone();
            entry.add_value(
                "ckpparent",
                row.parent.map_or_else(|| "-".to_owned(), |p| p.to_string()),
            );
            if let Some(rdn) = &row.rdn {
                entry.add_value("ckprdn", rdn.to_string());
            }
            write_record(&mut body, &format!("slot={},{CHECKPOINT_DN}", row.slot), &entry);
        }
        format!(
            "{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION} len={} sum={:016x}\n{body}",
            body.len(),
            fnv1a(body.as_bytes()),
        )
    }

    /// Parses a checkpoint file. Any structural defect — a crash can
    /// only leave a missing file, never a torn one, but disks and
    /// operators can — comes back as [`CheckpointError::Torn`] so the
    /// caller can decide whether full replay is still possible.
    pub fn decode(text: &str) -> Result<Checkpoint, CheckpointError> {
        let (line, rest) = text.split_once('\n').ok_or_else(|| torn("missing header line"))?;
        let mut tokens = line.split_ascii_whitespace();
        if tokens.next() != Some(CHECKPOINT_MAGIC) {
            return Err(torn("bad magic"));
        }
        if tokens.next() != Some(&format!("v{CHECKPOINT_VERSION}")[..]) {
            return Err(torn("unsupported version"));
        }
        let len: usize = tokens
            .next()
            .and_then(|t| t.strip_prefix("len="))
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| torn("bad length prefix"))?;
        let sum: u64 = tokens
            .next()
            .and_then(|t| t.strip_prefix("sum="))
            .and_then(|t| u64::from_str_radix(t, 16).ok())
            .ok_or_else(|| torn("bad checksum field"))?;
        if rest.len() < len || !rest.is_char_boundary(len) {
            return Err(torn("short body"));
        }
        let body = &rest[..len];
        if fnv1a(body.as_bytes()) != sum {
            return Err(torn("checksum mismatch"));
        }
        let records = parse_ldif(body).map_err(|e| torn(format!("body is not LDIF: {e}")))?;
        let mut records = records.into_iter();
        let header = records.next().ok_or_else(|| torn("empty body"))?;
        if header.dn.to_string() != CHECKPOINT_DN {
            return Err(torn("first record is not the snapshot header"));
        }
        let field = |attr: &str| -> Result<u64, CheckpointError> {
            header
                .entry
                .first_value(attr)
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| torn(format!("missing or malformed {attr}")))
        };
        if field("ckpversion")? != CHECKPOINT_VERSION {
            return Err(torn("unsupported snapshot version"));
        }
        let seq = field("ckpseq")?;
        let next_tx = field("ckptx")?;
        let schema_hash = header
            .entry
            .first_value("ckpschema")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or_else(|| torn("missing or malformed ckpschema"))?;
        let schema_dsl =
            header.entry.first_value("ckpdsl").map(crate::journal::unescape_text);
        let slot_bound = field("ckpbound")? as usize;
        let entries = field("ckpentries")? as usize;
        let shard = match header.entry.first_value("ckpshard") {
            Some(v) => Some(v.trim().parse().map_err(|_| torn("malformed ckpshard"))?),
            None => None,
        };
        let mut free = Vec::new();
        for value in header.entry.values("ckpfree") {
            free.push(value.trim().parse().map_err(|_| torn("malformed ckpfree"))?);
        }
        let mut rows = Vec::with_capacity(entries);
        for record in records {
            rows.push(decode_slot_record(&record)?);
        }
        if rows.len() != entries {
            return Err(torn(format!(
                "snapshot header promises {entries} entries, body has {}",
                rows.len()
            )));
        }
        Ok(Checkpoint { seq, next_tx, schema_hash, schema_dsl, shard, slot_bound, free, rows })
    }

    /// The full embedded schema (`ckpdsl`), hash-verified: it must
    /// reproduce the header hash either directly or through its
    /// localised form (a shard checkpoint hashes the engine's
    /// `without_required_classes` schema but embeds the full one).
    /// `None` for pre-`ckpdsl` checkpoints or a DSL that fails
    /// verification — the safe direction, falling back to the old
    /// mismatch behaviour.
    pub fn embedded_full_schema(&self) -> Option<DirectorySchema> {
        let dsl = self.schema_dsl.as_deref()?;
        let full = crate::schema::dsl::parse_schema(dsl).ok()?.schema;
        let ok = schema_hash(&full) == self.schema_hash
            || schema_hash(&full.without_required_classes()) == self.schema_hash;
        ok.then_some(full)
    }

    /// The *engine* schema this checkpoint was certified under — the
    /// hash-matching form of [`embedded_full_schema`]: the full schema,
    /// or its localised form for a shard checkpoint.
    ///
    /// [`embedded_full_schema`]: Checkpoint::embedded_full_schema
    pub fn embedded_engine_schema(&self) -> Option<DirectorySchema> {
        let full = self.embedded_full_schema()?;
        if schema_hash(&full) == self.schema_hash {
            return Some(full);
        }
        Some(full.without_required_classes())
    }

    /// Rebuilds the instance this checkpoint snapshots, over the given
    /// attribute namespace. The result is slot-exact: byte-identical
    /// [`canonical_bytes`](DirectoryInstance::canonical_bytes) and the
    /// same future slot assignment as the snapshot source.
    pub fn restore(
        &self,
        registry: AttributeRegistry,
    ) -> Result<DirectoryInstance, CheckpointError> {
        DirectoryInstance::from_slots(registry, self.slot_bound, self.rows.clone(), &self.free)
            .map_err(|e| CheckpointError::Restore(e.to_string()))
    }
}

/// Decodes one `slot=<n>,cn=checkpoint` body record into a [`SlotRow`].
fn decode_slot_record(record: &LdifRecord) -> Result<SlotRow, CheckpointError> {
    let dn = record.dn.to_string();
    let slot = dn
        .strip_prefix("slot=")
        .and_then(|rest| rest.strip_suffix(&format!(",{CHECKPOINT_DN}")[..]))
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| torn(format!("unexpected record DN {dn:?} in snapshot body")))?;
    let parent = match record.entry.first_value("ckpparent") {
        Some("-") => None,
        Some(v) => Some(v.trim().parse().map_err(|_| torn("malformed ckpparent"))?),
        None => return Err(torn(format!("slot {slot} record is missing ckpparent"))),
    };
    let rdn = match record.entry.first_value("ckprdn") {
        Some(s) => Some(
            Dn::parse(s)
                .ok()
                .and_then(|dn| dn.rdn().cloned())
                .ok_or_else(|| torn(format!("slot {slot} has malformed ckprdn")))?,
        ),
        None => None,
    };
    let mut entry = record.entry.clone();
    for attr in ["ckpparent", "ckprdn"] {
        entry.remove_attribute(attr);
    }
    Ok(SlotRow { slot, parent, rdn, entry })
}

/// Atomically installs checkpoint `text` at `path`: the bytes go to a
/// `.tmp` sibling first and are renamed into place, so a reader (or a
/// crash) sees either the old checkpoint or the new one, never a
/// partial write. The [`SITE_CHECKPOINT_WRITE`] fault site sits between
/// the two steps.
pub fn write_checkpoint(path: &Path, text: &str, probe: &dyn Probe) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    fs::write(&tmp, text)?;
    probe.add(SITE_CHECKPOINT_WRITE, 1);
    fs::rename(&tmp, path)
}

/// Truncates `journal` to empty after a checkpoint covering its whole
/// intact prefix has landed — also via temp file + rename, with the
/// [`SITE_CHECKPOINT_TRUNCATE`] fault site between the steps. Must only
/// be called *after* [`write_checkpoint`] succeeded: the replay rule
/// tolerates checkpoint-without-truncation, not the reverse.
pub fn truncate_journal(journal: &Path, probe: &dyn Probe) -> io::Result<()> {
    let tmp = tmp_sibling(journal);
    fs::write(&tmp, "")?;
    probe.add(SITE_CHECKPOINT_TRUNCATE, 1);
    fs::rename(&tmp, journal)
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_owned());
    path.with_file_name(format!("{name}.tmp"))
}

/// Outcome of [`recover_with_checkpoint`].
#[derive(Debug)]
pub struct CheckpointRecovery {
    /// The recovered directory.
    pub managed: ManagedDirectory,
    /// A writer positioned to append the next record (sequence and
    /// transaction ids continue across the checkpoint).
    pub writer: JournalWriter,
    /// Replay statistics over the journal tail.
    pub report: RecoveryReport,
    /// The sequence the used checkpoint covered, or `None` when
    /// recovery fell back to (or started as) full replay.
    pub checkpoint_seq: Option<u64>,
}

enum CkptState {
    Absent,
    Usable(Checkpoint),
    Unusable(CheckpointError),
}

/// Checkpoint-aware recovery: the torn-checkpoint ladder.
///
/// * intact, schema-matching checkpoint → restore it and replay only
///   committed transactions with `first_seq >= checkpoint.seq`;
/// * no checkpoint + complete journal (`start_seq == 0`) → plain
///   [`ManagedDirectory::recover`] from `base`;
/// * torn or schema-mismatched checkpoint + complete journal → ignore
///   the checkpoint, full replay (and the caller should re-checkpoint);
/// * unusable checkpoint + truncated journal (`start_seq > 0`) →
///   [`ManagedError::Recovery`]: the truncated history is gone and no
///   consistent state can be rebuilt.
///
/// A gap between checkpoint and tail (`journal.start_seq > ckpt.seq`
/// with records in between missing) is likewise fatal.
pub fn recover_with_checkpoint(
    schema: DirectorySchema,
    base: DirectoryInstance,
    ckpt_text: Option<&str>,
    journal: &Journal,
) -> Result<CheckpointRecovery, ManagedError> {
    let mut schema = schema;
    let state = match ckpt_text {
        None => CkptState::Absent,
        Some(text) => match Checkpoint::decode(text) {
            Ok(ckpt) => {
                let expected = schema_hash(&schema);
                if ckpt.schema_hash == expected {
                    CkptState::Usable(ckpt)
                } else if let Some(adopted) = ckpt.embedded_engine_schema() {
                    // The checkpoint post-dates a journalled schema
                    // evolution: the boot schema is merely the epoch-0
                    // ancestor. Adopt the (hash-verified) embedded
                    // schema the snapshot was certified under.
                    schema = adopted;
                    CkptState::Usable(ckpt)
                } else {
                    CkptState::Unusable(CheckpointError::SchemaMismatch {
                        expected,
                        found: ckpt.schema_hash,
                    })
                }
            }
            Err(e) => CkptState::Unusable(e),
        },
    };
    match state {
        CkptState::Usable(ckpt) => {
            let has_tail = journal.next_seq() > journal.start_seq;
            if has_tail && journal.start_seq > ckpt.seq {
                return Err(ManagedError::Recovery(format!(
                    "journal tail starts at seq {} but the checkpoint only covers {}: \
                     records in between are missing",
                    journal.start_seq, ckpt.seq
                )));
            }
            let restored = ckpt
                .restore(base.registry().clone())
                .map_err(|e| ManagedError::Recovery(e.to_string()))?;
            let mut managed = ManagedDirectory::for_recovery(schema, restored)?;
            let mut replayed = 0;
            let mut discarded = 0;
            for jtx in &journal.txs {
                if jtx.first_seq < ckpt.seq {
                    // Already folded into the snapshot.
                    continue;
                }
                if jtx.committed {
                    match (&jtx.schema, &jtx.modify) {
                        (Some(s), _) => s
                            .engine_schema()
                            .map_err(ManagedError::Recovery)
                            .and_then(|schema| managed.set_schema(schema)),
                        (None, Some(m)) => managed.modify_entry(m.target, &m.mods),
                        (None, None) => managed.apply(&jtx.to_transaction()),
                    }
                    .map_err(|e| {
                        ManagedError::Recovery(format!("replaying committed tx {}: {e}", jtx.id))
                    })?;
                    replayed += 1;
                } else {
                    discarded += 1;
                }
            }
            let seq = journal.next_seq().max(ckpt.seq);
            let next_tx = journal.next_tx().max(ckpt.next_tx);
            let mut writer = JournalWriter::resume_at(seq, next_tx);
            if let Some(shard) = journal.shard.or(ckpt.shard) {
                writer = writer.with_shard(shard as usize);
            }
            Ok(CheckpointRecovery {
                managed,
                writer,
                report: RecoveryReport {
                    replayed,
                    discarded,
                    dropped_records: journal.dropped_records,
                    truncated: journal.truncated,
                },
                checkpoint_seq: Some(ckpt.seq),
            })
        }
        CkptState::Absent | CkptState::Unusable(_) if journal.start_seq == 0 => {
            if let CkptState::Unusable(reason) = &state {
                // Full history survives: the damaged checkpoint is
                // ignorable, full replay rebuilds the same state.
                let _ = reason;
            }
            let (managed, report) = ManagedDirectory::recover(schema, base, journal)?;
            let writer = JournalWriter::resume_after(journal);
            Ok(CheckpointRecovery { managed, writer, report, checkpoint_seq: None })
        }
        CkptState::Absent => Err(ManagedError::Recovery(format!(
            "journal is truncated (starts at seq {}) but its checkpoint is missing",
            journal.start_seq
        ))),
        CkptState::Unusable(reason) => Err(ManagedError::Recovery(format!(
            "journal is truncated (starts at seq {}) and its checkpoint is unusable: {reason}",
            journal.start_seq
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{white_pages_instance, white_pages_schema, Figure1};
    use crate::updates::Transaction;
    use bschema_obs::NoopProbe;

    fn researcher(uid: &str) -> Entry {
        Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", uid)
            .attr("name", uid)
            .build()
    }

    /// A managed white-pages directory with some journalled history:
    /// two committed transactions (one delete, one insert) and one
    /// aborted tail.
    fn journalled_fixture() -> (ManagedDirectory, JournalWriter, String, Figure1) {
        let schema = white_pages_schema();
        let (dir, ids) = white_pages_instance();
        let mut managed = ManagedDirectory::with_instance(schema, dir).expect("fixture is legal");
        let mut writer = JournalWriter::new();

        let mut tx = Transaction::new();
        tx.delete(ids.suciu);
        managed.apply_journaled(&tx, &mut writer).expect("delete applies");

        let mut tx = Transaction::new();
        tx.insert_under(ids.att_labs, researcher("zoe"));
        managed.apply_journaled(&tx, &mut writer).expect("insert applies");

        // An aborted transaction: the entry carries an attribute its
        // classes do not allow, so legality rolls it back and the
        // journal keeps begin + op records without a commit.
        let mut tx = Transaction::new();
        tx.insert_under(
            ids.att_labs,
            Entry::builder()
                .classes(["researcher", "person", "top"])
                .attr("uid", "bad")
                .attr("mail", "bad@example.net")
                .build(),
        );
        let _ = managed.apply_journaled(&tx, &mut writer);

        let text = writer.take_pending();
        (managed, writer, text, ids)
    }

    #[test]
    fn checkpoint_roundtrips_byte_identically() {
        let (managed, writer, _text, _ids) = journalled_fixture();
        let schema = white_pages_schema();
        let ckpt = Checkpoint::capture(
            managed.instance(),
            &schema,
            writer.records_emitted(),
            writer.next_tx(),
            None,
        );
        let encoded = ckpt.encode();
        let decoded = Checkpoint::decode(&encoded).expect("decodes");
        assert_eq!(decoded.seq, ckpt.seq);
        assert_eq!(decoded.next_tx, ckpt.next_tx);
        assert_eq!(decoded.schema_hash, schema_hash(&schema));
        assert_eq!(decoded.free, ckpt.free);
        let restored = decoded.restore(managed.instance().registry().clone()).expect("restores");
        assert_eq!(restored.canonical_bytes(), managed.instance().canonical_bytes());
        assert_eq!(restored.forest().free_slots(), managed.instance().forest().free_slots());
    }

    #[test]
    fn decode_rejects_damage() {
        let (managed, writer, _text, _ids) = journalled_fixture();
        let schema = white_pages_schema();
        let ckpt = Checkpoint::capture(
            managed.instance(),
            &schema,
            writer.records_emitted(),
            writer.next_tx(),
            None,
        );
        let encoded = ckpt.encode();

        // Cut anywhere: header damage or short body, never a panic and
        // never an accepted parse.
        for cut in 0..encoded.len() {
            if !encoded.is_char_boundary(cut) {
                continue;
            }
            let err = Checkpoint::decode(&encoded[..cut]).expect_err("cut text must not decode");
            assert!(matches!(err, CheckpointError::Torn(_)), "{err}");
        }
        // Flip a payload byte: checksum catches it.
        let mut corrupt = encoded.clone().into_bytes();
        let flip = encoded.len() - 2;
        corrupt[flip] ^= 0x01;
        let corrupt = String::from_utf8(corrupt).expect("still utf-8");
        assert!(Checkpoint::decode(&corrupt).is_err());
    }

    #[test]
    fn recovery_ladder_checkpoint_plus_tail() {
        let (mut managed, mut writer, history, ids) = journalled_fixture();
        let schema = white_pages_schema();

        // Checkpoint at the current cursor, then keep writing: the tail
        // is everything after the checkpoint.
        let ckpt = Checkpoint::capture(
            managed.instance(),
            &schema,
            writer.records_emitted(),
            writer.next_tx(),
            None,
        );
        let parent = ids.att_labs;
        let mut tx = Transaction::new();
        tx.insert_under(parent, researcher("post-ckpt"));
        managed.apply_journaled(&tx, &mut writer).expect("tail tx applies");
        let tail = writer.take_pending();

        // Rung 3 (steady state): checkpoint + tail only.
        let journal = Journal::parse(&tail);
        assert_eq!(journal.start_seq, ckpt.seq);
        let rec = recover_with_checkpoint(
            white_pages_schema(),
            DirectoryInstance::white_pages(),
            Some(&ckpt.encode()),
            &journal,
        )
        .expect("checkpoint + tail recovers");
        assert_eq!(rec.checkpoint_seq, Some(ckpt.seq));
        assert_eq!(rec.report.replayed, 1);
        assert_eq!(rec.managed.instance().canonical_bytes(), managed.instance().canonical_bytes());
        assert_eq!(rec.writer.records_emitted(), writer.records_emitted());
        assert_eq!(rec.writer.next_tx(), writer.next_tx());

        // Rung 2 (crash before truncation): checkpoint + full journal.
        // The replay rule skips what the snapshot already contains.
        let full = format!("{history}{tail}");
        let journal = Journal::parse(&full);
        assert_eq!(journal.start_seq, 0);
        let rec = recover_with_checkpoint(
            white_pages_schema(),
            DirectoryInstance::white_pages(),
            Some(&ckpt.encode()),
            &journal,
        )
        .expect("checkpoint + full journal recovers");
        assert_eq!(rec.report.replayed, 1, "pre-checkpoint txs must not replay twice");
        assert_eq!(rec.managed.instance().canonical_bytes(), managed.instance().canonical_bytes());

        // Rung 1 (no checkpoint): full replay from the paper base.
        let (base, _ids) = white_pages_instance();
        let rec = recover_with_checkpoint(white_pages_schema(), base, None, &journal)
            .expect("full replay recovers");
        assert_eq!(rec.checkpoint_seq, None);
        assert_eq!(rec.report.replayed, 3);
        assert_eq!(rec.managed.instance().canonical_bytes(), managed.instance().canonical_bytes());
    }

    #[test]
    fn recovery_ladder_fatal_rungs() {
        let (mut managed, mut writer, _history, ids) = journalled_fixture();
        let schema = white_pages_schema();
        let ckpt = Checkpoint::capture(
            managed.instance(),
            &schema,
            writer.records_emitted(),
            writer.next_tx(),
            None,
        );
        let parent = ids.att_labs;
        let mut tx = Transaction::new();
        tx.insert_under(parent, researcher("tail-only"));
        managed.apply_journaled(&tx, &mut writer).expect("tail tx applies");
        let tail = writer.take_pending();
        let journal = Journal::parse(&tail);

        // Truncated journal + missing checkpoint: fatal.
        let (base, _ids) = white_pages_instance();
        let err = recover_with_checkpoint(white_pages_schema(), base, None, &journal)
            .expect_err("tail without checkpoint must not recover");
        assert_eq!(err.code(), "recovery");

        // Truncated journal + torn checkpoint: fatal.
        let encoded = ckpt.encode();
        let torn = &encoded[..encoded.len() / 2];
        let (base, _ids) = white_pages_instance();
        let err = recover_with_checkpoint(white_pages_schema(), base, Some(torn), &journal)
            .expect_err("tail with torn checkpoint must not recover");
        assert_eq!(err.code(), "recovery");
    }

    #[test]
    fn torn_checkpoint_with_full_journal_falls_back_to_replay() {
        let (managed, writer, history, _ids) = journalled_fixture();
        let schema = white_pages_schema();
        let ckpt = Checkpoint::capture(
            managed.instance(),
            &schema,
            writer.records_emitted(),
            writer.next_tx(),
            None,
        );
        let encoded = ckpt.encode();
        let torn = &encoded[..encoded.len() / 2];
        let journal = Journal::parse(&history);
        assert_eq!(journal.start_seq, 0);
        let (base, _ids) = white_pages_instance();
        let rec = recover_with_checkpoint(white_pages_schema(), base, Some(torn), &journal)
            .expect("full journal survives a torn checkpoint");
        assert_eq!(rec.checkpoint_seq, None);
        assert_eq!(rec.managed.instance().canonical_bytes(), managed.instance().canonical_bytes());
    }

    #[test]
    fn schema_mismatch_is_fatal_only_with_truncated_journal() {
        let (mut managed, mut writer, history, ids) = journalled_fixture();
        let schema = white_pages_schema();
        let mut wrong = Checkpoint::capture(
            managed.instance(),
            &schema,
            writer.records_emitted(),
            writer.next_tx(),
            None,
        );
        wrong.schema_hash ^= 0xdead_beef;
        let encoded = wrong.encode();

        // Full journal: mismatch degrades to full replay.
        let journal = Journal::parse(&history);
        let (base, _ids) = white_pages_instance();
        let rec = recover_with_checkpoint(white_pages_schema(), base, Some(&encoded), &journal)
            .expect("full journal survives schema mismatch");
        assert_eq!(rec.checkpoint_seq, None);

        // Truncated journal: mismatch is fatal.
        let parent = ids.att_labs;
        let mut tx = Transaction::new();
        tx.insert_under(parent, researcher("after"));
        managed.apply_journaled(&tx, &mut writer).expect("tail tx applies");
        let tail = writer.take_pending();
        let journal = Journal::parse(&tail);
        let (base, _ids) = white_pages_instance();
        let err = recover_with_checkpoint(white_pages_schema(), base, Some(&encoded), &journal)
            .expect_err("truncated journal + schema mismatch must not recover");
        assert_eq!(err.code(), "recovery");
    }

    #[test]
    fn atomic_write_and_truncate_leave_consistent_files() {
        let dir = std::env::temp_dir().join(format!("bschema-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let journal_path = dir.join("wal");
        let ckpt_file = checkpoint_path(&journal_path);
        assert_eq!(ckpt_file.file_name().and_then(|s| s.to_str()), Some("wal.ckpt"));

        let (managed, writer, history, _ids) = journalled_fixture();
        fs::write(&journal_path, &history).expect("journal written");
        let schema = white_pages_schema();
        let ckpt = Checkpoint::capture(
            managed.instance(),
            &schema,
            writer.records_emitted(),
            writer.next_tx(),
            None,
        );
        write_checkpoint(&ckpt_file, &ckpt.encode(), &NoopProbe).expect("checkpoint lands");
        truncate_journal(&journal_path, &NoopProbe).expect("journal truncates");

        let on_disk = fs::read_to_string(&ckpt_file).expect("checkpoint readable");
        let decoded = Checkpoint::decode(&on_disk).expect("decodes");
        assert_eq!(decoded.seq, writer.records_emitted());
        assert_eq!(fs::read_to_string(&journal_path).expect("journal readable"), "");

        let journal = Journal::parse("");
        let rec = recover_with_checkpoint(
            white_pages_schema(),
            DirectoryInstance::white_pages(),
            Some(&on_disk),
            &journal,
        )
        .expect("steady state recovers");
        assert_eq!(rec.managed.instance().canonical_bytes(), managed.instance().canonical_bytes());
        fs::remove_dir_all(&dir).ok();
    }
}
