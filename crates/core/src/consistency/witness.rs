//! Witness construction: build a legal instance for a consistent schema.
//!
//! Theorem 5.2's "if" direction says a schema whose closure avoids `◇∅`
//! admits at least one legal instance. This module makes that constructive:
//! a chase over the required elements builds a finite instance, which is
//! then verified with the legality checker. The builder doubles as an
//! empirical completeness check for the inference engine — if it ever fails
//! on a schema the engine calls consistent, either the chase strategy or
//! the rule set is missing a case (property tests watch for this).

use std::collections::BTreeSet;
use std::fmt;

use bschema_directory::{DirectoryInstance, Entry};

use crate::legality::{LegalityChecker, LegalityReport};
use crate::schema::{ClassId, DirectorySchema, ForbidKind, RelKind};

/// Why witness construction failed.
#[derive(Debug, Clone)]
pub enum WitnessError {
    /// The chase kept creating entries past the size budget — the schema is
    /// likely inconsistent via a cycle (or the budget was too small).
    Diverged {
        /// The node budget that was exhausted.
        budget: usize,
    },
    /// A forced placement required one node to belong to incomparable core
    /// classes.
    IncompatibleClasses {
        /// Name of one class.
        first: String,
        /// Name of the other.
        second: String,
    },
    /// A required child/descendant could not be placed without violating a
    /// forbidden relationship.
    Blocked {
        /// Human-readable description of the blocked obligation.
        obligation: String,
    },
    /// The chase finished but the result failed the legality check — an
    /// incompleteness signal (see module docs).
    IllegalWitness(LegalityReport),
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::Diverged { budget } => {
                write!(f, "witness chase exceeded {budget} nodes (cyclic requirements?)")
            }
            WitnessError::IncompatibleClasses { first, second } => {
                write!(f, "a forced node would need incomparable classes {first:?} and {second:?}")
            }
            WitnessError::Blocked { obligation } => {
                write!(f, "cannot satisfy {obligation} without violating a forbidden relationship")
            }
            WitnessError::IllegalWitness(report) => {
                write!(f, "chase produced an illegal instance:\n{report}")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// An abstract tree node during the chase.
#[derive(Debug, Clone, Default)]
struct Node {
    /// Core classes, kept superclass-closed and chain-shaped.
    classes: BTreeSet<ClassId>,
    parent: Option<usize>,
    children: Vec<usize>,
}

/// The witness builder.
#[derive(Debug, Clone)]
pub struct WitnessBuilder<'s> {
    schema: &'s DirectorySchema,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    budget: usize,
}

impl<'s> WitnessBuilder<'s> {
    /// A builder for `schema` with a node budget derived from the schema
    /// size (quadratic headroom over the obligation count).
    pub fn new(schema: &'s DirectorySchema) -> Self {
        let base = schema.classes().len() + schema.structure().len() + 4;
        WitnessBuilder { schema, nodes: Vec::new(), roots: Vec::new(), budget: base * base + 64 }
    }

    /// Overrides the node budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the chase and returns a verified-legal instance.
    pub fn build(mut self) -> Result<DirectoryInstance, WitnessError> {
        // Seed: one node per required class.
        let required: Vec<ClassId> = self.schema.structure().required_classes().collect();
        for class in required {
            let node = self.new_node(class)?;
            self.roots.push(node);
            self.nodes[node].parent = None;
        }

        // Chase to fixpoint.
        loop {
            let mut changed = false;
            // Snapshot indices; new nodes are processed in later sweeps.
            for node in 0..self.nodes.len() {
                changed |= self.discharge_obligations(node)?;
                if self.nodes.len() > self.budget {
                    return Err(WitnessError::Diverged { budget: self.budget });
                }
            }
            if !changed {
                break;
            }
        }

        let dir = self.materialize();
        let report = LegalityChecker::new(self.schema).check(&dir);
        if report.is_legal() {
            Ok(dir)
        } else {
            Err(WitnessError::IllegalWitness(report))
        }
    }

    fn new_node(&mut self, class: ClassId) -> Result<usize, WitnessError> {
        let mut node = Node::default();
        Self::merge_chain_into(self.schema, &mut node.classes, class)?;
        self.nodes.push(node);
        Ok(self.nodes.len() - 1)
    }

    /// Adds `class` and its superclasses to `set`, verifying the result is
    /// still a chain.
    fn merge_chain_into(
        schema: &DirectorySchema,
        set: &mut BTreeSet<ClassId>,
        class: ClassId,
    ) -> Result<(), WitnessError> {
        let classes = schema.classes();
        for c in classes.superclass_chain(class) {
            for &existing in set.iter() {
                if classes.are_exclusive(c, existing) {
                    return Err(WitnessError::IncompatibleClasses {
                        first: classes.name(c).to_owned(),
                        second: classes.name(existing).to_owned(),
                    });
                }
            }
            set.insert(c);
        }
        Ok(())
    }

    fn has_class(&self, node: usize, class: ClassId) -> bool {
        self.nodes[node].classes.contains(&class)
    }

    fn ancestors(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[node].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    fn descendants(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.nodes[node].children.clone();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.nodes[n].children.iter().copied());
        }
        out
    }

    /// True if creating a `lower`-classed child under `node` would violate a
    /// forbidden-child element literally (checking `node`'s classes), or a
    /// forbidden-descendant element from `node` or any ancestor.
    fn child_blocked(&self, node: usize, lower: ClassId) -> bool {
        let classes = self.schema.classes();
        let lower_chain: BTreeSet<ClassId> = classes.superclass_chain(lower).into_iter().collect();
        for rel in self.schema.structure().forbidden_rels() {
            if !lower_chain.contains(&rel.lower) {
                continue;
            }
            match rel.kind {
                ForbidKind::Child => {
                    if self.has_class(node, rel.upper) {
                        return true;
                    }
                }
                ForbidKind::Descendant => {
                    if self.has_class(node, rel.upper)
                        || self.ancestors(node).iter().any(|&a| self.has_class(a, rel.upper))
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn add_child(&mut self, parent: usize, class: ClassId) -> Result<usize, WitnessError> {
        let child = self.new_node(class)?;
        self.nodes[child].parent = Some(parent);
        self.nodes[parent].children.push(child);
        Ok(child)
    }

    /// Creates a fresh parent above `node` (which must currently be a root).
    fn add_parent_above_root(
        &mut self,
        node: usize,
        class: ClassId,
    ) -> Result<usize, WitnessError> {
        debug_assert!(self.nodes[node].parent.is_none());
        let parent = self.new_node(class)?;
        self.nodes[node].parent = Some(parent);
        self.nodes[parent].children.push(node);
        let pos = self.roots.iter().position(|&r| r == node).expect("node was a root");
        self.roots[pos] = parent;
        Ok(parent)
    }

    /// Discharges every required-relationship obligation of `node` once;
    /// returns whether anything changed.
    fn discharge_obligations(&mut self, node: usize) -> Result<bool, WitnessError> {
        let mut changed = false;
        let rels: Vec<_> = self.schema.structure().required_rels().to_vec();
        for rel in rels {
            if !self.has_class(node, rel.source) {
                continue;
            }
            match rel.kind {
                RelKind::Child => {
                    let ok =
                        self.nodes[node].children.iter().any(|&c| self.has_class(c, rel.target));
                    if !ok {
                        if self.child_blocked(node, rel.target) {
                            return Err(WitnessError::Blocked {
                                obligation: self.schema.display_required(&rel),
                            });
                        }
                        self.add_child(node, rel.target)?;
                        changed = true;
                    }
                }
                RelKind::Descendant => {
                    let ok = self.descendants(node).iter().any(|&d| self.has_class(d, rel.target));
                    if !ok {
                        if !self.child_blocked(node, rel.target) {
                            self.add_child(node, rel.target)?;
                        } else if !self.child_blocked(node, self.schema.classes().top()) {
                            // Route around a forbidden-child rule with a
                            // plain `top` spacer.
                            let spacer = self.add_child(node, self.schema.classes().top())?;
                            if self.child_blocked(spacer, rel.target) {
                                return Err(WitnessError::Blocked {
                                    obligation: self.schema.display_required(&rel),
                                });
                            }
                            self.add_child(spacer, rel.target)?;
                        } else {
                            return Err(WitnessError::Blocked {
                                obligation: self.schema.display_required(&rel),
                            });
                        }
                        changed = true;
                    }
                }
                RelKind::Parent => match self.nodes[node].parent {
                    Some(p) => {
                        if !self.has_class(p, rel.target) {
                            let mut merged = self.nodes[p].classes.clone();
                            Self::merge_chain_into(self.schema, &mut merged, rel.target)?;
                            self.nodes[p].classes = merged;
                            changed = true;
                        }
                    }
                    None => {
                        self.add_parent_above_root(node, rel.target)?;
                        changed = true;
                    }
                },
                RelKind::Ancestor => {
                    let ok = self.ancestors(node).iter().any(|&a| self.has_class(a, rel.target));
                    if ok {
                        continue;
                    }
                    // Try merging into the nearest compatible ancestor.
                    let mut satisfied = false;
                    for a in self.ancestors(node) {
                        let mut merged = self.nodes[a].classes.clone();
                        if Self::merge_chain_into(self.schema, &mut merged, rel.target).is_ok() {
                            self.nodes[a].classes = merged;
                            satisfied = true;
                            break;
                        }
                    }
                    if !satisfied {
                        // Create a new root above this node's current root.
                        let mut top_node = node;
                        while let Some(p) = self.nodes[top_node].parent {
                            top_node = p;
                        }
                        self.add_parent_above_root(top_node, rel.target)?;
                    }
                    changed = true;
                }
            }
        }
        Ok(changed)
    }

    /// Turns the abstract tree into a directory instance, filling required
    /// attributes with placeholder values.
    fn materialize(&self) -> DirectoryInstance {
        let mut dir = DirectoryInstance::default();
        let mut ids = vec![None; self.nodes.len()];
        // Roots first, then a preorder sweep.
        let mut stack: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            let entry = self.entry_for(n);
            let id = match self.nodes[n].parent {
                Some(p) => dir
                    .add_child_entry(ids[p].expect("parents are materialized first"), entry)
                    .expect("parent id is live"),
                None => dir.add_root_entry(entry),
            };
            ids[n] = Some(id);
            stack.extend(self.nodes[n].children.iter().rev().copied());
        }
        dir.prepare();
        dir
    }

    fn entry_for(&self, node: usize) -> Entry {
        let classes = self.schema.classes();
        let mut builder = Entry::builder();
        for &c in &self.nodes[node].classes {
            builder = builder.class(classes.name(c));
        }
        let mut entry = builder.build();
        for &c in &self.nodes[node].classes {
            for attr in self.schema.attributes().required(c) {
                if !entry.has_attribute(attr) {
                    entry.add_value(attr, "w");
                }
            }
        }
        entry
    }
}

/// Convenience: check consistency and, if consistent, build the witness.
pub fn build_witness(schema: &DirectorySchema) -> Result<DirectoryInstance, WitnessError> {
    WitnessBuilder::new(schema).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::ConsistencyChecker;
    use crate::paper::white_pages_schema;

    #[test]
    fn white_pages_schema_has_a_witness() {
        let schema = white_pages_schema();
        assert!(ConsistencyChecker::new(&schema).check().is_consistent());
        let witness = build_witness(&schema).expect("consistent schema must have a witness");
        assert!(!witness.is_empty());
        assert!(LegalityChecker::new(&schema).check(&witness).is_legal());
    }

    #[test]
    fn empty_schema_has_empty_witness() {
        let schema = DirectorySchema::new();
        let witness = build_witness(&schema).unwrap();
        assert!(witness.is_empty());
    }

    #[test]
    fn parent_chain_schema() {
        // ◇c1, c1 needs c2 parent, c2 needs c3 parent: three-node chain.
        let schema = DirectorySchema::builder()
            .core_class("c1", "top")
            .and_then(|b| b.core_class("c2", "top"))
            .and_then(|b| b.core_class("c3", "top"))
            .and_then(|b| b.require_class("c1"))
            .and_then(|b| b.require_rel("c1", RelKind::Parent, "c2"))
            .and_then(|b| b.require_rel("c2", RelKind::Parent, "c3"))
            .map(|b| b.build())
            .unwrap();
        let witness = build_witness(&schema).unwrap();
        assert_eq!(witness.len(), 3);
        assert!(LegalityChecker::new(&schema).check(&witness).is_legal());
    }

    #[test]
    fn descendant_routed_around_forbidden_child() {
        // c1 needs a c2 descendant but may not have a c2 child: the chase
        // inserts a top spacer.
        let schema = DirectorySchema::builder()
            .core_class("c1", "top")
            .and_then(|b| b.core_class("c2", "top"))
            .and_then(|b| b.require_class("c1"))
            .and_then(|b| b.require_rel("c1", RelKind::Descendant, "c2"))
            .and_then(|b| b.forbid_rel("c1", crate::schema::ForbidKind::Child, "c2"))
            .map(|b| b.build())
            .unwrap();
        assert!(ConsistencyChecker::new(&schema).check().is_consistent());
        let witness = build_witness(&schema).unwrap();
        assert!(LegalityChecker::new(&schema).check(&witness).is_legal());
        assert_eq!(witness.len(), 3); // c1, spacer, c2
    }

    #[test]
    fn inconsistent_cycle_diverges_or_blocks() {
        // ◇c1, c1 →ch c2, c2 →de c1: the §5.1 cycle — no finite instance.
        let schema = DirectorySchema::builder()
            .core_class("c1", "top")
            .and_then(|b| b.core_class("c2", "top"))
            .and_then(|b| b.require_class("c1"))
            .and_then(|b| b.require_rel("c1", RelKind::Child, "c2"))
            .and_then(|b| b.require_rel("c2", RelKind::Descendant, "c1"))
            .map(|b| b.build())
            .unwrap();
        assert!(!ConsistencyChecker::new(&schema).check().is_consistent());
        assert!(matches!(
            WitnessBuilder::new(&schema).with_budget(200).build(),
            Err(WitnessError::Diverged { .. })
        ));
    }
}
