//! Testing schema consistency (§5).
//!
//! A bounding-schema is *consistent* if it admits at least one legal
//! instance. §5 shows inconsistency stems from two causes — **cycles** in
//! the required structure (possibly induced through the class hierarchy)
//! and **contradictions** between required and forbidden elements — and
//! detects both with an inference system (Figures 6–7) closed under
//! fixpoint: the schema is consistent iff the closure does not derive `◇∅`
//! (Theorem 5.2), decidable in polynomial time.
//!
//! * [`element`] — schema elements over core classes plus the pseudo-class
//!   `∅`;
//! * [`engine`] — the rule set and worklist fixpoint, with derivation
//!   (proof) tracking and human-readable inconsistency explanations;
//! * [`witness`] — a chase-based constructor that builds a legal instance
//!   for consistent schemas, making Theorem 5.2's "if" direction executable.

pub mod element;
pub mod engine;
pub mod witness;

pub use element::{ClassTerm, Element};
pub use engine::{rules, ConsistencyChecker, ConsistencyResult, Derivation};
pub use witness::{build_witness, WitnessBuilder, WitnessError};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::white_pages_schema;
    use crate::schema::{DirectorySchema, ForbidKind, RelKind};

    fn chain_schema(
        build: impl FnOnce(
            crate::schema::SchemaBuilder,
        ) -> Result<crate::schema::SchemaBuilder, crate::schema::SchemaError>,
    ) -> DirectorySchema {
        build(DirectorySchema::builder()).map(|b| b.build()).unwrap()
    }

    #[test]
    fn white_pages_is_consistent() {
        let schema = white_pages_schema();
        let result = ConsistencyChecker::new(&schema).check();
        assert!(result.is_consistent());
        assert!(result.explain_inconsistency().is_none());
        assert!(result.closure_size() > schema.structure().len());
    }

    #[test]
    fn section_5_1_simple_cycle() {
        // ◇c1, c1 →ch c2, c2 →de c1 entail an infinite chain.
        let schema = chain_schema(|b| {
            b.core_class("c1", "top")?
                .core_class("c2", "top")?
                .require_class("c1")?
                .require_rel("c1", RelKind::Child, "c2")?
                .require_rel("c2", RelKind::Descendant, "c1")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
        let proof = result.explain_inconsistency().unwrap();
        assert!(proof.contains("◇∅"), "{proof}");
        assert!(proof.contains("loop") || proof.contains("transitivity"), "{proof}");
    }

    #[test]
    fn cycle_without_required_class_is_consistent() {
        // Footnote 3: the two relationships without ◇c1 are satisfiable by
        // an instance with no c1/c2 entries.
        let schema = chain_schema(|b| {
            b.core_class("c1", "top")?
                .core_class("c2", "top")?
                .require_rel("c1", RelKind::Child, "c2")?
                .require_rel("c2", RelKind::Descendant, "c1")
        });
        assert!(ConsistencyChecker::new(&schema).check().is_consistent());
    }

    #[test]
    fn section_5_1_subclass_interaction_cycle() {
        // ◇c1, c2 →pa c3, c4 →an c5, with c1 ⇒ c2, c3 ⇒ c4, c5 ⇒ c1:
        // an infinite ascending chain through the class hierarchy.
        let schema = chain_schema(|b| {
            b.core_class("c2", "top")?
                .core_class("c1", "c2")? // c1 ⇒ c2
                .core_class("c4", "top")?
                .core_class("c3", "c4")? // c3 ⇒ c4
                .core_class("c5", "c1")? // c5 ⇒ c1
                .require_class("c1")?
                .require_rel("c2", RelKind::Parent, "c3")?
                .require_rel("c4", RelKind::Ancestor, "c5")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent(), "subclass-induced cycle must be caught");
        let proof = result.explain_inconsistency().unwrap();
        assert!(proof.contains("[class-schema]"), "{proof}");
    }

    #[test]
    fn section_5_2_direct_contradiction() {
        // ◇c1, c1 →de c2, c1 ↛de c2.
        let schema = chain_schema(|b| {
            b.core_class("c1", "top")?
                .core_class("c2", "top")?
                .require_class("c1")?
                .require_rel("c1", RelKind::Descendant, "c2")?
                .forbid_rel("c1", ForbidKind::Descendant, "c2")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
        let proof = result.explain_inconsistency().unwrap();
        assert!(proof.contains("direct-conflict"), "{proof}");
    }

    #[test]
    fn contradiction_without_required_class_is_consistent() {
        let schema = chain_schema(|b| {
            b.core_class("c1", "top")?
                .core_class("c2", "top")?
                .require_rel("c1", RelKind::Descendant, "c2")?
                .forbid_rel("c1", ForbidKind::Descendant, "c2")
        });
        assert!(ConsistencyChecker::new(&schema).check().is_consistent());
    }

    #[test]
    fn contradiction_through_subclasses() {
        // Forbidding person ↛de person and requiring researcher →de
        // researcher with ◇researcher: the prohibition descends to the
        // subclass pair.
        let schema = chain_schema(|b| {
            b.core_class("person", "top")?
                .core_class("researcher", "person")?
                .require_class("researcher")?
                .require_rel("researcher", RelKind::Descendant, "researcher")?
                .forbid_rel("person", ForbidKind::Descendant, "person")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
        // Two independent proofs exist (loop and forbid-subclass); either way
        // the verdict stands and the proof tree renders.
        assert!(result.explain_inconsistency().is_some());
    }

    #[test]
    fn child_requirement_conflicting_with_forbidden_child() {
        let schema = chain_schema(|b| {
            b.core_class("a", "top")?
                .core_class("b", "top")?
                .require_class("a")?
                .require_rel("a", RelKind::Child, "b")?
                .forbid_rel("a", ForbidKind::Descendant, "b") // stronger form
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
    }

    #[test]
    fn parenthood_conflict() {
        // a needs both a b parent and a c parent, with b ⇏ c.
        let schema = chain_schema(|b| {
            b.core_class("a", "top")?
                .core_class("b", "top")?
                .core_class("c", "top")?
                .require_class("a")?
                .require_rel("a", RelKind::Parent, "b")?
                .require_rel("a", RelKind::Parent, "c")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
        assert!(result.explain_inconsistency().unwrap().contains("parenthood"));
    }

    #[test]
    fn comparable_double_parent_is_fine() {
        // Both parent classes on one chain: one parent entry satisfies both.
        let schema = chain_schema(|b| {
            b.core_class("b", "top")?
                .core_class("c", "b")?
                .core_class("a", "top")?
                .require_class("a")?
                .require_rel("a", RelKind::Parent, "b")?
                .require_rel("a", RelKind::Parent, "c")
        });
        assert!(ConsistencyChecker::new(&schema).check().is_consistent());
        assert!(build_witness(&schema).is_ok());
    }

    #[test]
    fn child_parent_placement_conflict() {
        // ◇a, a →ch b, b →pa c, a ⇏ c: the b child's parent is the a entry,
        // which cannot be a c.
        let schema = chain_schema(|b| {
            b.core_class("a", "top")?
                .core_class("b", "top")?
                .core_class("c", "top")?
                .require_class("a")?
                .require_rel("a", RelKind::Child, "b")?
                .require_rel("b", RelKind::Parent, "c")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
        assert!(result.explain_inconsistency().unwrap().contains("child-parent"));
    }

    #[test]
    fn impossible_target_propagates() {
        // c2 is impossible (self-descendant loop); ◇c1 requires a c2 child.
        let schema = chain_schema(|b| {
            b.core_class("c1", "top")?
                .core_class("c2", "top")?
                .require_class("c1")?
                .require_rel("c1", RelKind::Child, "c2")?
                .require_rel("c2", RelKind::Descendant, "c2")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
        let proof = result.explain_inconsistency().unwrap();
        // The shortest proof goes ◇c1 → ◇c2 (node-edge) then kills c2 via
        // its self-loop; impossible-target also derives the same bottom.
        assert!(proof.contains("loop"), "{proof}");
    }

    #[test]
    fn required_descendant_of_top_with_forbidden_children() {
        // ◇a with a ↛ch top (a must be a leaf) and a →de b: contradiction
        // via the top-path rules.
        let schema = chain_schema(|b| {
            b.core_class("a", "top")?
                .core_class("b", "top")?
                .require_class("a")?
                .require_rel("a", RelKind::Descendant, "b")?
                .forbid_rel("a", ForbidKind::Child, "top")
        });
        let result = ConsistencyChecker::new(&schema).check();
        assert!(!result.is_consistent());
        let proof = result.explain_inconsistency().unwrap();
        assert!(
            proof.contains("top-path-forbidden") || proof.contains("forbid-subclass"),
            "{proof}"
        );
    }

    #[test]
    fn derivations_are_recorded_for_base_facts() {
        let schema = white_pages_schema();
        let result = ConsistencyChecker::new(&schema).check();
        let person = schema.classes().resolve("person").unwrap();
        let element = Element::Req(person.into());
        let derivation = result.derivation_of(&element).unwrap();
        assert_eq!(derivation.rule, rules::SCHEMA);
        assert!(derivation.premises.is_empty());
        assert!(result.derives(&element));
    }

    #[test]
    fn consistent_schemas_have_witnesses() {
        for schema in [white_pages_schema(), DirectorySchema::new()] {
            let result = ConsistencyChecker::new(&schema).check();
            assert!(result.is_consistent());
            let witness = build_witness(&schema).unwrap();
            assert!(crate::legality::LegalityChecker::new(&schema).check(&witness).is_legal());
        }
    }
}
