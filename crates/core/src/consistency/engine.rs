//! The inference engine: fixpoint closure of the Figures 6–7 rules,
//! with derivation tracking (§5, Theorems 5.1–5.2).
//!
//! The closure runs as a worklist (semi-naive) fixpoint over schema
//! elements. Subclass (`⇒`) and exclusion (`⇏`) facts are fully determined
//! by the class-schema tree, so rules consult the tree directly and record
//! the facts as leaf premises; only `◇`, required-relationship and
//! forbidden-relationship elements flow through the worklist. The universe
//! of such elements is O(|C|² · forms), and each is derived at most once, so
//! the closure is polynomial in the schema size (Theorem 5.2).
//!
//! The rule set is a sound reconstruction of the paper's Figures 6–7 (the
//! published figures are partly garbled in the available text; DESIGN.md
//! documents the reconstruction). Every rule is justified by a semantic
//! argument in its doc comment, which is what Theorem 5.1 (soundness)
//! requires; completeness for consistency detection (Theorem 5.2) is
//! validated empirically by the witness constructor and property tests.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::schema::{ClassId, DirectorySchema, ForbidKind, RelKind};

use super::element::{ClassTerm, Element};

/// How an element entered the closure: the rule name and its premises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// Rule identifier (see the `rules` constants).
    pub rule: &'static str,
    /// The elements this one was derived from (empty for schema facts).
    pub premises: Vec<Element>,
}

/// Rule-name constants, grouped as in the paper's figures.
pub mod rules {
    /// Base fact taken directly from the schema.
    pub const SCHEMA: &str = "schema";
    /// Leaf fact read off the class tree (`⇒` / `⇏`).
    pub const CLASS_SCHEMA: &str = "class-schema";
    // ----- Figure 6: cycles -----
    /// `◇ci, ci →k cj ⊢ ◇cj` — a required relative must exist.
    pub const NODE_EDGE: &str = "node-edge";
    /// `ci →ch cj ⊢ ci →de cj`; `ci →pa cj ⊢ ci →an cj`.
    pub const PATH: &str = "path";
    /// `ci →de cj, cj →de ck ⊢ ci →de ck` (same for `an`).
    pub const TRANSITIVITY: &str = "transitivity";
    /// `ci →de ci ⊢ ci →de ∅` (same for `an`) — a self-requirement forces an
    /// infinite chain, so `ci` entries are impossible in finite instances.
    pub const LOOP: &str = "loop";
    /// `◇ci, ci ⇒ cj ⊢ ◇cj` — members of a subclass are members of the
    /// superclass.
    pub const REQ_SUB: &str = "req-subclass";
    /// `ci →k cj, ci' ⇒ ci ⊢ ci' →k cj` — obligations descend to subclasses.
    pub const SOURCE_SUB: &str = "source-subclass";
    /// `ci →k cj', cj' ⇒ cj ⊢ ci →k cj` — a required relative of a subclass
    /// also witnesses the superclass requirement.
    pub const TARGET_SUB: &str = "target-subclass";
    // ----- Figure 7: contradictions -----
    /// `ci →de top ⊢ ci →ch top`; `ci →an top ⊢ ci →pa top` — in a legal
    /// instance every entry belongs to `top`, so "some descendant" is
    /// equivalent to "some child".
    pub const TOP_PATH: &str = "top-path";
    /// `ci ↛ch top ⊢ ci ↛de top` (childless entries have no descendants);
    /// `top ↛ch ci ⊢ top ↛de ci` (parentless `ci` entries are roots, so
    /// nothing has a `ci` descendant).
    pub const TOP_PATH_FORBIDDEN: &str = "top-path-forbidden";
    /// `ci ↛de cj ⊢ ci ↛ch cj` — a child is a descendant.
    pub const FORBID_PATH: &str = "forbid-path";
    /// Required and forbidden versions of the same relationship:
    /// `ci →k cj, (forbidden counterpart) ⊢ ci →k ∅`.
    pub const DIRECT_CONFLICT: &str = "direct-conflict";
    /// `ci ↛k cj, ci' ⇒ ci ⊢ ci' ↛k cj` and `cj' ⇒ cj ⊢ ci ↛k cj'` —
    /// prohibitions descend to subclasses on both ends.
    pub const FORBID_SUB: &str = "forbid-subclass";
    /// `ci →pa cj, ci →pa ck, cj ⇏ ck ⊢ ci →pa ∅` — the parent is a single
    /// entry and cannot belong to two incomparable core classes.
    pub const PARENTHOOD: &str = "parenthood";
    /// `ci →an cj, ci →an ck, cj ⇏ ck, cj ↛de ck, ck ↛de cj ⊢ ci →an ∅` —
    /// ancestors of one entry form a chain; two required ancestors must be
    /// comparable entries or related by ancestry, all options exhausted.
    pub const ANCESTORHOOD: &str = "ancestorhood";
    /// `ci →ch cj, cj →pa ck, ci ⇏ ck ⊢ ci →ch ∅` — the required child's
    /// parent is the `ci` entry itself, which would have to belong to `ck`.
    pub const CHILD_PARENT: &str = "child-parent";
    /// `ci →k cj, cj →k' ∅ ⊢ ci →k ∅` — a required relative of an impossible
    /// class is itself impossible to provide.
    pub const IMPOSSIBLE_TARGET: &str = "impossible-target";
}

/// The computed closure plus the consistency verdict.
#[derive(Debug, Clone)]
pub struct ConsistencyResult<'s> {
    schema: &'s DirectorySchema,
    derived: HashMap<Element, Derivation>,
    consistent: bool,
}

impl<'s> ConsistencyResult<'s> {
    /// Theorem 5.2: consistent iff `◇∅` was not derived.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// Number of elements in the closure (including leaf class facts that
    /// were touched).
    pub fn closure_size(&self) -> usize {
        self.derived.len()
    }

    /// Whether `element` is in the closure.
    pub fn derives(&self, element: &Element) -> bool {
        self.derived.contains_key(element)
    }

    /// The derivation of `element`, if derived.
    pub fn derivation_of(&self, element: &Element) -> Option<&Derivation> {
        self.derived.get(element)
    }

    /// Iterates the closure.
    pub fn elements(&self) -> impl Iterator<Item = (&Element, &Derivation)> {
        self.derived.iter()
    }

    /// Renders the proof tree of `element` (if derived) in human-readable
    /// form, sharing repeated sub-derivations.
    pub fn explain(&self, element: &Element) -> Option<String> {
        self.derived.get(element)?;
        let mut out = String::new();
        let mut shown: HashSet<Element> = HashSet::new();
        self.render(element, 0, &mut shown, &mut out);
        Some(out)
    }

    /// Renders why the schema is inconsistent; `None` when consistent.
    pub fn explain_inconsistency(&self) -> Option<String> {
        if self.consistent {
            return None;
        }
        self.explain(&Element::bottom())
    }

    fn render(
        &self,
        element: &Element,
        depth: usize,
        shown: &mut HashSet<Element>,
        out: &mut String,
    ) {
        let indent = "  ".repeat(depth);
        let Some(derivation) = self.derived.get(element) else {
            out.push_str(&format!("{indent}{} [missing]\n", element.display(self.schema)));
            return;
        };
        if !shown.insert(*element) {
            out.push_str(&format!("{indent}{} (derived above)\n", element.display(self.schema)));
            return;
        }
        out.push_str(&format!(
            "{indent}{}   [{}]\n",
            element.display(self.schema),
            derivation.rule
        ));
        for premise in &derivation.premises {
            self.render(premise, depth + 1, shown, out);
        }
    }
}

/// The consistency checker for a schema.
#[derive(Debug, Clone, Copy)]
pub struct ConsistencyChecker<'s> {
    schema: &'s DirectorySchema,
    probe: &'s dyn bschema_obs::Probe,
}

impl<'s> ConsistencyChecker<'s> {
    /// A checker for `schema`.
    pub fn new(schema: &'s DirectorySchema) -> Self {
        ConsistencyChecker { schema, probe: bschema_obs::noop() }
    }

    /// Attaches an instrumentation probe counting inference-rule firings
    /// (`consistency.rule.<name>`). The closure and verdict are unchanged.
    pub fn with_probe(mut self, probe: &'s dyn bschema_obs::Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Computes the closure and the consistency verdict.
    pub fn check(&self) -> ConsistencyResult<'s> {
        let probe = self.probe;
        let span = probe.span_start(bschema_obs::NO_SPAN, "consistency.check", 0);
        let mut engine = Engine::new(self.schema).with_probe(probe);
        engine.seed();
        engine.run();
        let consistent = !engine.derived.contains_key(&Element::bottom());
        if probe.enabled() {
            probe.observe("consistency.closure_size", engine.derived.len() as u64);
        }
        probe.span_end(span);
        ConsistencyResult { schema: self.schema, derived: engine.derived, consistent }
    }
}

struct Engine<'s> {
    schema: &'s DirectorySchema,
    probe: &'s dyn bschema_obs::Probe,
    derived: HashMap<Element, Derivation>,
    work: VecDeque<Element>,
    /// `◇` facts present.
    req: HashSet<ClassTerm>,
    /// ReqRel indexed by source: source → (kind, target).
    by_source: HashMap<ClassTerm, Vec<(RelKind, ClassTerm)>>,
    /// ReqRel indexed by target: target → (source, kind).
    by_target: HashMap<ClassTerm, Vec<(ClassTerm, RelKind)>>,
    /// Forb indexed by upper: upper → (kind, lower).
    forb_by_upper: HashMap<ClassTerm, Vec<(ForbidKind, ClassTerm)>>,
    /// Forb indexed by lower: lower → (upper, kind).
    forb_by_lower: HashMap<ClassTerm, Vec<(ClassTerm, ForbidKind)>>,
    /// Classes proven impossible, with the witnessing `c →k ∅` element.
    impossible: HashMap<ClassTerm, Element>,
    /// Proper subclasses per core class (precomputed from the tree).
    subclasses: HashMap<ClassId, Vec<ClassId>>,
}

impl<'s> Engine<'s> {
    fn new(schema: &'s DirectorySchema) -> Self {
        let mut subclasses: HashMap<ClassId, Vec<ClassId>> = HashMap::new();
        for c in schema.classes().core_classes() {
            for sup in schema.classes().superclass_chain(c).into_iter().skip(1) {
                subclasses.entry(sup).or_default().push(c);
            }
        }
        Engine {
            schema,
            probe: bschema_obs::noop(),
            derived: HashMap::new(),
            work: VecDeque::new(),
            req: HashSet::new(),
            by_source: HashMap::new(),
            by_target: HashMap::new(),
            forb_by_upper: HashMap::new(),
            forb_by_lower: HashMap::new(),
            impossible: HashMap::new(),
            subclasses: HashMap::new(),
        }
        .with_subclasses(subclasses)
    }

    fn with_subclasses(mut self, subclasses: HashMap<ClassId, Vec<ClassId>>) -> Self {
        self.subclasses = subclasses;
        self
    }

    fn with_probe(mut self, probe: &'s dyn bschema_obs::Probe) -> Self {
        self.probe = probe;
        self
    }

    fn seed(&mut self) {
        let structure = self.schema.structure();
        let base: Vec<Element> = structure
            .required_classes()
            .map(|c| Element::Req(c.into()))
            .chain(
                structure
                    .required_rels()
                    .iter()
                    .map(|r| Element::ReqRel(r.source.into(), r.kind, r.target.into())),
            )
            .chain(structure.forbidden_rels().iter().map(|r| {
                let kind = match r.kind {
                    crate::schema::ForbidKind::Child => ForbidKind::Child,
                    crate::schema::ForbidKind::Descendant => ForbidKind::Descendant,
                };
                Element::Forb(r.upper.into(), kind, r.lower.into())
            }))
            .collect();
        for element in base {
            self.add(element, rules::SCHEMA, Vec::new());
        }
    }

    /// Records a class-tree leaf fact so proof trees can resolve it.
    fn leaf(&mut self, element: Element) -> Element {
        if !self.derived.contains_key(&element) {
            if self.probe.enabled() {
                self.probe.add_labeled("consistency.rule", rules::CLASS_SCHEMA, 1);
            }
            self.derived
                .insert(element, Derivation { rule: rules::CLASS_SCHEMA, premises: Vec::new() });
        }
        element
    }

    fn add(&mut self, element: Element, rule: &'static str, premises: Vec<Element>) {
        if self.derived.contains_key(&element) {
            return;
        }
        if self.probe.enabled() {
            self.probe.add_labeled("consistency.rule", rule, 1);
        }
        self.derived.insert(element, Derivation { rule, premises });
        match element {
            Element::Req(t) => {
                self.req.insert(t);
            }
            Element::ReqRel(a, k, b) => {
                self.by_source.entry(a).or_default().push((k, b));
                self.by_target.entry(b).or_default().push((a, k));
                if b == ClassTerm::Empty {
                    self.impossible.entry(a).or_insert(element);
                }
            }
            Element::Forb(a, k, b) => {
                self.forb_by_upper.entry(a).or_default().push((k, b));
                self.forb_by_lower.entry(b).or_default().push((a, k));
            }
            Element::Sub(..) | Element::Excl(..) => {}
        }
        self.work.push_back(element);
    }

    fn run(&mut self) {
        while let Some(element) = self.work.pop_front() {
            match element {
                Element::Req(t) => self.on_req(t),
                Element::ReqRel(a, k, b) => self.on_reqrel(a, k, b),
                Element::Forb(a, k, b) => self.on_forb(a, k, b),
                Element::Sub(..) | Element::Excl(..) => {}
            }
        }
    }

    fn has_forb(&self, a: ClassTerm, k: ForbidKind, b: ClassTerm) -> bool {
        self.forb_by_upper.get(&a).is_some_and(|v| v.contains(&(k, b)))
    }

    fn has_reqrel(&self, a: ClassTerm, k: RelKind, b: ClassTerm) -> bool {
        self.by_source.get(&a).is_some_and(|v| v.contains(&(k, b)))
    }

    fn excl(&self, a: ClassTerm, b: ClassTerm) -> Option<(ClassId, ClassId)> {
        let (ca, cb) = (a.class()?, b.class()?);
        self.schema.classes().are_exclusive(ca, cb).then_some((ca, cb))
    }

    // ----- rule triggers -----

    fn on_req(&mut self, t: ClassTerm) {
        // NODE_EDGE: ◇t + (t →k b) ⊢ ◇b.
        let partners: Vec<(RelKind, ClassTerm)> =
            self.by_source.get(&t).cloned().unwrap_or_default();
        for (k, b) in partners {
            self.add(
                Element::Req(b),
                rules::NODE_EDGE,
                vec![Element::Req(t), Element::ReqRel(t, k, b)],
            );
        }
        // REQ_SUB: ◇c ⊢ ◇sup for every proper superclass.
        if let Some(c) = t.class() {
            for sup in self.schema.classes().superclass_chain(c).into_iter().skip(1) {
                let sub_fact = self.leaf(Element::Sub(c.into(), sup.into()));
                self.add(Element::Req(sup.into()), rules::REQ_SUB, vec![Element::Req(t), sub_fact]);
            }
        }
    }

    fn on_reqrel(&mut self, a: ClassTerm, k: RelKind, b: ClassTerm) {
        let this = Element::ReqRel(a, k, b);
        let top: ClassTerm = self.schema.classes().top().into();

        // NODE_EDGE (other arrival order).
        if self.req.contains(&a) {
            self.add(Element::Req(b), rules::NODE_EDGE, vec![Element::Req(a), this]);
        }

        // PATH.
        match k {
            RelKind::Child => {
                self.add(Element::ReqRel(a, RelKind::Descendant, b), rules::PATH, vec![this]);
            }
            RelKind::Parent => {
                self.add(Element::ReqRel(a, RelKind::Ancestor, b), rules::PATH, vec![this]);
            }
            _ => {}
        }

        // TRANSITIVITY (both directions), de and an; middle must be a real
        // class.
        if matches!(k, RelKind::Descendant | RelKind::Ancestor) {
            if b.class().is_some() {
                let nexts: Vec<(RelKind, ClassTerm)> =
                    self.by_source.get(&b).cloned().unwrap_or_default();
                for (k2, c) in nexts {
                    if k2 == k {
                        self.add(
                            Element::ReqRel(a, k, c),
                            rules::TRANSITIVITY,
                            vec![this, Element::ReqRel(b, k, c)],
                        );
                    }
                }
            }
            if a.class().is_some() {
                let prevs: Vec<(ClassTerm, RelKind)> =
                    self.by_target.get(&a).cloned().unwrap_or_default();
                for (x, k0) in prevs {
                    if k0 == k {
                        self.add(
                            Element::ReqRel(x, k, b),
                            rules::TRANSITIVITY,
                            vec![Element::ReqRel(x, k, a), this],
                        );
                    }
                }
            }
        }

        // LOOP.
        if a == b && a.class().is_some() && matches!(k, RelKind::Descendant | RelKind::Ancestor) {
            self.add(Element::ReqRel(a, k, ClassTerm::Empty), rules::LOOP, vec![this]);
        }

        // SOURCE_SUB: obligations descend to subclasses of the source.
        if let Some(ca) = a.class() {
            let subs = self.subclasses.get(&ca).cloned().unwrap_or_default();
            for sub in subs {
                let fact = self.leaf(Element::Sub(sub.into(), a));
                self.add(Element::ReqRel(sub.into(), k, b), rules::SOURCE_SUB, vec![this, fact]);
            }
        }

        // TARGET_SUB: targets weaken to superclasses.
        if let Some(cb) = b.class() {
            for sup in self.schema.classes().superclass_chain(cb).into_iter().skip(1) {
                let fact = self.leaf(Element::Sub(b, sup.into()));
                self.add(Element::ReqRel(a, k, sup.into()), rules::TARGET_SUB, vec![this, fact]);
            }
        }

        // TOP_PATH.
        if b == top {
            match k {
                RelKind::Descendant => {
                    self.add(Element::ReqRel(a, RelKind::Child, top), rules::TOP_PATH, vec![this]);
                }
                RelKind::Ancestor => {
                    self.add(Element::ReqRel(a, RelKind::Parent, top), rules::TOP_PATH, vec![this]);
                }
                _ => {}
            }
        }

        // DIRECT_CONFLICT (required side arriving).
        let conflict = match k {
            RelKind::Child => self.has_forb(a, ForbidKind::Child, b).then_some(Element::Forb(
                a,
                ForbidKind::Child,
                b,
            )),
            RelKind::Descendant => self
                .has_forb(a, ForbidKind::Descendant, b)
                .then_some(Element::Forb(a, ForbidKind::Descendant, b)),
            RelKind::Parent => self.has_forb(b, ForbidKind::Child, a).then_some(Element::Forb(
                b,
                ForbidKind::Child,
                a,
            )),
            RelKind::Ancestor => self
                .has_forb(b, ForbidKind::Descendant, a)
                .then_some(Element::Forb(b, ForbidKind::Descendant, a)),
        };
        if let Some(forb) = conflict {
            self.add(
                Element::ReqRel(a, k, ClassTerm::Empty),
                rules::DIRECT_CONFLICT,
                vec![this, forb],
            );
        }

        // PARENTHOOD: two incomparable required parent classes.
        if k == RelKind::Parent {
            let siblings: Vec<(RelKind, ClassTerm)> =
                self.by_source.get(&a).cloned().unwrap_or_default();
            for (k2, c2) in siblings {
                if k2 == RelKind::Parent && c2 != b && self.excl(b, c2).is_some() {
                    let fact = self.leaf(Element::Excl(b, c2));
                    self.add(
                        Element::ReqRel(a, RelKind::Parent, ClassTerm::Empty),
                        rules::PARENTHOOD,
                        vec![this, Element::ReqRel(a, RelKind::Parent, c2), fact],
                    );
                }
            }
        }

        // ANCESTORHOOD: two required ancestor classes that can neither
        // coincide nor stack.
        if k == RelKind::Ancestor {
            let siblings: Vec<(RelKind, ClassTerm)> =
                self.by_source.get(&a).cloned().unwrap_or_default();
            for (k2, c2) in siblings {
                if k2 == RelKind::Ancestor
                    && c2 != b
                    && self.excl(b, c2).is_some()
                    && self.has_forb(b, ForbidKind::Descendant, c2)
                    && self.has_forb(c2, ForbidKind::Descendant, b)
                {
                    let fact = self.leaf(Element::Excl(b, c2));
                    self.add(
                        Element::ReqRel(a, RelKind::Ancestor, ClassTerm::Empty),
                        rules::ANCESTORHOOD,
                        vec![
                            this,
                            Element::ReqRel(a, RelKind::Ancestor, c2),
                            fact,
                            Element::Forb(b, ForbidKind::Descendant, c2),
                            Element::Forb(c2, ForbidKind::Descendant, b),
                        ],
                    );
                }
            }
        }

        // CHILD_PARENT: the required child's parent is the source entry.
        if k == RelKind::Child && b.class().is_some() {
            let needs: Vec<(RelKind, ClassTerm)> =
                self.by_source.get(&b).cloned().unwrap_or_default();
            for (k2, ck) in needs {
                if k2 == RelKind::Parent && self.excl(a, ck).is_some() {
                    let fact = self.leaf(Element::Excl(a, ck));
                    self.add(
                        Element::ReqRel(a, RelKind::Child, ClassTerm::Empty),
                        rules::CHILD_PARENT,
                        vec![this, Element::ReqRel(b, RelKind::Parent, ck), fact],
                    );
                }
            }
        }
        // CHILD_PARENT (other arrival order): this is (b', pa, ck); every
        // x with (x, ch, b') and x ⇏ ck conflicts.
        if k == RelKind::Parent && a.class().is_some() {
            let holders: Vec<(ClassTerm, RelKind)> =
                self.by_target.get(&a).cloned().unwrap_or_default();
            for (x, k0) in holders {
                if k0 == RelKind::Child && self.excl(x, b).is_some() {
                    let fact = self.leaf(Element::Excl(x, b));
                    self.add(
                        Element::ReqRel(x, RelKind::Child, ClassTerm::Empty),
                        rules::CHILD_PARENT,
                        vec![Element::ReqRel(x, RelKind::Child, a), this, fact],
                    );
                }
            }
        }

        // IMPOSSIBLE_TARGET.
        if b == ClassTerm::Empty {
            // This marks `a` impossible: propagate to everything requiring
            // an `a` relative.
            let holders: Vec<(ClassTerm, RelKind)> =
                self.by_target.get(&a).cloned().unwrap_or_default();
            for (x, k0) in holders {
                self.add(
                    Element::ReqRel(x, k0, ClassTerm::Empty),
                    rules::IMPOSSIBLE_TARGET,
                    vec![Element::ReqRel(x, k0, a), this],
                );
            }
        } else if let Some(&witness) = self.impossible.get(&b) {
            self.add(
                Element::ReqRel(a, k, ClassTerm::Empty),
                rules::IMPOSSIBLE_TARGET,
                vec![this, witness],
            );
        }
    }

    fn on_forb(&mut self, a: ClassTerm, k: ForbidKind, b: ClassTerm) {
        let this = Element::Forb(a, k, b);
        let top: ClassTerm = self.schema.classes().top().into();

        // FORBID_SUB: prohibitions descend to subclasses on both ends.
        if let Some(ca) = a.class() {
            let subs = self.subclasses.get(&ca).cloned().unwrap_or_default();
            for sub in subs {
                let fact = self.leaf(Element::Sub(sub.into(), a));
                self.add(Element::Forb(sub.into(), k, b), rules::FORBID_SUB, vec![this, fact]);
            }
        }
        if let Some(cb) = b.class() {
            let subs = self.subclasses.get(&cb).cloned().unwrap_or_default();
            for sub in subs {
                let fact = self.leaf(Element::Sub(sub.into(), b));
                self.add(Element::Forb(a, k, sub.into()), rules::FORBID_SUB, vec![this, fact]);
            }
        }

        // FORBID_PATH: ↛de implies ↛ch.
        if k == ForbidKind::Descendant {
            self.add(Element::Forb(a, ForbidKind::Child, b), rules::FORBID_PATH, vec![this]);
        }

        // TOP_PATH_FORBIDDEN.
        if k == ForbidKind::Child && b == top {
            self.add(
                Element::Forb(a, ForbidKind::Descendant, top),
                rules::TOP_PATH_FORBIDDEN,
                vec![this],
            );
        }
        if k == ForbidKind::Child && a == top {
            self.add(
                Element::Forb(top, ForbidKind::Descendant, b),
                rules::TOP_PATH_FORBIDDEN,
                vec![this],
            );
        }

        // DIRECT_CONFLICT (forbidden side arriving).
        match k {
            ForbidKind::Child => {
                if self.has_reqrel(a, RelKind::Child, b) {
                    self.add(
                        Element::ReqRel(a, RelKind::Child, ClassTerm::Empty),
                        rules::DIRECT_CONFLICT,
                        vec![Element::ReqRel(a, RelKind::Child, b), this],
                    );
                }
                if self.has_reqrel(b, RelKind::Parent, a) {
                    self.add(
                        Element::ReqRel(b, RelKind::Parent, ClassTerm::Empty),
                        rules::DIRECT_CONFLICT,
                        vec![Element::ReqRel(b, RelKind::Parent, a), this],
                    );
                }
            }
            ForbidKind::Descendant => {
                if self.has_reqrel(a, RelKind::Descendant, b) {
                    self.add(
                        Element::ReqRel(a, RelKind::Descendant, ClassTerm::Empty),
                        rules::DIRECT_CONFLICT,
                        vec![Element::ReqRel(a, RelKind::Descendant, b), this],
                    );
                }
                if self.has_reqrel(b, RelKind::Ancestor, a) {
                    self.add(
                        Element::ReqRel(b, RelKind::Ancestor, ClassTerm::Empty),
                        rules::DIRECT_CONFLICT,
                        vec![Element::ReqRel(b, RelKind::Ancestor, a), this],
                    );
                }
                // ANCESTORHOOD (forbidden side arriving): complete pairs.
                if self.has_forb(b, ForbidKind::Descendant, a) && self.excl(a, b).is_some() {
                    let holders: Vec<(ClassTerm, RelKind)> =
                        self.by_target.get(&a).cloned().unwrap_or_default();
                    for (x, k0) in holders {
                        if k0 == RelKind::Ancestor && self.has_reqrel(x, RelKind::Ancestor, b) {
                            let fact = self.leaf(Element::Excl(a, b));
                            self.add(
                                Element::ReqRel(x, RelKind::Ancestor, ClassTerm::Empty),
                                rules::ANCESTORHOOD,
                                vec![
                                    Element::ReqRel(x, RelKind::Ancestor, a),
                                    Element::ReqRel(x, RelKind::Ancestor, b),
                                    fact,
                                    this,
                                    Element::Forb(b, ForbidKind::Descendant, a),
                                ],
                            );
                        }
                    }
                }
            }
        }
    }
}
