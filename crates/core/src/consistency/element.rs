//! Schema elements: the sentences the §5 inference system derives.
//!
//! Elements range over the schema's core classes extended with the
//! pseudo-class `∅` ("no object class"). `◇∅` — *there must exist an entry
//! with no associated object class* — is the inconsistency marker: it admits
//! no legal instance, and Theorem 5.2 says the schema is consistent iff the
//! closure does not contain it. Elements of the form `ci →de ∅` / `ci →an ∅`
//! do **not** themselves signal inconsistency: they merely say `ci` entries
//! are impossible, which is fine as long as nothing requires a `ci` entry.

use std::fmt;

use crate::schema::{ClassId, DirectorySchema, ForbidKind, RelKind};

/// A class term: a real core class or the pseudo-class `∅`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClassTerm {
    /// A schema core class.
    Class(ClassId),
    /// The pseudo-class `∅`.
    Empty,
}

impl ClassTerm {
    /// The underlying class, if not `∅`.
    pub fn class(self) -> Option<ClassId> {
        match self {
            ClassTerm::Class(c) => Some(c),
            ClassTerm::Empty => None,
        }
    }

    /// Renders with schema names.
    pub fn display(self, schema: &DirectorySchema) -> String {
        match self {
            ClassTerm::Class(c) => schema.classes().name(c).to_owned(),
            ClassTerm::Empty => "∅".to_owned(),
        }
    }
}

impl From<ClassId> for ClassTerm {
    fn from(c: ClassId) -> Self {
        ClassTerm::Class(c)
    }
}

/// One schema element (sentence) of the inference system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Element {
    /// `◇c`: some entry must belong to `c`. `◇∅` signals inconsistency.
    Req(ClassTerm),
    /// `(ci, k, cj) ∈ Er`-style requirement: every `ci` entry has a
    /// `k`-related `cj` entry. With `cj = ∅` it encodes "`ci` entries are
    /// impossible" (they would need a relative belonging to no class).
    ReqRel(ClassTerm, RelKind, ClassTerm),
    /// Forbidden relationship: no `ci` entry has a `k`-related `cj` entry.
    Forb(ClassTerm, ForbidKind, ClassTerm),
    /// `ci ⇒ cj`: subclass fact from the class schema (leaf premise).
    Sub(ClassTerm, ClassTerm),
    /// `ci ⇏ cj`: exclusion fact from the class schema (leaf premise).
    Excl(ClassTerm, ClassTerm),
}

impl Element {
    /// The inconsistency marker `◇∅`.
    pub const fn bottom() -> Element {
        Element::Req(ClassTerm::Empty)
    }

    /// Renders in paper-style notation with schema names.
    pub fn display(&self, schema: &DirectorySchema) -> String {
        match self {
            Element::Req(c) => format!("◇{}", c.display(schema)),
            Element::ReqRel(a, k, b) => {
                format!("{} →{} {}", a.display(schema), k, b.display(schema))
            }
            Element::Forb(a, k, b) => {
                format!("{} ↛{} {}", a.display(schema), k, b.display(schema))
            }
            Element::Sub(a, b) => format!("{} ⇒ {}", a.display(schema), b.display(schema)),
            Element::Excl(a, b) => format!("{} ⇏ {}", a.display(schema), b.display(schema)),
        }
    }
}

impl fmt::Display for Element {
    /// Schema-free rendering (ids instead of names) for logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let term = |t: &ClassTerm| match t {
            ClassTerm::Class(c) => format!("c{}", c.index()),
            ClassTerm::Empty => "∅".to_owned(),
        };
        match self {
            Element::Req(c) => write!(f, "◇{}", term(c)),
            Element::ReqRel(a, k, b) => write!(f, "{} →{} {}", term(a), k, term(b)),
            Element::Forb(a, k, b) => write!(f, "{} ↛{} {}", term(a), k, term(b)),
            Element::Sub(a, b) => write!(f, "{} ⇒ {}", term(a), term(b)),
            Element::Excl(a, b) => write!(f, "{} ⇏ {}", term(a), term(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::white_pages_schema;

    #[test]
    fn display_with_names() {
        let s = white_pages_schema();
        let person = ClassTerm::Class(s.classes().resolve("person").unwrap());
        let top = ClassTerm::Class(s.classes().top());
        assert_eq!(Element::Req(person).display(&s), "◇person");
        assert_eq!(Element::ReqRel(person, RelKind::Parent, top).display(&s), "person →pa top");
        assert_eq!(Element::Forb(person, ForbidKind::Child, top).display(&s), "person ↛ch top");
        assert_eq!(Element::bottom().display(&s), "◇∅");
        assert_eq!(
            Element::ReqRel(person, RelKind::Descendant, ClassTerm::Empty).display(&s),
            "person →de ∅"
        );
    }

    #[test]
    fn bottom_is_req_empty() {
        assert_eq!(Element::bottom(), Element::Req(ClassTerm::Empty));
        assert_ne!(Element::bottom(), Element::Req(ClassTerm::Class(crate::schema::ClassId(0))));
    }
}
