//! [`ManagedDirectory`]: a directory that *enforces* its bounding-schema.
//!
//! This is the downstream-user API the paper's machinery adds up to: a
//! schema-checked directory server core. Construction verifies the schema
//! is consistent (§5 — a schema nothing can satisfy is rejected up front);
//! every update transaction is applied atomically and checked with the
//! incremental §4 machinery, rolling back if it would leave the directory
//! illegal.

use std::fmt;
use std::sync::Arc;

use bschema_directory::{AttributeRegistry, DirectoryInstance, Entry, EntryId};
use bschema_obs::{Probe, NO_SPAN};
use bschema_query::{evaluate, EvalContext, Query};

use crate::consistency::ConsistencyChecker;
use crate::legality::{LegalityChecker, LegalityOptions, LegalityReport};
use crate::schema::DirectorySchema;
use crate::updates::{apply_and_check_probed, Transaction, TxError};

/// Errors from managed-directory operations.
#[derive(Debug)]
pub enum ManagedError {
    /// The schema admits no legal instance; the payload is the ◇∅
    /// derivation trace.
    InconsistentSchema(String),
    /// A supplied initial instance was not legal.
    IllegalInstance(LegalityReport),
    /// The transaction was structurally invalid (bad refs, orphaning
    /// deletes, ...).
    Transaction(TxError),
    /// Applying the transaction would leave the directory illegal; it was
    /// rolled back.
    RolledBack(LegalityReport),
    /// The engine panicked mid-transaction (e.g. an injected fault or a
    /// dying worker); the pre-transaction snapshot was restored, so the
    /// directory is unchanged and still legal.
    Panicked {
        /// The panic payload, when it carried a message.
        reason: String,
    },
    /// An internal invariant failed in a way the engine could report
    /// without panicking; the transaction was rolled back.
    Internal(String),
    /// Journal recovery could not replay a committed transaction — the
    /// journal disagrees with the base instance it is replayed onto.
    Recovery(String),
}

impl fmt::Display for ManagedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagedError::InconsistentSchema(proof) => {
                write!(f, "schema is inconsistent (admits no legal instance):\n{proof}")
            }
            ManagedError::IllegalInstance(report) => {
                write!(f, "initial instance is illegal:\n{report}")
            }
            ManagedError::Transaction(e) => write!(f, "invalid transaction: {e}"),
            ManagedError::RolledBack(report) => {
                write!(f, "transaction rolled back; it would violate the schema:\n{report}")
            }
            ManagedError::Panicked { reason } => {
                write!(f, "transaction rolled back after a mid-apply panic: {reason}")
            }
            ManagedError::Internal(detail) => {
                write!(f, "transaction rolled back after an internal error: {detail}")
            }
            ManagedError::Recovery(detail) => write!(f, "journal recovery failed: {detail}"),
        }
    }
}

impl ManagedError {
    /// A stable machine-readable code naming the error variant. The wire
    /// server sends this as the first token of an `ERR` response so
    /// clients can dispatch without parsing prose.
    pub fn code(&self) -> &'static str {
        match self {
            ManagedError::InconsistentSchema(_) => "inconsistent-schema",
            ManagedError::IllegalInstance(_) => "illegal-instance",
            ManagedError::Transaction(_) => "invalid-tx",
            ManagedError::RolledBack(_) => "rolled-back",
            ManagedError::Panicked { .. } => "panicked",
            ManagedError::Internal(_) => "internal",
            ManagedError::Recovery(_) => "recovery",
        }
    }
}

impl std::error::Error for ManagedError {}

impl From<TxError> for ManagedError {
    fn from(e: TxError) -> Self {
        ManagedError::Transaction(e)
    }
}

/// Shared, clonable probe slot: `None` stands for the no-op probe, so
/// uninstrumented directories carry no allocation at all.
#[derive(Clone, Default)]
struct ProbeHandle(Option<Arc<dyn Probe + Send + Sync>>);

impl ProbeHandle {
    fn get(&self) -> &dyn Probe {
        match &self.0 {
            Some(p) => p.as_ref(),
            None => bschema_obs::noop(),
        }
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() { "ProbeHandle(set)" } else { "ProbeHandle(noop)" })
    }
}

/// Records the diagnostics of a rolled-back transaction. Called with the
/// offending report **before** the snapshot is restored, so a failed
/// transaction still surfaces the violation set that caused the rollback
/// instead of silently dropping it with the rejected state.
fn record_rollback(probe: &dyn Probe, report: &LegalityReport) {
    if !probe.enabled() {
        return;
    }
    probe.add("managed.tx_rolled_back", 1);
    probe.observe("managed.rollback_violations", report.violations().len() as u64);
    for v in report.violations() {
        probe.add_labeled("managed.rollback_violation", v.kind_name(), 1);
    }
}

/// Extracts a human-readable reason from a caught panic payload.
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs probe-recording code that must never compromise a rollback: a
/// fault injected *inside the probe itself* (or any buggy probe impl) is
/// caught and surfaced as the panic reason instead of unwinding past the
/// snapshot restore.
fn guard_probe(f: impl FnOnce()) -> Option<String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .err()
        .map(|payload| panic_reason(payload.as_ref()))
}

/// Maps an inconsistent consistency-check result to a structured error:
/// a present ◇∅ derivation is the proof, a missing one is an engine bug
/// and says so instead of degrading to an empty string.
pub(crate) fn inconsistency_error(result: &crate::consistency::ConsistencyResult) -> ManagedError {
    match result.explain_inconsistency() {
        Some(proof) => ManagedError::InconsistentSchema(proof),
        None => ManagedError::Internal(
            "consistency checker flagged the schema inconsistent but produced no ◇∅ derivation"
                .to_owned(),
        ),
    }
}

/// A bounding-schema-enforcing directory.
#[derive(Debug, Clone)]
pub struct ManagedDirectory {
    schema: DirectorySchema,
    dir: DirectoryInstance,
    /// Whether the current instance is known legal (enables the incremental
    /// §4 checks; until then transactions are fully rechecked).
    known_legal: bool,
    /// Set while a transaction is in flight and cleared once the snapshot
    /// discipline has resolved it (commit or rollback). If a panic ever
    /// escapes the guarded apply path — a double fault during rollback —
    /// this stays `true` and [`is_legal`](ManagedDirectory::is_legal)
    /// reports `false` until a successful transaction re-certifies.
    poisoned: bool,
    /// Execution engine for every legality / incremental check.
    options: LegalityOptions,
    /// Instrumentation probe threaded into every check (no-op by default).
    probe: ProbeHandle,
}

impl ManagedDirectory {
    /// Creates an empty managed directory after verifying schema
    /// consistency. Note an empty instance is itself illegal when the
    /// schema has required classes (`◇c`); the first transaction must
    /// populate them, and is checked with a full legality pass.
    pub fn new(schema: DirectorySchema, registry: AttributeRegistry) -> Result<Self, ManagedError> {
        let result = ConsistencyChecker::new(&schema).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result));
        }
        let mut dir = DirectoryInstance::new(registry);
        dir.prepare();
        let known_legal = LegalityChecker::new(&schema).check(&dir).is_legal();
        Ok(ManagedDirectory {
            schema,
            dir,
            known_legal,
            poisoned: false,
            options: LegalityOptions::default(),
            probe: ProbeHandle::default(),
        })
    }

    /// Wraps an existing instance, verifying schema consistency and
    /// instance legality.
    pub fn with_instance(
        schema: DirectorySchema,
        mut dir: DirectoryInstance,
    ) -> Result<Self, ManagedError> {
        let result = ConsistencyChecker::new(&schema).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result));
        }
        dir.prepare();
        let report = LegalityChecker::new(&schema).check(&dir);
        if !report.is_legal() {
            return Err(ManagedError::IllegalInstance(report));
        }
        Ok(ManagedDirectory {
            schema,
            dir,
            known_legal: true,
            poisoned: false,
            options: LegalityOptions::default(),
            probe: ProbeHandle::default(),
        })
    }

    /// Wraps an existing instance for journal recovery: schema consistency
    /// is still mandatory, but the base may be illegal (e.g. an empty
    /// directory whose journal bootstraps the required classes) — it is
    /// checked and tracked via `known_legal` exactly like
    /// [`new`](ManagedDirectory::new).
    pub(crate) fn for_recovery(
        schema: DirectorySchema,
        mut dir: DirectoryInstance,
    ) -> Result<Self, ManagedError> {
        let result = ConsistencyChecker::new(&schema).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result));
        }
        dir.prepare();
        let known_legal = LegalityChecker::new(&schema).check(&dir).is_legal();
        Ok(ManagedDirectory {
            schema,
            dir,
            known_legal,
            poisoned: false,
            options: LegalityOptions::default(),
            probe: ProbeHandle::default(),
        })
    }

    /// Selects the execution engine (sequential or data-parallel) used by
    /// every subsequent legality and incremental check. Verdicts and
    /// reports are identical across engines; only the wall-clock differs.
    pub fn with_options(mut self, options: LegalityOptions) -> Self {
        self.options = options;
        self
    }

    /// The configured execution options.
    pub fn options(&self) -> LegalityOptions {
        self.options
    }

    /// Attaches an instrumentation probe recording spans, transaction
    /// outcome counters, and — crucially — the violation set of every
    /// rolled-back transaction. Enforcement behaviour is unchanged.
    pub fn with_probe(mut self, probe: Arc<dyn Probe + Send + Sync>) -> Self {
        self.probe = ProbeHandle(Some(probe));
        self
    }

    /// Swaps the instrumentation probe in place, returning the previous
    /// one (`None` stood for the no-op probe). The wire server uses this
    /// to thread a per-request trace through exactly one `apply` under
    /// the write lock, then restore the per-process probe.
    pub fn swap_probe(
        &mut self,
        probe: Option<Arc<dyn Probe + Send + Sync>>,
    ) -> Option<Arc<dyn Probe + Send + Sync>> {
        std::mem::replace(&mut self.probe, ProbeHandle(probe)).0
    }

    /// The full legality checker configured with this directory's options.
    fn checker(&self) -> LegalityChecker<'_> {
        LegalityChecker::new(&self.schema).with_options(self.options).with_probe(self.probe.get())
    }

    /// The schema being enforced.
    pub fn schema(&self) -> &DirectorySchema {
        &self.schema
    }

    /// Swaps the enforced schema — the epoch cutover of a schema
    /// evolution. Only the Figures 6–7 consistency closure runs here;
    /// the caller attests the instance was already verified legal under
    /// `schema` (the evolution plane's targeted recheck, or a journalled
    /// cutover record that was only committed after one). `known_legal`
    /// is deliberately preserved on the same trust basis as journal
    /// replay trusting committed transactions.
    pub fn set_schema(&mut self, schema: DirectorySchema) -> Result<(), ManagedError> {
        let result = ConsistencyChecker::new(&schema).check();
        if !result.is_consistent() {
            return Err(inconsistency_error(&result));
        }
        self.schema = schema;
        Ok(())
    }

    /// Read access to the underlying instance.
    pub fn instance(&self) -> &DirectoryInstance {
        &self.dir
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True when the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Whether the current contents satisfy the schema. `false` before the
    /// first successful transaction of a directory that starts with unmet
    /// `◇c` requirements, and while the poisoned flag of an unresolved
    /// mid-transaction fault is set.
    pub fn is_legal(&self) -> bool {
        self.known_legal && !self.poisoned
    }

    /// The crash-consistency core every mutating operation runs through.
    ///
    /// The sequence is: snapshot the instance, set the poisoned flag, run
    /// `body` (mutation + legality verdict) under `catch_unwind`, then
    /// resolve — commit on a legal verdict, otherwise restore the
    /// snapshot. Rollback diagnostics are recorded through the probe
    /// **before** the restore, and recording itself is panic-guarded so
    /// not even a fault injected inside the probe can skip the restore.
    /// Whatever happens inside `body` — a structurally invalid
    /// transaction, an illegal verdict, a typed internal error, or a
    /// panic at any instrumented site — the instance afterwards is either
    /// the committed new state or byte-identical to the snapshot.
    fn guarded_apply<R>(
        &mut self,
        body: impl FnOnce(&mut Self, &dyn Probe) -> Result<(R, LegalityReport), ManagedError>,
    ) -> Result<R, ManagedError> {
        let handle = self.probe.clone();
        let probe = handle.get();
        let snapshot = self.dir.clone();
        self.poisoned = true;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let span = probe.span_start(NO_SPAN, "managed.apply", 0);
            (span, body(self, probe))
        }));
        match outcome {
            Ok((span, Ok((value, report)))) if report.is_legal() => {
                self.known_legal = true;
                self.poisoned = false;
                // A probe fault after the verdict must not undo the
                // commit: instrumentation never decides transaction
                // outcomes.
                let _ = guard_probe(|| {
                    if probe.enabled() {
                        probe.add("managed.tx_applied", 1);
                    }
                    probe.span_end(span);
                });
                Ok(value)
            }
            Ok((span, Ok((_, report)))) => {
                let probe_fault = guard_probe(|| record_rollback(probe, &report));
                self.dir = snapshot;
                self.poisoned = false;
                let _ = guard_probe(|| probe.span_end(span));
                match probe_fault {
                    Some(reason) => Err(ManagedError::Panicked { reason }),
                    None => Err(ManagedError::RolledBack(report)),
                }
            }
            Ok((span, Err(e))) => {
                let probe_fault = guard_probe(|| match &e {
                    ManagedError::RolledBack(report) => record_rollback(probe, report),
                    ManagedError::Transaction(_) if probe.enabled() => {
                        probe.add("managed.tx_invalid", 1);
                    }
                    _ => {}
                });
                self.dir = snapshot;
                self.poisoned = false;
                let _ = guard_probe(|| probe.span_end(span));
                match probe_fault {
                    Some(reason) => Err(ManagedError::Panicked { reason }),
                    None => Err(e),
                }
            }
            Err(payload) => {
                // Record the reason before the restore (the span stays
                // open — the tracer renders unclosed spans explicitly,
                // mirroring how the trace of a real crash ends).
                let reason = panic_reason(payload.as_ref());
                let _ = guard_probe(|| {
                    if probe.enabled() {
                        probe.add("managed.tx_panicked", 1);
                        probe.add_labeled("managed.rollback_reason", "panic", 1);
                    }
                });
                self.dir = snapshot;
                self.poisoned = false;
                Err(ManagedError::Panicked { reason })
            }
        }
    }

    /// Applies `tx` atomically: if the resulting directory would be
    /// illegal, no change is made and the violations are returned.
    pub fn apply(&mut self, tx: &Transaction) -> Result<(), ManagedError> {
        self.guarded_apply(|me, probe| {
            if me.known_legal {
                // D is legal: the Theorem 4.1 + Figure 5 incremental path.
                let applied =
                    apply_and_check_probed(&me.schema, &mut me.dir, tx, me.options, probe)?;
                Ok(((), applied.report))
            } else {
                // No legality baseline: apply, then full check.
                let normalized = tx.normalize(&me.dir)?;
                for subtree in &normalized.insertions {
                    subtree.apply(&mut me.dir)?;
                }
                for &root in &normalized.deletion_roots {
                    me.dir.remove_subtree(root).map_err(|e| {
                        ManagedError::Internal(format!(
                            "removing validated deletion root {root}: {e}"
                        ))
                    })?;
                }
                me.dir.prepare();
                Ok(((), me.checker().check(&me.dir)))
            }
        })
    }

    /// Single-insert convenience (one-op transaction).
    pub fn insert_under(&mut self, parent: EntryId, entry: Entry) -> Result<EntryId, ManagedError> {
        let mut tx = Transaction::new();
        tx.insert_under(parent, entry);
        // Capture the id deterministically: it is the root of the single
        // inserted subtree, i.e. the next slot the instance assigns.
        self.apply_returning_root(&tx)
    }

    /// Single root-insert convenience.
    pub fn insert_root(&mut self, entry: Entry) -> Result<EntryId, ManagedError> {
        let mut tx = Transaction::new();
        tx.insert_root(entry);
        self.apply_returning_root(&tx)
    }

    fn apply_returning_root(&mut self, tx: &Transaction) -> Result<EntryId, ManagedError> {
        self.guarded_apply(|me, probe| {
            let applied = if me.known_legal {
                apply_and_check_probed(&me.schema, &mut me.dir, tx, me.options, probe)?
            } else {
                let normalized = tx.normalize(&me.dir)?;
                let mut roots = Vec::new();
                for subtree in &normalized.insertions {
                    roots.push(subtree.apply(&mut me.dir)?[0]);
                }
                me.dir.prepare();
                let report = me.checker().check(&me.dir);
                crate::updates::AppliedTx { inserted_roots: roots, removed: Vec::new(), report }
            };
            let root = applied.inserted_roots.first().copied().ok_or_else(|| {
                ManagedError::Internal("single-insert transaction produced no root".to_owned())
            })?;
            Ok((root, applied.report))
        })
    }

    /// Single subtree-delete convenience: deletes `target` and its whole
    /// subtree in one transaction.
    pub fn delete_subtree(&mut self, target: EntryId) -> Result<(), ManagedError> {
        let mut tx = Transaction::new();
        let forest = self.dir.forest();
        // Delete bottom-up so the transaction is a valid leaf-delete
        // sequence.
        for id in forest.postorder_of(target) {
            tx.delete(id);
        }
        self.apply(&tx)
    }

    /// Modifies one entry's attributes (LDAP Modify), atomically: rolled
    /// back if the result would be illegal.
    pub fn modify_entry(
        &mut self,
        target: EntryId,
        mods: &[crate::updates::Mod],
    ) -> Result<(), ManagedError> {
        self.guarded_apply(|me, _probe| {
            let Some(changed) = crate::updates::apply_mods(&mut me.dir, target, mods) else {
                let report = crate::legality::LegalityReport::from_violations(vec![
                    crate::legality::Violation::ValueViolation {
                        entry: target,
                        message: "no such entry".to_owned(),
                    },
                ]);
                return Ok(((), report));
            };
            me.dir.prepare();
            let report = if me.known_legal {
                crate::updates::check_modification(&me.schema, &me.dir, target, &changed)
            } else {
                me.checker().check(&me.dir)
            };
            Ok(((), report))
        })
    }

    /// Moves the subtree rooted at `target` under `new_parent` (LDAP
    /// ModifyDN), atomically: rolled back if the result would be illegal.
    pub fn move_subtree(
        &mut self,
        target: EntryId,
        new_parent: EntryId,
    ) -> Result<(), ManagedError> {
        self.guarded_apply(|me, probe| {
            if let Err(e) = me.dir.move_subtree(target, new_parent) {
                let report = crate::legality::LegalityReport::from_violations(vec![
                    crate::legality::Violation::ValueViolation {
                        entry: target,
                        message: e.to_string(),
                    },
                ]);
                return Ok(((), report));
            }
            me.dir.prepare();
            let report = if me.known_legal {
                crate::updates::IncrementalChecker::new(&me.schema)
                    .with_options(me.options)
                    .with_probe(probe)
                    .check_move(&me.dir, target)
            } else {
                me.checker().check(&me.dir)
            };
            Ok(((), report))
        })
    }

    /// Evaluates a hierarchical selection query against the directory.
    pub fn query(&self, query: &Query) -> Vec<EntryId> {
        evaluate(&EvalContext::new(&self.dir), query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{white_pages_instance, white_pages_schema};
    use crate::schema::RelKind;

    fn researcher(uid: &str) -> Entry {
        Entry::builder()
            .classes(["researcher", "person", "top"])
            .attr("uid", uid)
            .attr("name", uid)
            .build()
    }

    #[test]
    fn wraps_legal_instance() {
        let (dir, ids) = white_pages_instance();
        let mut managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
        assert!(managed.is_legal());
        assert_eq!(managed.len(), 6);
        // Legal insert goes through.
        let new = managed.insert_under(ids.databases, researcher("milo")).unwrap();
        assert_eq!(managed.len(), 7);
        assert!(managed.instance().contains(new));
    }

    #[test]
    fn rejects_inconsistent_schema() {
        let schema = DirectorySchema::builder()
            .core_class("a", "top")
            .and_then(|b| b.core_class("b", "top"))
            .and_then(|b| b.require_class("a"))
            .and_then(|b| b.require_rel("a", RelKind::Child, "b"))
            .and_then(|b| b.require_rel("b", RelKind::Descendant, "a"))
            .map(|b| b.build())
            .unwrap();
        let err = ManagedDirectory::new(schema, AttributeRegistry::new()).unwrap_err();
        assert!(matches!(err, ManagedError::InconsistentSchema(_)));
        assert!(err.to_string().contains("◇∅"));
    }

    #[test]
    fn rejects_illegal_instance() {
        let (mut dir, ids) = white_pages_instance();
        dir.entry_mut(ids.suciu).unwrap().remove_attribute("name");
        dir.prepare();
        let err = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap_err();
        assert!(matches!(err, ManagedError::IllegalInstance(_)));
    }

    #[test]
    fn illegal_transaction_rolls_back() {
        let (dir, ids) = white_pages_instance();
        let mut managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
        let err = managed
            .insert_under(
                ids.suciu,
                Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "x").build(),
            )
            .unwrap_err();
        assert!(matches!(err, ManagedError::RolledBack(_)));
        assert_eq!(managed.len(), 6, "rollback must restore the instance");
        assert!(managed.is_legal());
    }

    #[test]
    fn delete_subtree_checks_legality() {
        let (dir, ids) = white_pages_instance();
        let mut managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
        // Deleting the whole databases unit removes laks & suciu but keeps
        // armstrong: attLabs still has a person descendant. Legal.
        managed.delete_subtree(ids.databases).unwrap();
        assert_eq!(managed.len(), 3);
        // Deleting armstrong now would leave attLabs with no person
        // descendant (and ◇person unmet): rolled back.
        let err = managed.delete_subtree(ids.armstrong).unwrap_err();
        assert!(matches!(err, ManagedError::RolledBack(_)));
        assert_eq!(managed.len(), 3);
    }

    #[test]
    fn bootstrap_from_empty() {
        // Schema with ◇a: the empty directory is illegal, but a transaction
        // creating an `a` entry fixes it.
        let schema = DirectorySchema::builder()
            .core_class("a", "top")
            .and_then(|b| b.require_class("a"))
            .map(|b| b.build())
            .unwrap();
        let mut managed = ManagedDirectory::new(schema, AttributeRegistry::new()).unwrap();
        assert!(!managed.is_legal());
        // An unrelated insert that leaves ◇a unmet is rejected.
        let err = managed.insert_root(Entry::builder().class("top").build()).unwrap_err();
        assert!(matches!(err, ManagedError::RolledBack(_)));
        // Adding the required entry succeeds.
        managed.insert_root(Entry::builder().classes(["a", "top"]).build()).unwrap();
        assert!(managed.is_legal());
    }

    #[test]
    fn legal_move_is_accepted_and_illegal_move_rolls_back() {
        let (dir, ids) = white_pages_instance();
        let mut managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
        // Legal: move the databases unit directly under the organization.
        managed.move_subtree(ids.databases, ids.att).unwrap();
        assert_eq!(managed.instance().forest().parent(ids.databases), Some(ids.att));
        assert!(managed.is_legal());
        // Illegal: moving armstrong under suciu gives a person a child.
        let err = managed.move_subtree(ids.armstrong, ids.suciu).unwrap_err();
        assert!(matches!(err, ManagedError::RolledBack(_)));
        assert_eq!(
            managed.instance().forest().parent(ids.armstrong),
            Some(ids.att_labs),
            "rollback must restore the old location"
        );
        // Illegal: moving databases away would leave attLabs without a
        // person descendant... armstrong is still under attLabs, so that
        // stays legal — instead move attLabs under laks (person child).
        let err = managed.move_subtree(ids.att_labs, ids.laks).unwrap_err();
        assert!(matches!(err, ManagedError::RolledBack(_)));
    }

    #[test]
    fn modify_entry_enforces_schema() {
        use crate::updates::Mod;
        let (dir, ids) = white_pages_instance();
        let mut managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
        // Legal modification.
        managed
            .modify_entry(
                ids.suciu,
                &[Mod::Add { attribute: "title".into(), value: "researcher".into() }],
            )
            .unwrap();
        // Illegal: dropping a required attribute rolls back.
        let err = managed
            .modify_entry(ids.suciu, &[Mod::DeleteAttribute { attribute: "name".into() }])
            .unwrap_err();
        assert!(matches!(err, ManagedError::RolledBack(_)));
        assert!(managed.instance().entry(ids.suciu).unwrap().has_attribute("name"));
        assert!(managed.is_legal());
    }

    #[test]
    fn query_through_managed_api() {
        let (dir, _) = white_pages_instance();
        let managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
        let persons = managed.query(&Query::object_class("person"));
        assert_eq!(persons.len(), 3);
    }
}
