//! Property tests for the directory substrate: forest invariants under
//! random operation sequences, DN and LDIF round-trips.

use bschema_directory::{ldif, DirectoryInstance, Dn, Entry, EntryId, Forest, Rdn};
use proptest::prelude::*;

// ---------------------------------------------------------------- forest --

/// A random operation on a forest.
#[derive(Debug, Clone)]
enum Op {
    AddRoot,
    AddChild(usize),
    RemoveLeaf(usize),
    RemoveSubtree(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::AddRoot),
        8 => any::<u8>().prop_map(|k| Op::AddChild(k as usize)),
        2 => any::<u8>().prop_map(|k| Op::RemoveLeaf(k as usize)),
        1 => any::<u8>().prop_map(|k| Op::RemoveSubtree(k as usize)),
    ]
}

/// Applies ops, ignoring those whose target cannot be satisfied; returns
/// the forest and the live id list.
fn build(ops: &[Op]) -> (Forest, Vec<EntryId>) {
    let mut forest = Forest::new();
    let mut live: Vec<EntryId> = Vec::new();
    for op in ops {
        match op {
            Op::AddRoot => live.push(forest.add_root()),
            Op::AddChild(k) => {
                if !live.is_empty() {
                    let parent = live[k % live.len()];
                    live.push(forest.add_child(parent).expect("parent is live"));
                }
            }
            Op::RemoveLeaf(k) => {
                if !live.is_empty() {
                    let target = live[k % live.len()];
                    if forest.is_leaf(target) {
                        forest.remove_leaf(target).expect("leaf is removable");
                        live.retain(|&x| x != target);
                    }
                }
            }
            Op::RemoveSubtree(k) => {
                if !live.is_empty() {
                    let target = live[k % live.len()];
                    let removed = forest.remove_subtree(target).expect("target is live");
                    live.retain(|x| !removed.contains(x));
                }
            }
        }
    }
    (forest, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural invariants hold after any operation sequence.
    #[test]
    fn forest_invariants(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let (mut forest, live) = build(&ops);

        // Count agreement.
        prop_assert_eq!(forest.len(), live.len());
        prop_assert_eq!(forest.iter().count(), live.len());
        for &id in &live {
            prop_assert!(forest.contains(id));
        }

        // Preorder iteration visits parents before children.
        let order: Vec<EntryId> = forest.iter().collect();
        for (pos, &id) in order.iter().enumerate() {
            if let Some(parent) = forest.parent(id) {
                let parent_pos = order.iter().position(|&x| x == parent).expect("parent visited");
                prop_assert!(parent_pos < pos, "parent after child in preorder");
            }
        }

        // Interval numbering agrees with link-chasing ancestry, and `end`
        // equals pre + subtree_size - 1.
        forest.ensure_numbered();
        for &a in live.iter().take(20) {
            prop_assert_eq!(
                forest.end(a) as usize,
                forest.pre(a) as usize + forest.subtree_size(a) - 1
            );
            for &d in live.iter().take(20) {
                prop_assert_eq!(forest.interval_is_ancestor(a, d), forest.is_ancestor(a, d));
            }
        }

        // Children/parent are mutually consistent.
        for &id in &live {
            for child in forest.children(id) {
                prop_assert_eq!(forest.parent(child), Some(id));
            }
            prop_assert_eq!(forest.child_count(id) == 0, forest.is_leaf(id));
        }

        // Depth is parent depth + 1.
        for &id in &live {
            match forest.parent(id) {
                Some(p) => prop_assert_eq!(forest.depth(id), forest.depth(p) + 1),
                None => prop_assert_eq!(forest.depth(id), 0),
            }
        }
    }

    /// remove_subtree removes exactly the subtree, post-order.
    #[test]
    fn remove_subtree_is_exact(ops in proptest::collection::vec(op_strategy(), 1..40), pick in any::<prop::sample::Index>()) {
        let (mut forest, live) = build(&ops);
        prop_assume!(!live.is_empty());
        let target = live[pick.index(live.len())];
        let expected: Vec<EntryId> =
            std::iter::once(target).chain(forest.descendants(target)).collect();
        let removed = forest.remove_subtree(target).expect("target live");
        // Same set…
        let mut a = removed.clone();
        let mut b = expected;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // …and post-order: every entry's parent appears later (or is kept).
        for (pos, &id) in removed.iter().enumerate() {
            if let Some(ppos) = removed.iter().position(|&x| {
                // parent links are gone; recompute from the original list
                // order: parent must appear after child in postorder.
                x == id
            }) {
                let _ = (pos, ppos);
            }
        }
        prop_assert_eq!(removed.last(), Some(&target));
        prop_assert_eq!(forest.len(), live.len() - removed.len());
    }
}

// ------------------------------------------------------------------- DN --

fn dn_value_strategy() -> impl Strategy<Value = String> {
    // Printable values with characters that exercise the escaping rules.
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z').prop_map(|c| c.to_string()),
            Just(",".to_owned()),
            Just("+".to_owned()),
            Just("\\".to_owned()),
            Just("=".to_owned()),
            Just(" ".to_owned()),
            Just("#".to_owned()),
            Just("ü".to_owned()),
        ],
        1..8,
    )
    .prop_map(|parts| parts.concat())
    .prop_filter("values may not be all spaces", |s| !s.trim().is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// DN display → parse is the identity on the structured form.
    #[test]
    fn dn_roundtrip(values in proptest::collection::vec(dn_value_strategy(), 1..5)) {
        let rdns: Vec<Rdn> = values
            .iter()
            .enumerate()
            .map(|(i, v)| Rdn::single(format!("a{i}"), v.clone()))
            .collect();
        let dn = Dn::from_rdns(rdns);
        let rendered = dn.to_string();
        let reparsed = Dn::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered DN {rendered:?} failed to parse: {e}"));
        prop_assert_eq!(&reparsed, &dn, "rendered: {}", rendered);
        // Normalization is stable.
        prop_assert_eq!(reparsed.to_normalized_string(), dn.to_normalized_string());
    }
}

// ----------------------------------------------------------------- LDIF --

fn attr_value_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9 .@-]{1,30}",
        // Values that force base64: leading space/colon, non-ASCII, long.
        "[a-z]{0,10}".prop_map(|s| format!(" {s}")),
        "[a-z]{0,10}".prop_map(|s| format!(":{s}")),
        Just("ünïcode välue".to_owned()),
        Just("x".repeat(200)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// dump → load reproduces structure, classes, and attribute values.
    #[test]
    fn ldif_roundtrip(
        shape in proptest::collection::vec(any::<Option<u8>>(), 1..15),
        values in proptest::collection::vec(attr_value_strategy(), 1..15),
    ) {
        let mut dir = DirectoryInstance::default();
        let mut ids: Vec<EntryId> = Vec::new();
        for (i, parent_choice) in shape.iter().enumerate() {
            let value = &values[i % values.len()];
            let entry = Entry::builder()
                .class("top")
                .class(if i % 2 == 0 { "person" } else { "orgUnit" })
                .attr("description", value.clone())
                .attr("uid", format!("e{i}"))
                .build();
            let rdn = Rdn::single("uid", format!("e{i}"));
            let id = match parent_choice {
                Some(k) if !ids.is_empty() => {
                    let parent = ids[*k as usize % ids.len()];
                    dir.add_named_child(parent, rdn, entry).expect("unique uid rdn")
                }
                _ => dir.add_named_root(rdn, entry).expect("unique uid rdn"),
            };
            ids.push(id);
        }

        let text = ldif::dump(&dir).expect("all entries named");
        let mut reloaded = DirectoryInstance::default();
        ldif::load_into(&mut reloaded, &text)
            .unwrap_or_else(|e| panic!("reload failed: {e}\n{text}"));
        prop_assert_eq!(reloaded.len(), dir.len());
        for &id in &ids {
            let dn = dir.dn(id).expect("named");
            let found = reloaded.lookup_dn(&dn)
                .unwrap_or_else(|| panic!("dn {dn} lost in roundtrip"));
            let (orig, copy) = (dir.entry(id).unwrap(), reloaded.entry(found).unwrap());
            prop_assert_eq!(orig.values("description"), copy.values("description"));
            prop_assert_eq!(orig.class_count(), copy.class_count());
            prop_assert_eq!(dir.forest().depth(id), reloaded.forest().depth(found));
        }
    }
}
