//! Secondary indexes over a directory instance.
//!
//! The §3.2 evaluation strategy needs, for each object class `c`, the list of
//! entries belonging to `c` *sorted in document (preorder) order* — that is
//! the "directory entries are sorted" precondition under which hierarchical
//! selection queries evaluate in O(|Q|·|D|). [`InstanceIndex`] materialises
//! those lists, plus per-attribute presence lists for general filters.

use std::collections::HashMap;

use crate::entry::Entry;
use crate::forest::{EntryId, Forest};

/// Preorder-sorted entry lists by object class and by attribute presence.
#[derive(Debug, Clone, Default)]
pub struct InstanceIndex {
    /// lowercase class name → entry ids sorted by preorder rank.
    by_class: HashMap<String, Vec<EntryId>>,
    /// lowercase attribute key → entry ids sorted by preorder rank.
    by_attribute: HashMap<String, Vec<EntryId>>,
    /// All live entries sorted by preorder rank.
    all: Vec<EntryId>,
}

impl InstanceIndex {
    /// Builds the index in one preorder pass. `forest` must be numbered
    /// (entries are visited in preorder, so pushed lists come out sorted).
    pub fn build(forest: &Forest, entries: &[Option<Entry>]) -> InstanceIndex {
        debug_assert!(forest.is_numbered());
        let mut index = InstanceIndex {
            by_class: HashMap::new(),
            by_attribute: HashMap::new(),
            all: Vec::with_capacity(forest.len()),
        };
        for id in forest.iter() {
            index.all.push(id);
            let Some(entry) = entries.get(id.index()).and_then(Option::as_ref) else {
                continue;
            };
            for class in entry.classes() {
                index.by_class.entry(class.to_ascii_lowercase()).or_default().push(id);
            }
            for (attr, _) in entry.attributes() {
                index.by_attribute.entry(attr.to_owned()).or_default().push(id);
            }
        }
        index
    }

    /// Entries that belong to `class` (case-insensitive), preorder-sorted.
    pub fn entries_with_class(&self, class: &str) -> &[EntryId] {
        match self.by_class.get(class) {
            Some(v) => v,
            None => self.by_class.get(&class.to_ascii_lowercase()).map_or(&[], Vec::as_slice),
        }
    }

    /// Entries holding at least one value of `attr`, preorder-sorted.
    pub fn entries_with_attribute(&self, attr: &str) -> &[EntryId] {
        match self.by_attribute.get(attr) {
            Some(v) => v,
            None => self.by_attribute.get(&attr.to_ascii_lowercase()).map_or(&[], Vec::as_slice),
        }
    }

    /// All live entries, preorder-sorted.
    pub fn all_entries(&self) -> &[EntryId] {
        &self.all
    }

    /// Number of entries that belong to `class` (the per-class counts that,
    /// per §4.2, make required-class elements `◇c` incrementally testable
    /// against deletion).
    pub fn class_count(&self, class: &str) -> usize {
        self.entries_with_class(class).len()
    }

    /// The distinct (lowercased) class names present in the instance.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.by_class.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;

    fn sample() -> (Forest, Vec<Option<Entry>>) {
        let mut f = Forest::new();
        let org = f.add_root();
        let unit = f.add_child(org).unwrap();
        let p1 = f.add_child(unit).unwrap();
        let p2 = f.add_child(unit).unwrap();
        f.ensure_numbered();
        let mut entries: Vec<Option<Entry>> = vec![None; f.slot_bound()];
        entries[org.index()] =
            Some(Entry::builder().class("organization").class("top").attr("o", "att").build());
        entries[unit.index()] =
            Some(Entry::builder().class("orgUnit").class("top").attr("ou", "labs").build());
        entries[p1.index()] =
            Some(Entry::builder().class("person").class("top").attr("uid", "a").build());
        entries[p2.index()] = Some(
            Entry::builder()
                .class("person")
                .class("top")
                .attr("uid", "b")
                .attr("mail", "b@x")
                .build(),
        );
        (f, entries)
    }

    #[test]
    fn class_lists_are_preorder_sorted() {
        let (f, entries) = sample();
        let idx = InstanceIndex::build(&f, &entries);
        let tops = idx.entries_with_class("top");
        assert_eq!(tops.len(), 4);
        for w in tops.windows(2) {
            assert!(f.pre(w[0]) < f.pre(w[1]));
        }
        assert_eq!(idx.entries_with_class("person").len(), 2);
        assert_eq!(idx.entries_with_class("PERSON").len(), 2);
        assert!(idx.entries_with_class("absent").is_empty());
    }

    #[test]
    fn attribute_presence() {
        let (f, entries) = sample();
        let idx = InstanceIndex::build(&f, &entries);
        assert_eq!(idx.entries_with_attribute("uid").len(), 2);
        assert_eq!(idx.entries_with_attribute("mail").len(), 1);
        assert_eq!(idx.entries_with_attribute("objectClass").len(), 4);
        assert_eq!(idx.all_entries().len(), 4);
    }

    #[test]
    fn class_counts() {
        let (f, entries) = sample();
        let idx = InstanceIndex::build(&f, &entries);
        assert_eq!(idx.class_count("person"), 2);
        assert_eq!(idx.class_count("organization"), 1);
        assert_eq!(idx.class_count("router"), 0);
        let mut classes: Vec<_> = idx.classes().collect();
        classes.sort_unstable();
        assert_eq!(classes, ["organization", "orgunit", "person", "top"]);
    }
}
