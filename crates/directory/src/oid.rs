//! Object identifiers (OIDs) in dotted-decimal notation.
//!
//! LDAP schema elements (attribute types, object classes, syntaxes) are
//! globally identified by OIDs such as `2.5.4.3` (`cn`). The paper abstracts
//! these away, but a production directory model needs them: they are the
//! stable names under which schema elements are registered and compared.

use std::fmt;
use std::str::FromStr;

/// A dotted-decimal object identifier, e.g. `1.3.6.1.4.1.1466.115.121.1.15`.
///
/// Stored as its arc values. The textual form is available via [`Display`](std::fmt::Display)
/// (`fmt::Display`). OIDs are totally ordered lexicographically by arcs,
/// which matches the ordering of their canonical textual forms component-wise.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid {
    arcs: Vec<u64>,
}

/// Error produced when parsing a textual OID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OidParseError {
    /// The string was empty.
    Empty,
    /// A component was empty (e.g. `1..2` or a trailing dot).
    EmptyArc,
    /// A component contained a non-digit character.
    InvalidDigit(char),
    /// A component overflowed `u64`.
    ArcOverflow,
    /// The first arc must be 0, 1 or 2 per X.660.
    InvalidFirstArc(u64),
    /// When the first arc is 0 or 1, the second arc must be < 40.
    InvalidSecondArc(u64),
}

impl fmt::Display for OidParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OidParseError::Empty => write!(f, "empty OID"),
            OidParseError::EmptyArc => write!(f, "empty OID component"),
            OidParseError::InvalidDigit(c) => write!(f, "invalid character {c:?} in OID"),
            OidParseError::ArcOverflow => write!(f, "OID component exceeds u64"),
            OidParseError::InvalidFirstArc(a) => {
                write!(f, "first OID arc must be 0, 1 or 2, got {a}")
            }
            OidParseError::InvalidSecondArc(a) => {
                write!(f, "second OID arc must be < 40 when first arc is 0 or 1, got {a}")
            }
        }
    }
}

impl std::error::Error for OidParseError {}

impl Oid {
    /// Builds an OID from explicit arcs, validating X.660 constraints.
    pub fn new(arcs: Vec<u64>) -> Result<Self, OidParseError> {
        if arcs.is_empty() {
            return Err(OidParseError::Empty);
        }
        if arcs[0] > 2 {
            return Err(OidParseError::InvalidFirstArc(arcs[0]));
        }
        if arcs[0] < 2 && arcs.len() > 1 && arcs[1] >= 40 {
            return Err(OidParseError::InvalidSecondArc(arcs[1]));
        }
        Ok(Oid { arcs })
    }

    /// The arc values of this OID.
    pub fn arcs(&self) -> &[u64] {
        &self.arcs
    }

    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// OIDs are never empty, but the method mirrors collection conventions.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// True iff `self` is a proper prefix of `other` (i.e. `other` lives in
    /// the subtree this OID roots in the global OID tree).
    pub fn is_prefix_of(&self, other: &Oid) -> bool {
        other.arcs.len() > self.arcs.len() && other.arcs[..self.arcs.len()] == self.arcs[..]
    }

    /// Returns a child OID with one extra arc appended.
    pub fn child(&self, arc: u64) -> Oid {
        let mut arcs = self.arcs.clone();
        arcs.push(arc);
        Oid { arcs }
    }
}

impl FromStr for Oid {
    type Err = OidParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(OidParseError::Empty);
        }
        let mut arcs = Vec::with_capacity(8);
        for part in s.split('.') {
            if part.is_empty() {
                return Err(OidParseError::EmptyArc);
            }
            if let Some(c) = part.chars().find(|c| !c.is_ascii_digit()) {
                return Err(OidParseError::InvalidDigit(c));
            }
            let arc: u64 = part.parse().map_err(|_| OidParseError::ArcOverflow)?;
            arcs.push(arc);
        }
        Oid::new(arcs)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, arc) in self.arcs.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{arc}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let o: Oid = "1.3.6.1.4.1.1466.115.121.1.15".parse().unwrap();
        assert_eq!(o.to_string(), "1.3.6.1.4.1.1466.115.121.1.15");
        assert_eq!(o.len(), 11);
    }

    #[test]
    fn parse_rejects_empty() {
        assert_eq!("".parse::<Oid>(), Err(OidParseError::Empty));
    }

    #[test]
    fn parse_rejects_empty_arc() {
        assert_eq!("1..2".parse::<Oid>(), Err(OidParseError::EmptyArc));
        assert_eq!("1.2.".parse::<Oid>(), Err(OidParseError::EmptyArc));
    }

    #[test]
    fn parse_rejects_non_digit() {
        assert_eq!("1.a.2".parse::<Oid>(), Err(OidParseError::InvalidDigit('a')));
        assert_eq!("1.-2".parse::<Oid>(), Err(OidParseError::InvalidDigit('-')));
    }

    #[test]
    fn parse_rejects_invalid_first_arc() {
        assert_eq!("3.1".parse::<Oid>(), Err(OidParseError::InvalidFirstArc(3)));
    }

    #[test]
    fn parse_rejects_invalid_second_arc() {
        assert_eq!("0.40".parse::<Oid>(), Err(OidParseError::InvalidSecondArc(40)));
        assert_eq!("1.40".parse::<Oid>(), Err(OidParseError::InvalidSecondArc(40)));
        // Arc 2 subtree has no such restriction.
        assert!("2.999".parse::<Oid>().is_ok());
    }

    #[test]
    fn parse_rejects_overflow() {
        assert_eq!("1.99999999999999999999999".parse::<Oid>(), Err(OidParseError::ArcOverflow));
    }

    #[test]
    fn prefix_relation() {
        let root: Oid = "2.5.4".parse().unwrap();
        let cn: Oid = "2.5.4.3".parse().unwrap();
        assert!(root.is_prefix_of(&cn));
        assert!(!cn.is_prefix_of(&root));
        assert!(!root.is_prefix_of(&root));
        assert_eq!(root.child(3), cn);
    }

    #[test]
    fn ordering_is_by_arcs() {
        let a: Oid = "1.2.3".parse().unwrap();
        let b: Oid = "1.2.10".parse().unwrap();
        // Component-wise: 3 < 10 even though "10" < "3" as strings.
        assert!(a < b);
    }
}
