//! Directory entries: sets of (attribute, value) pairs with class membership.
//!
//! Implements Definition 2.1's per-entry structure: `val(r)`, a finite set of
//! (attribute, value) pairs, and `class(r)`, the entry's object classes.
//! Condition 3(b) of the definition — `(objectClass, c) ∈ val(r)` **iff**
//! `c ∈ class(r)` — is enforced structurally: the class set *is* the value
//! set of the `objectClass` attribute; there is no second copy to drift.

use std::collections::BTreeMap;
use std::fmt;

use crate::attribute::OBJECT_CLASS;

/// A directory entry: a multimap from attribute name to value set.
///
/// Attribute names are case-insensitive and stored lowercased; values keep
/// their original spelling. Values of one attribute form a *set*: adding an
/// exact duplicate is a no-op (class names deduplicate case-insensitively).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Entry {
    /// attribute key (lowercase) → values, insertion-ordered within the key.
    attrs: BTreeMap<String, Vec<String>>,
}

impl Entry {
    /// An empty entry (no attributes, no classes). Note an empty entry is
    /// never legal under any bounding-schema: Definition 2.1(2) requires a
    /// non-empty class set — the legality checker reports this.
    pub fn new() -> Self {
        Entry::default()
    }

    /// Starts a fluent builder.
    pub fn builder() -> EntryBuilder {
        EntryBuilder { entry: Entry::new() }
    }

    /// Adds one value to `attr`, preserving set semantics. Returns `true` if
    /// the value was new. For `objectClass`, duplicates are detected
    /// case-insensitively (class names are case-insensitive).
    pub fn add_value(&mut self, attr: &str, value: impl Into<String>) -> bool {
        let key = attr.to_ascii_lowercase();
        let value = value.into();
        let values = self.attrs.entry(key.clone()).or_default();
        let duplicate = if key == OBJECT_CLASS {
            values.iter().any(|v| v.eq_ignore_ascii_case(&value))
        } else {
            values.iter().any(|v| v == &value)
        };
        if duplicate {
            // Avoid leaving an empty value vector behind if we just created it.
            if values.is_empty() {
                self.attrs.remove(&key);
            }
            return false;
        }
        values.push(value);
        true
    }

    /// Removes one value from `attr` (exact match, except class names which
    /// match case-insensitively). Returns `true` if a value was removed.
    /// Removing the last value removes the attribute entirely — Definition
    /// 2.1 has no notion of an attribute that is "present with no values".
    pub fn remove_value(&mut self, attr: &str, value: &str) -> bool {
        let key = attr.to_ascii_lowercase();
        let Some(values) = self.attrs.get_mut(&key) else {
            return false;
        };
        let pos = if key == OBJECT_CLASS {
            values.iter().position(|v| v.eq_ignore_ascii_case(value))
        } else {
            values.iter().position(|v| v == value)
        };
        match pos {
            Some(i) => {
                values.remove(i);
                if values.is_empty() {
                    self.attrs.remove(&key);
                }
                true
            }
            None => false,
        }
    }

    /// Replaces all values of `attr`.
    pub fn set_values(&mut self, attr: &str, values: impl IntoIterator<Item = String>) {
        let key = attr.to_ascii_lowercase();
        self.attrs.remove(&key);
        for v in values {
            self.add_value(&key, v);
        }
    }

    /// Drops an attribute and all its values. Returns `true` if it existed.
    pub fn remove_attribute(&mut self, attr: &str) -> bool {
        self.attrs.remove(&attr.to_ascii_lowercase()).is_some()
    }

    /// The values of `attr` (empty slice if absent).
    pub fn values(&self, attr: &str) -> &[String] {
        let key = attr.to_ascii_lowercase();
        self.attrs.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// The first value of `attr`, if any (convenience for single-valued use).
    pub fn first_value(&self, attr: &str) -> Option<&str> {
        self.values(attr).first().map(String::as_str)
    }

    /// Whether the entry holds at least one value for `attr`.
    pub fn has_attribute(&self, attr: &str) -> bool {
        !self.values(attr).is_empty()
    }

    /// Iterates `(attribute_key, values)` pairs, keys lowercase, sorted.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct attributes present.
    pub fn attribute_count(&self) -> usize {
        self.attrs.len()
    }

    /// Total number of (attribute, value) pairs — the paper's `|val(e)|`.
    pub fn value_count(&self) -> usize {
        self.attrs.values().map(Vec::len).sum()
    }

    // ----- class membership (Definition 2.1 condition 3b) -----

    /// The entry's object classes, original spelling — the paper's
    /// `class(r)`, i.e. exactly the values of `objectClass`.
    pub fn classes(&self) -> &[String] {
        self.values(OBJECT_CLASS)
    }

    /// Case-insensitive class-membership test.
    pub fn has_class(&self, class: &str) -> bool {
        self.classes().iter().any(|c| c.eq_ignore_ascii_case(class))
    }

    /// Adds a class (sugar over `objectClass`). Returns `true` if new.
    pub fn add_class(&mut self, class: impl Into<String>) -> bool {
        self.add_value(OBJECT_CLASS, class)
    }

    /// Removes a class. Returns `true` if it was present.
    pub fn remove_class(&mut self, class: &str) -> bool {
        self.remove_value(OBJECT_CLASS, class)
    }

    /// Number of classes — the paper's `|class(e)|`.
    pub fn class_count(&self) -> usize {
        self.classes().len()
    }
}

impl fmt::Display for Entry {
    /// LDIF-flavoured rendering: one `attr: value` line per pair.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (attr, values) in &self.attrs {
            for value in values {
                if !first {
                    writeln!(f)?;
                }
                first = false;
                write!(f, "{attr}: {value}")?;
            }
        }
        Ok(())
    }
}

/// Fluent construction of entries:
///
/// ```
/// use bschema_directory::Entry;
/// let e = Entry::builder()
///     .class("person")
///     .class("top")
///     .attr("uid", "laks")
///     .attr("mail", "laks@cs.concordia.ca")
///     .attr("mail", "laks@research.att.com")
///     .build();
/// assert!(e.has_class("Person"));
/// assert_eq!(e.values("mail").len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EntryBuilder {
    entry: Entry,
}

impl EntryBuilder {
    /// Adds an object class.
    pub fn class(mut self, class: impl Into<String>) -> Self {
        self.entry.add_class(class);
        self
    }

    /// Adds classes from an iterator.
    pub fn classes<I, S>(mut self, classes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for c in classes {
            self.entry.add_class(c);
        }
        self
    }

    /// Adds one (attribute, value) pair.
    pub fn attr(mut self, attr: &str, value: impl Into<String>) -> Self {
        self.entry.add_value(attr, value);
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Entry {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_set_is_object_class_values() {
        // Definition 2.1(3b): (objectClass, c) ∈ val(r) iff c ∈ class(r).
        let mut e = Entry::new();
        e.add_class("person");
        assert_eq!(e.values("objectClass"), ["person"]);
        e.add_value("objectclass", "top");
        assert!(e.has_class("top"));
        e.remove_value("OBJECTCLASS", "person");
        assert!(!e.has_class("person"));
        assert_eq!(e.classes(), ["top"]);
    }

    #[test]
    fn class_dedup_is_case_insensitive() {
        let mut e = Entry::new();
        assert!(e.add_class("Person"));
        assert!(!e.add_class("person"));
        assert_eq!(e.class_count(), 1);
        assert_eq!(e.classes(), ["Person"]); // first spelling wins
    }

    #[test]
    fn plain_values_dedup_exactly() {
        let mut e = Entry::new();
        assert!(e.add_value("mail", "a@b.c"));
        assert!(!e.add_value("mail", "a@b.c"));
        // Different case is a different raw value at the entry level;
        // syntax-aware matching happens in the query/legality layers.
        assert!(e.add_value("mail", "A@B.C"));
        assert_eq!(e.values("mail").len(), 2);
    }

    #[test]
    fn removing_last_value_drops_attribute() {
        let mut e = Entry::new();
        e.add_value("mail", "a@b.c");
        assert!(e.has_attribute("mail"));
        assert!(e.remove_value("mail", "a@b.c"));
        assert!(!e.has_attribute("mail"));
        assert_eq!(e.attribute_count(), 0);
        assert!(!e.remove_value("mail", "a@b.c"));
    }

    #[test]
    fn attribute_names_case_fold() {
        let mut e = Entry::new();
        e.add_value("Mail", "x@y.z");
        assert_eq!(e.values("MAIL"), ["x@y.z"]);
        assert!(e.has_attribute("mail"));
        let keys: Vec<_> = e.attributes().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(keys, ["mail"]);
    }

    #[test]
    fn value_count_counts_pairs() {
        let e = Entry::builder()
            .class("researcher")
            .class("person")
            .class("top")
            .attr("uid", "laks")
            .attr("name", "laks lakshmanan")
            .attr("mail", "laks@cs.concordia.ca")
            .attr("mail", "laks@research.att.com")
            .build();
        // |val(e)| includes the three objectClass pairs.
        assert_eq!(e.value_count(), 7);
        assert_eq!(e.class_count(), 3);
        assert_eq!(e.attribute_count(), 4);
    }

    #[test]
    fn set_values_replaces() {
        let mut e = Entry::new();
        e.add_value("mail", "old@x.y");
        e.set_values("mail", vec!["new1@x.y".to_owned(), "new2@x.y".to_owned()]);
        assert_eq!(e.values("mail"), ["new1@x.y", "new2@x.y"]);
    }

    #[test]
    fn display_is_ldif_like() {
        let e = Entry::builder().class("person").attr("uid", "suciu").build();
        let text = e.to_string();
        assert!(text.contains("objectclass: person"));
        assert!(text.contains("uid: suciu"));
    }

    #[test]
    fn first_value() {
        let mut e = Entry::new();
        assert_eq!(e.first_value("uid"), None);
        e.add_value("uid", "laks");
        assert_eq!(e.first_value("uid"), Some("laks"));
    }
}
